#!/usr/bin/env python
"""Look inside the fission and fusion primitives on a tiny hand-written module.

Prints the IR of a function before and after fission (showing the sepFunc, the
call + return-code dispatch in the remFunc and the reduced parameter list) and
the fused function produced from two small helpers (showing the ``ctrl``
dispatch and the compressed parameter list) — the mechanics of Figures 1 and 3
of the paper.
"""

from repro.core import Fission, FissionConfig, Fusion, FusionConfig, ProvenanceMap
from repro.core.stats import FissionStats, FusionStats
from repro.ir import (IRBuilder, Module, Program, create_function,
                      function_to_str, I64)
from repro.vm import run_program


def build_module() -> Program:
    module = Module("demo")
    putint = module.declare_function("putint", __import__(
        "repro.ir", fromlist=["FunctionType"]).FunctionType(I64, [I64]))

    # cal_file-like function: a validation branch plus a counting loop
    cal = create_function(module, "cal_file", I64, [I64], ["length"])
    b = IRBuilder(cal.entry_block)
    bad = cal.add_block("bad_input")
    good = cal.add_block("good_input")
    loop = cal.add_block("loop")
    body = cal.add_block("body")
    done = cal.add_block("done")
    b.cond_br(b.icmp("slt", cal.args[0], 0), bad, good)
    b.position_at_end(bad)
    b.ret(-1)
    b.position_at_end(good)
    count = b.alloca(I64, name="count")
    index = b.alloca(I64, name="i")
    b.store(0, count)
    b.store(0, index)
    b.br(loop)
    b.position_at_end(loop)
    i = b.load(index)
    b.cond_br(b.icmp("slt", i, cal.args[0]), body, done)
    b.position_at_end(body)
    b.store(b.add(b.load(count), b.and_(i, 3)), count)
    b.store(b.add(i, 1), index)
    b.br(loop)
    b.position_at_end(done)
    b.ret(b.load(count))

    # two fusable helpers (compatible return types, compressible parameters)
    log = create_function(module, "log_value", I64, [I64], ["value"])
    lb = IRBuilder(log.entry_block)
    lb.ret(lb.xor(lb.mul(log.args[0], 17), 0x55))

    scale = create_function(module, "scale_pair", I64, [I64, I64], ["a", "b"])
    sb = IRBuilder(scale.entry_block)
    sb.ret(sb.add(sb.mul(scale.args[0], 3), scale.args[1]))

    main = create_function(module, "main", I64, [])
    mb = IRBuilder(main.entry_block)
    mb.call(putint, [mb.call(cal, [9])])
    mb.call(putint, [mb.call(log, [5])])
    mb.call(putint, [mb.call(scale, [2, 4])])
    mb.ret(0)
    return Program("demo", [module])


def main() -> None:
    program = build_module()
    before = run_program(program.clone())
    module = program.link().modules[0]

    print("=" * 72)
    print("BEFORE: cal_file")
    print(function_to_str(module.get_function("cal_file")))

    fission = Fission(FissionConfig(min_function_blocks=3, min_region_blocks=2),
                      ProvenanceMap(), FissionStats())
    created = fission.run_on_function(module, module.get_function("cal_file"))
    print("\nAFTER FISSION: remFunc + sepFuncs")
    print(function_to_str(module.get_function("cal_file")))
    for sepfunc in created:
        print()
        print(function_to_str(sepfunc))

    fusion = Fusion(FusionConfig(), ProvenanceMap(), FusionStats())
    fused = fusion.run_on_module(module, entry="main",
                                 candidate_filter=lambda f: f.name in
                                 ("log_value", "scale_pair"))
    print("\nAFTER FUSION: log_value + scale_pair")
    for f in fused:
        print(function_to_str(f))

    after = run_program(Program("demo", [module]))
    print("\nobservable output before:", before.output)
    print("observable output after: ", after.output)
    assert before.observable() == after.observable()


if __name__ == "__main__":
    main()
