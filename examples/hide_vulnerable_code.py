#!/usr/bin/env python
"""Hide known-vulnerable functions in an embedded firmware image (T-III).

This reproduces the scenario that motivates the paper: a vendor ships a binary
containing third-party code with public CVEs (here the synthetic
`libcurl-7.34.0` workload, whose vulnerable functions follow Table 3), and an
attacker runs binary diffing tools to locate those functions.  The example
compares how far down the ranked match list each vulnerable function "escapes"
before and after Khaos FuFi.all.
"""

from repro.diffing import Asm2Vec, Safe, VulSeeker
from repro.evaluation import format_table
from repro.toolchain import build_baseline, build_obfuscated, obfuscator_for
from repro.workloads import embedded_programs


def main() -> None:
    workload = next(w for w in embedded_programs()
                    if w.name == "libcurl-7.34.0")
    print(f"firmware workload: {workload.name}, "
          f"{len(workload.vulnerable_functions)} vulnerable functions")

    baseline = build_baseline(workload.build())
    rows = []
    for label in ("sub", "fufi.all"):
        variant = build_obfuscated(workload.build(), obfuscator_for(label))
        for differ in (VulSeeker(), Asm2Vec(), Safe()):
            result = differ.diff(baseline.binary, variant.binary)
            for function_name in workload.vulnerable_functions:
                rank = result.rank_of_correct(function_name, variant.provenance)
                rows.append([label, differ.name, function_name,
                             "escaped" if rank is None else f"rank {rank}"])

    print(format_table(["obfuscation", "tool", "vulnerable function",
                        "where the attacker finds it"], rows))
    print("\nA vulnerable function is well hidden when its correct match is "
          "ranked far down (or absent) — compare the `fufi.all` rows with the "
          "`sub` rows.")


if __name__ == "__main__":
    main()
