#!/usr/bin/env python
"""Compare O-LLVM-style obfuscations against the Khaos modes on one program.

Reports, for each obfuscation label, the runtime overhead (Figure 6/7 metric),
the BinDiff and Asm2Vec Precision@1 (Figure 8 metric) and the normalised
opcode-histogram distance (Figure 11 metric) for the synthetic `458.sjeng`
workload.
"""

from repro.backend import opcode_histogram_distance
from repro.diffing import Asm2Vec, BinDiff, precision_at_1
from repro.evaluation import format_table
from repro.toolchain import (ALL_LABELS, build_baseline, build_obfuscated,
                             obfuscator_for, overhead_percent)
from repro.workloads import find_program


def main() -> None:
    workload = find_program("458.sjeng")
    baseline = build_baseline(workload.build(), run=True)
    bindiff, asm2vec = BinDiff(), Asm2Vec()

    rows = []
    distances = {}
    for label in ALL_LABELS:
        variant = build_obfuscated(workload.build(), obfuscator_for(label),
                                   run=True)
        assert (variant.execution.observable()
                == baseline.execution.observable()), label
        distances[label] = opcode_histogram_distance(baseline.binary,
                                                     variant.binary)
        rows.append([
            label,
            f"{overhead_percent(baseline, variant):.1f}%",
            f"{precision_at_1(bindiff.diff(baseline.binary, variant.binary), variant.provenance):.2f}",
            f"{precision_at_1(asm2vec.diff(baseline.binary, variant.binary), variant.provenance):.2f}",
        ])

    maximum = max(distances.values()) or 1.0
    for row, label in zip(rows, ALL_LABELS):
        row.append(f"{distances[label] / maximum:.2f}")

    print(f"program: {workload.name} "
          f"({len(baseline.binary.functions)} functions in the baseline binary)\n")
    print(format_table(
        ["obfuscation", "overhead", "BinDiff p@1", "Asm2Vec p@1",
         "opcode distance (normalised)"], rows))
    print("\nLower precision@1 and higher opcode distance mean better "
          "protection; lower overhead means cheaper protection.")


if __name__ == "__main__":
    main()
