#!/usr/bin/env python
"""Quickstart: obfuscate one program with Khaos and diff it with BinDiff.

Builds the synthetic `401.bzip2` workload, compiles a baseline (O2 + LTO),
applies the recommended Khaos mode (FuFi.ori), measures the runtime overhead
in the interpreter, and shows how much harder the obfuscated binary is to
match for a BinDiff-style differ.
"""

from repro.diffing import Asm2Vec, BinDiff, precision_at_1
from repro.toolchain import (build_baseline, build_obfuscated, obfuscator_for,
                             overhead_percent)
from repro.workloads import find_program


def main() -> None:
    workload = find_program("401.bzip2")
    print(f"workload: {workload.name} ({workload.suite})")

    baseline = build_baseline(workload.build(), run=True)
    print(f"baseline: {len(baseline.binary.functions)} functions, "
          f"{baseline.binary.total_instructions} instructions, "
          f"{baseline.execution.cycles} cycles")

    khaos = build_obfuscated(workload.build(), obfuscator_for("fufi.ori"),
                             run=True)
    print(f"khaos (fufi.ori): {len(khaos.binary.functions)} functions, "
          f"{khaos.binary.total_instructions} instructions, "
          f"{khaos.execution.cycles} cycles")
    print(f"runtime overhead: {overhead_percent(baseline, khaos):.1f}%")
    print(f"semantics preserved: "
          f"{baseline.execution.observable() == khaos.execution.observable()}")

    stats = khaos.stats
    print(f"fission ratio: {stats.fission.ratio:.2f}, "
          f"fusion ratio: {stats.fusion.ratio:.2f}, "
          f"parameters saved per fusion: {stats.fusion.avg_reduced_params:.2f}")

    for differ in (BinDiff(), Asm2Vec()):
        result = differ.diff(baseline.binary, khaos.binary)
        precision = precision_at_1(result, khaos.provenance)
        print(f"{differ.name:10s} precision@1 against the obfuscated binary: "
              f"{precision:.2f} (1.00 means the obfuscation did nothing)")


if __name__ == "__main__":
    main()
