"""Small shared utilities."""

from __future__ import annotations

import hashlib
from typing import Iterable


def stable_hash(*parts: object, bits: int = 30) -> int:
    """A process-independent hash of the given parts.

    Python's built-in ``hash`` is salted per interpreter run, which would make
    every seed (and therefore every synthesised program and every figure)
    change between runs.  All seed derivations in the reproduction go through
    this helper instead.
    """
    digest = hashlib.sha256("\x1f".join(repr(p) for p in parts).encode()).digest()
    return int.from_bytes(digest[:8], "little") % (1 << bits)


def geometric_mean(values: Iterable[float]) -> float:
    """Geometric mean of ``1 + value`` minus one, as used for overhead columns.

    The paper reports geometric means over per-program overheads that can be
    slightly negative, so the mean is computed over the speedup factors.
    """
    factors = [1.0 + v for v in values]
    if not factors:
        return 0.0
    product = 1.0
    for factor in factors:
        product *= max(factor, 1e-9)
    return product ** (1.0 / len(factors)) - 1.0
