"""Glue between workloads, obfuscators, the optimizer, the backend and the VM.

The evaluation drivers all follow the same build recipe the paper uses:
obfuscate at the IR level (Khaos middle-end passes or an O-LLVM baseline),
optimize "under O2 with link-time optimization", lower to a binary, and —
for the performance experiments — execute the program to count cycles.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence

from .backend.binary import Binary
from .backend.lowering import lower_program
from .baselines.ollvm import (bogus_obfuscator, flattening_obfuscator,
                              sub_obfuscator)
from .core.config import KhaosConfig, Mode
from .core.obfuscator import Khaos, ObfuscationResult
from .core.provenance import ProvenanceMap
from .core.stats import KhaosStats
from .ir.module import Program
from .opt.pass_manager import OptOptions
from .opt.pipelines import optimize_program
from .vm.machine import ExecutionResult, run_program

#: The obfuscation labels of Figures 7, 8 and 11, in presentation order.
BASELINE_LABELS = ("sub", "bog", "fla-10")
KHAOS_LABELS = ("fission", "fusion", "fufi.sep", "fufi.ori", "fufi.all")
ALL_LABELS = BASELINE_LABELS + KHAOS_LABELS


class KhaosVariant:
    """Adapter giving :class:`~repro.core.obfuscator.Khaos` a stable label."""

    def __init__(self, mode: str, seed: int = 0x5EED):
        self.label = mode
        self._khaos = Khaos(KhaosConfig(mode=mode, seed=seed))

    def obfuscate(self, program: Program, verify: bool = True) -> ObfuscationResult:
        return self._khaos.obfuscate(program, verify=verify)

    def cache_key(self) -> tuple:
        return self._khaos.cache_key()


def obfuscator_for(label: str, seed: int = 0x5EED,
                   flatten_ratio: float = 0.1):
    """Resolve an obfuscation label to an obfuscator object."""
    if label in Mode.ALL:
        return KhaosVariant(label, seed=seed)
    if label == "sub":
        return sub_obfuscator()
    if label == "bog":
        return bogus_obfuscator(ratio=0.3)
    if label == "fla":
        return flattening_obfuscator(ratio=1.0)
    if label.startswith("fla-"):
        return flattening_obfuscator(ratio=int(label.split("-", 1)[1]) / 100.0)
    raise KeyError(f"unknown obfuscation label {label!r}")


@dataclass
class BuildArtifact:
    """One compiled configuration of one program."""

    label: str
    program: Program                   # optimized IR (post middle-end)
    binary: Binary
    provenance: ProvenanceMap
    stats: Optional[KhaosStats] = None
    execution: Optional[ExecutionResult] = None

    @property
    def cycles(self) -> Optional[int]:
        return self.execution.cycles if self.execution is not None else None


def build_baseline(program: Program, options: Optional[OptOptions] = None,
                   run: bool = False) -> BuildArtifact:
    """Compile without obfuscation (the paper's O2 + LTO baseline)."""
    optimized = optimize_program(program, options)
    provenance = ProvenanceMap(
        f.name for f in optimized.modules[0].defined_functions())
    artifact = BuildArtifact(label="baseline", program=optimized,
                             binary=lower_program(optimized),
                             provenance=provenance)
    if run:
        artifact.execution = run_program(optimized)
    return artifact


def build_obfuscated(program: Program, obfuscator,
                     options: Optional[OptOptions] = None,
                     run: bool = False) -> BuildArtifact:
    """Obfuscate at the IR level, then compile like the baseline."""
    result = obfuscator.obfuscate(program)
    optimized = optimize_program(result.program, options)
    artifact = BuildArtifact(label=result.label, program=optimized,
                             binary=lower_program(optimized),
                             provenance=result.provenance,
                             stats=result.stats)
    if run:
        artifact.execution = run_program(optimized)
    return artifact


def build_all_variants(program_factory, labels: Sequence[str] = ALL_LABELS,
                       options: Optional[OptOptions] = None,
                       run: bool = False) -> Dict[str, BuildArtifact]:
    """Build the baseline plus every requested obfuscated variant.

    ``program_factory`` is called once per variant so each obfuscator starts
    from a fresh, un-aliased program (the workload builders are deterministic).
    """
    artifacts = {"baseline": build_baseline(program_factory(), options, run=run)}
    for label in labels:
        obfuscator = obfuscator_for(label)
        artifacts[label] = build_obfuscated(program_factory(), obfuscator,
                                            options, run=run)
    return artifacts


def overhead_percent(baseline: BuildArtifact, variant: BuildArtifact) -> float:
    """Runtime overhead of ``variant`` relative to ``baseline`` in percent."""
    if baseline.execution is None or variant.execution is None:
        raise ValueError("both artifacts must be built with run=True")
    base = baseline.execution.cycles or 1
    return (variant.execution.cycles - base) / base * 100.0
