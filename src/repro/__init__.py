"""Reproduction of *Khaos: The Impact of Inter-procedural Code Obfuscation on
Binary Diffing Techniques* (CGO 2023).

The package is organised exactly like the system described in the paper:

* :mod:`repro.ir`, :mod:`repro.analysis`, :mod:`repro.opt`, :mod:`repro.backend`
  and :mod:`repro.vm` form the compiler substrate (the stand-in for LLVM and
  for native execution);
* :mod:`repro.core` is Khaos itself — the fission and fusion primitives plus
  the FuFi combination modes;
* :mod:`repro.baselines` are the comparison targets (O-LLVM's Sub/Bog/Fla and
  BinTuner);
* :mod:`repro.diffing` re-implements the five confronted binary diffing tools;
* :mod:`repro.workloads` synthesises the SPEC / CoreUtils / embedded test
  suites; and
* :mod:`repro.evaluation` regenerates every table and figure of the paper.

Quickstart::

    from repro.workloads import find_program
    from repro.toolchain import build_baseline, build_obfuscated, obfuscator_for
    from repro.diffing import BinDiff, precision_at_1

    workload = find_program("401.bzip2")
    baseline = build_baseline(workload.build(), run=True)
    khaos = build_obfuscated(workload.build(), obfuscator_for("fufi.ori"), run=True)
    result = BinDiff().diff(baseline.binary, khaos.binary)
    print(precision_at_1(result, khaos.provenance))
"""

from .utils import geometric_mean, stable_hash

__version__ = "0.1.0"

__all__ = ["geometric_mean", "stable_hash", "__version__"]
