"""Basic blocks: straight-line instruction sequences ending in a terminator."""

from __future__ import annotations

from typing import Iterator, List, Optional

from .instructions import Instruction, Terminator


class BasicBlock:
    """A single-entry, single-exit-point sequence of instructions.

    Blocks are identified by name within their parent function.  Successor
    edges are derived from the terminator; predecessor edges are computed on
    demand by :meth:`repro.ir.function.Function.predecessors`.

    Blocks hash and compare by identity (the inherited ``object`` semantics,
    stated here explicitly): analyses key their dicts and sets by the block
    object itself, never by ``id(block)``.
    """

    __slots__ = ("name", "parent", "instructions")

    __hash__ = object.__hash__

    def __init__(self, name: str, parent=None):
        self.name = name
        self.parent = parent  # owning Function
        self.instructions: List[Instruction] = []

    # -- structural helpers -------------------------------------------------------

    def append(self, instruction: Instruction) -> Instruction:
        instruction.parent = self
        self.instructions.append(instruction)
        return instruction

    def insert(self, index: int, instruction: Instruction) -> Instruction:
        instruction.parent = self
        self.instructions.insert(index, instruction)
        return instruction

    def remove(self, instruction: Instruction) -> None:
        self.instructions.remove(instruction)
        instruction.parent = None

    @property
    def terminator(self) -> Optional[Terminator]:
        if self.instructions and self.instructions[-1].is_terminator:
            return self.instructions[-1]
        return None

    @property
    def is_terminated(self) -> bool:
        return self.terminator is not None

    def successors(self) -> List["BasicBlock"]:
        term = self.terminator
        return list(term.successors()) if term is not None else []

    def non_terminator_instructions(self) -> List[Instruction]:
        term = self.terminator
        if term is None:
            return list(self.instructions)
        return self.instructions[:-1]

    def __iter__(self) -> Iterator[Instruction]:
        return iter(self.instructions)

    def __len__(self) -> int:
        return len(self.instructions)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<BasicBlock {self.name} ({len(self.instructions)} insts)>"
