"""Modules and programs.

A :class:`Module` corresponds to one translation unit / shared object; a
:class:`Program` is a set of modules plus the name of its entry function.
``Program.link()`` merges all modules into one (the paper compiles its test
suites "under O2 with link-time optimization", i.e. whole-program), while
keeping the notion of the original module boundary available for the fusion
trampoline mechanism.
"""

from __future__ import annotations

import copy
from typing import Dict, Iterable, Iterator, List, Optional

from .basicblock import BasicBlock
from .function import Function, Linkage
from .instructions import (Branch, Call, CondBranch, Instruction, Switch)
from .types import FunctionType, Type
from .values import Argument, Constant, GlobalVariable, UndefValue, Value


class Module:
    """A single translation unit: functions plus global variables."""

    def __init__(self, name: str):
        self.name = name
        self.functions: Dict[str, Function] = {}
        self.globals: Dict[str, GlobalVariable] = {}
        self.metadata: Dict[str, object] = {}

    # -- functions ----------------------------------------------------------------

    def add_function(self, function: Function) -> Function:
        if function.name in self.functions:
            raise ValueError(f"duplicate function {function.name!r} in {self.name}")
        function.module = self
        self.functions[function.name] = function
        return function

    def get_function(self, name: str) -> Optional[Function]:
        return self.functions.get(name)

    def remove_function(self, name: str) -> None:
        function = self.functions.pop(name)
        function.module = None

    def declare_function(self, name: str, ftype: FunctionType) -> Function:
        """Get-or-create an external declaration (e.g. a libc routine)."""
        existing = self.functions.get(name)
        if existing is not None:
            return existing
        function = Function(name, ftype, linkage=Linkage.EXTERNAL)
        return self.add_function(function)

    def defined_functions(self) -> List[Function]:
        return [f for f in self.functions.values() if not f.is_declaration]

    # -- globals ------------------------------------------------------------------

    def add_global(self, variable: GlobalVariable) -> GlobalVariable:
        if variable.name in self.globals:
            raise ValueError(f"duplicate global {variable.name!r} in {self.name}")
        variable.module = self
        self.globals[variable.name] = variable
        return variable

    def get_global(self, name: str) -> Optional[GlobalVariable]:
        return self.globals.get(name)

    # -- traversal / cloning ------------------------------------------------------

    def __iter__(self) -> Iterator[Function]:
        return iter(self.functions.values())

    def clone(self) -> "Module":
        """Deep copy of the module with all cross-references remapped."""
        new_module = Module(self.name)
        new_module.metadata = dict(self.metadata)
        value_map: Dict[int, Value] = {}

        for g in self.globals.values():
            new_g = GlobalVariable(g.name, g.value_type,
                                   initializer=copy.deepcopy(g.initializer),
                                   constant=g.constant)
            new_module.add_global(new_g)
            value_map[id(g)] = new_g

        # first create every function shell so call operands can be remapped
        for f in self.functions.values():
            new_f = Function(f.name, f.ftype,
                             param_names=[a.name for a in f.args],
                             linkage=f.linkage)
            new_f.attributes = dict(f.attributes)
            new_f.eh_pairs = list(f.eh_pairs)
            new_module.add_function(new_f)
            value_map[id(f)] = new_f
            for old_arg, new_arg in zip(f.args, new_f.args):
                value_map[id(old_arg)] = new_arg

        for f in self.functions.values():
            clone_function_body(f, value_map[id(f)], value_map)

        return new_module

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Module {self.name} ({len(self.functions)} functions)>"


def clone_function_body(source: Function, target: Function,
                        value_map: Dict[int, Value]) -> None:
    """Copy ``source``'s blocks into the (empty) ``target`` function.

    ``value_map`` maps ``id(old value) -> new value`` and is extended with the
    cloned instructions and blocks; it must already contain mappings for the
    arguments of ``source`` and for any global/function referenced.
    """
    block_map: Dict[int, BasicBlock] = {}
    for block in source.blocks:
        new_block = BasicBlock(block.name, parent=target)
        target.blocks.append(new_block)
        block_map[id(block)] = new_block
        value_map[id(block)] = new_block

    # first pass: create every instruction clone so that forward references
    # (an operand defined in a block that appears later in the list) resolve
    new_instructions = []
    for block in source.blocks:
        new_block = block_map[id(block)]
        for inst in block.instructions:
            new_inst = inst.clone_shallow()
            new_inst.name = inst.name
            new_block.append(new_inst)
            value_map[id(inst)] = new_inst
            new_instructions.append(new_inst)

    # second pass: remap operands and branch targets
    for new_inst in new_instructions:
        for i, op in enumerate(new_inst.operands):
            mapped = value_map.get(id(op))
            if mapped is not None:
                new_inst.operands[i] = mapped
        if isinstance(new_inst, Branch):
            new_inst.target = block_map[id(new_inst.target)]
        elif isinstance(new_inst, CondBranch):
            new_inst.true_target = block_map[id(new_inst.true_target)]
            new_inst.false_target = block_map[id(new_inst.false_target)]
        elif isinstance(new_inst, Switch):
            new_inst.default_target = block_map[id(new_inst.default_target)]
            new_inst.cases = [(c, block_map[id(t)]) for c, t in new_inst.cases]


class Program:
    """A set of modules plus an entry point, the unit the evaluation runs on."""

    def __init__(self, name: str, modules: Optional[Iterable[Module]] = None,
                 entry: str = "main"):
        self.name = name
        self.modules: List[Module] = list(modules or [])
        self.entry = entry
        self.metadata: Dict[str, object] = {}

    def add_module(self, module: Module) -> Module:
        self.modules.append(module)
        return module

    def all_functions(self) -> List[Function]:
        return [f for m in self.modules for f in m.functions.values()]

    def defined_functions(self) -> List[Function]:
        return [f for m in self.modules for f in m.defined_functions()]

    def find_function(self, name: str) -> Optional[Function]:
        for module in self.modules:
            f = module.get_function(name)
            if f is not None and not f.is_declaration:
                return f
        for module in self.modules:
            f = module.get_function(name)
            if f is not None:
                return f
        return None

    def clone(self) -> "Program":
        cloned = Program(self.name, [m.clone() for m in self.modules],
                         entry=self.entry)
        cloned.metadata = dict(self.metadata)
        if len(cloned.modules) > 1:
            # cross-module references still point at the source program's
            # objects after per-module cloning; re-resolve them by name so the
            # clone never aliases the original
            functions_by_name = {}
            globals_by_name = {}
            for module in cloned.modules:
                for f in module.functions.values():
                    if not f.is_declaration or f.name not in functions_by_name:
                        functions_by_name[f.name] = f
                for g in module.globals.values():
                    globals_by_name.setdefault(g.name, g)
            for module in cloned.modules:
                for f in module.functions.values():
                    for inst in f.instructions():
                        for i, op in enumerate(inst.operands):
                            if isinstance(op, Function):
                                resolved = functions_by_name.get(op.name)
                                if resolved is not None and resolved is not op:
                                    inst.operands[i] = resolved
                            elif isinstance(op, GlobalVariable):
                                resolved_g = globals_by_name.get(op.name)
                                if resolved_g is not None and resolved_g is not op:
                                    inst.operands[i] = resolved_g
        return cloned

    def link(self) -> "Program":
        """Merge every module into a single linked module (LTO-style).

        Internal symbols that clash across modules are renamed with a module
        suffix.  The original module of each function is recorded in its
        ``attributes["origin_module"]`` so that the fusion pass can still apply
        its cross-module trampoline rule.
        """
        if len(self.modules) <= 1:
            linked_single = self.clone()
            for module in linked_single.modules:
                for f in module.functions.values():
                    f.attributes.setdefault("origin_module", module.name)
            return linked_single

        source = self.clone()
        merged = Module(f"{self.name}.linked")
        taken: Dict[str, str] = {}

        # resolve name clashes up front
        rename: Dict[int, str] = {}
        for module in source.modules:
            for f in module.functions.values():
                name = f.name
                if name in taken:
                    if f.is_declaration or f.linkage == Linkage.EXTERNAL:
                        continue
                    if f.linkage == Linkage.INTERNAL:
                        name = f"{f.name}.{module.name}"
                    else:
                        name = f"{f.name}.{module.name}"
                rename[id(f)] = name
                taken[name] = module.name
            for g in module.globals.values():
                if g.name in merged.globals:
                    continue

        for module in source.modules:
            for g in module.globals.values():
                if g.name not in merged.globals:
                    g.module = None
                    merged.add_global(g)
        for module in source.modules:
            for f in module.functions.values():
                new_name = rename.get(id(f), f.name)
                if new_name in merged.functions:
                    existing = merged.functions[new_name]
                    if existing.is_declaration and not f.is_declaration:
                        # replace declaration with definition
                        merged.remove_function(new_name)
                    else:
                        continue
                f.name = new_name
                f.attributes.setdefault("origin_module", module.name)
                f.module = None
                merged.add_function(f)

        # rewrite operand references so duplicate declarations / globals collapse
        # onto the surviving definition
        by_name = merged.functions
        globals_by_name = merged.globals
        for f in merged.functions.values():
            for inst in list(f.instructions()):
                for i, op in enumerate(inst.operands):
                    if isinstance(op, Function):
                        resolved = by_name.get(op.name)
                        if resolved is not None and resolved is not op:
                            inst.operands[i] = resolved
                    elif isinstance(op, GlobalVariable):
                        resolved_g = globals_by_name.get(op.name)
                        if resolved_g is not None and resolved_g is not op:
                            inst.operands[i] = resolved_g

        linked = Program(self.name, [merged], entry=self.entry)
        linked.metadata = dict(self.metadata)
        linked.metadata["linked"] = True
        return linked

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Program {self.name} ({len(self.modules)} modules)>"
