"""Modules and programs.

A :class:`Module` corresponds to one translation unit / shared object; a
:class:`Program` is a set of modules plus the name of its entry function.
``Program.link()`` merges all modules into one (the paper compiles its test
suites "under O2 with link-time optimization", i.e. whole-program), while
keeping the notion of the original module boundary available for the fusion
trampoline mechanism.

Cloning and linking are both *one-pass*: a single ``value_map`` (``id(old
value) -> new value``) is threaded through every module, so cross-module
references — a call in one module whose callee :class:`Function` object lives
in another — resolve directly while bodies are cloned.  Nothing is patched up
afterwards by name.
"""

from __future__ import annotations

import copy
import os
from typing import Dict, Iterable, Iterator, List, Optional, Tuple

from .basicblock import BasicBlock
from .function import Function, Linkage
from .instructions import Branch, CondBranch, Switch
from .types import FunctionType
from .values import GlobalVariable, Value


class Module:
    """A single translation unit: functions plus global variables."""

    def __init__(self, name: str):
        self.name = name
        self.functions: Dict[str, Function] = {}
        self.globals: Dict[str, GlobalVariable] = {}
        self.metadata: Dict[str, object] = {}

    # -- functions ----------------------------------------------------------------

    def add_function(self, function: Function) -> Function:
        if function.name in self.functions:
            raise ValueError(f"duplicate function {function.name!r} in {self.name}")
        function.module = self
        self.functions[function.name] = function
        return function

    def get_function(self, name: str) -> Optional[Function]:
        return self.functions.get(name)

    def remove_function(self, name: str) -> None:
        function = self.functions.pop(name, None)
        if function is None:
            raise KeyError(
                f"no function named {name!r} in module {self.name!r}")
        function.module = None

    def declare_function(self, name: str, ftype: FunctionType) -> Function:
        """Get-or-create an external declaration (e.g. a libc routine)."""
        existing = self.functions.get(name)
        if existing is not None:
            if existing.ftype != ftype:
                raise TypeError(
                    f"function {name!r} re-declared in {self.name!r} with type "
                    f"{ftype}, but it already has type {existing.ftype}")
            return existing
        function = Function(name, ftype, linkage=Linkage.EXTERNAL)
        return self.add_function(function)

    def defined_functions(self) -> List[Function]:
        return [f for f in self.functions.values() if not f.is_declaration]

    # -- globals ------------------------------------------------------------------

    def add_global(self, variable: GlobalVariable) -> GlobalVariable:
        if variable.name in self.globals:
            raise ValueError(f"duplicate global {variable.name!r} in {self.name}")
        variable.module = self
        self.globals[variable.name] = variable
        return variable

    def get_global(self, name: str) -> Optional[GlobalVariable]:
        return self.globals.get(name)

    # -- traversal / cloning ------------------------------------------------------

    def __iter__(self) -> Iterator[Function]:
        return iter(self.functions.values())

    def clone(self) -> "Module":
        """Deep copy of the module with all cross-references remapped."""
        value_map: Dict[int, Value] = {}
        new_module = _clone_module_shell(self, value_map)
        _clone_module_bodies(self, value_map)
        return new_module

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Module {self.name} ({len(self.functions)} functions)>"


def _clone_global(variable: GlobalVariable,
                  name: Optional[str] = None) -> GlobalVariable:
    return GlobalVariable(name if name is not None else variable.name,
                          variable.value_type,
                          initializer=copy.deepcopy(variable.initializer),
                          constant=variable.constant)


def _clone_function_shell(function: Function,
                          name: Optional[str] = None) -> Function:
    """An empty copy of ``function``: signature, linkage and attributes only."""
    new_f = Function(name if name is not None else function.name,
                     function.ftype,
                     param_names=[a.name for a in function.args],
                     linkage=function.linkage)
    new_f.attributes = dict(function.attributes)
    new_f.eh_pairs = list(function.eh_pairs)
    return new_f


def _map_function(function: Function, new_f: Function,
                  value_map: Dict[int, Value]) -> None:
    value_map[id(function)] = new_f
    for old_arg, new_arg in zip(function.args, new_f.args):
        value_map[id(old_arg)] = new_arg


def _clone_module_shell(module: Module, value_map: Dict[int, Value]) -> Module:
    """Clone globals and function shells, registering everything in ``value_map``."""
    new_module = Module(module.name)
    new_module.metadata = dict(module.metadata)
    for g in module.globals.values():
        new_g = _clone_global(g)
        new_module.add_global(new_g)
        value_map[id(g)] = new_g
    for f in module.functions.values():
        new_f = _clone_function_shell(f)
        new_module.add_function(new_f)
        _map_function(f, new_f, value_map)
    return new_module


def _clone_module_bodies(module: Module, value_map: Dict[int, Value]) -> None:
    for f in module.functions.values():
        if not f.is_declaration:
            clone_function_body(f, value_map[id(f)], value_map)


def clone_function_body(source: Function, target: Function,
                        value_map: Dict[int, Value]) -> None:
    """Copy ``source``'s blocks into the (empty) ``target`` function.

    ``value_map`` maps ``id(old value) -> new value`` and is extended with the
    cloned instructions and blocks; it must already contain mappings for the
    arguments of ``source`` and for any global/function referenced.
    """
    block_map: Dict[int, BasicBlock] = {}
    for block in source.blocks:
        new_block = BasicBlock(block.name, parent=target)
        target.blocks.append(new_block)
        block_map[id(block)] = new_block
        value_map[id(block)] = new_block

    # first pass: create every instruction clone so that forward references
    # (an operand defined in a block that appears later in the list) resolve
    new_instructions = []
    for block in source.blocks:
        new_block = block_map[id(block)]
        for inst in block.instructions:
            new_inst = inst.clone_shallow()
            new_inst.name = inst.name
            new_block.append(new_inst)
            value_map[id(inst)] = new_inst
            new_instructions.append(new_inst)

    # second pass: remap operands and branch targets
    for new_inst in new_instructions:
        for i, op in enumerate(new_inst.operands):
            mapped = value_map.get(id(op))
            if mapped is not None:
                new_inst.operands[i] = mapped
        if isinstance(new_inst, Branch):
            new_inst.target = block_map[id(new_inst.target)]
        elif isinstance(new_inst, CondBranch):
            new_inst.true_target = block_map[id(new_inst.true_target)]
            new_inst.false_target = block_map[id(new_inst.false_target)]
        elif isinstance(new_inst, Switch):
            new_inst.default_target = block_map[id(new_inst.default_target)]
            new_inst.cases = [(c, block_map[id(t)]) for c, t in new_inst.cases]


def _globals_equivalent(a: GlobalVariable, b: GlobalVariable) -> bool:
    return (a.value_type == b.value_type and a.constant == b.constant
            and a.initializer == b.initializer)


def _suffixed_name(taken, base: str, suffix: str) -> str:
    """``base.suffix``, uniquified against ``taken`` (a name container)."""
    candidate = f"{base}.{suffix}"
    counter = 1
    while candidate in taken:
        counter += 1
        candidate = f"{base}.{suffix}.{counter}"
    return candidate


class Program:
    """A set of modules plus an entry point, the unit the evaluation runs on."""

    def __init__(self, name: str, modules: Optional[Iterable[Module]] = None,
                 entry: str = "main"):
        self.name = name
        self.modules: List[Module] = list(modules or [])
        self.entry = entry
        self.metadata: Dict[str, object] = {}

    def add_module(self, module: Module) -> Module:
        self.modules.append(module)
        return module

    def all_functions(self) -> List[Function]:
        return [f for m in self.modules for f in m.functions.values()]

    def defined_functions(self) -> List[Function]:
        return [f for m in self.modules for f in m.defined_functions()]

    def find_function(self, name: str) -> Optional[Function]:
        for module in self.modules:
            f = module.get_function(name)
            if f is not None and not f.is_declaration:
                return f
        for module in self.modules:
            f = module.get_function(name)
            if f is not None:
                return f
        return None

    def clone(self) -> "Program":
        """Deep copy of the whole program in one pass.

        A single ``value_map`` spans every module, so a reference from one
        module to a function or global of another resolves to the *cloned*
        object directly while bodies are copied — the clone never aliases the
        source program.
        """
        value_map: Dict[int, Value] = {}
        new_modules = [_clone_module_shell(m, value_map) for m in self.modules]
        for module in self.modules:
            _clone_module_bodies(module, value_map)
        cloned = Program(self.name, new_modules, entry=self.entry)
        cloned.metadata = dict(self.metadata)
        return cloned

    def link(self) -> "Program":
        """Merge every module into a single linked module (LTO-style).

        Symbol resolution follows the usual linker rules:

        * declarations collapse onto the definition of the same name (or onto
          one shared declaration if no module defines it);
        * at most one non-internal definition of a name may exist — a clash
          between two external definitions raises a duplicate-symbol error;
        * internal definitions whose name is also claimed by another module
          are renamed with a module suffix, and their call sites (which
          reference the function object, not the name) follow the rename;
        * same-named globals collapse only when value type, constancy and
          initializer agree; otherwise the later ones are renamed with a
          module suffix, mirroring the internal-function rename path.

        The original module of each function is recorded in its
        ``attributes["origin_module"]`` so that the fusion pass can still
        apply its cross-module trampoline rule.  Like :meth:`clone`, linking
        is one pass over the IR: a shared ``value_map`` carries every
        resolution, so no post-hoc by-name operand rewriting is needed.
        """
        if len(self.modules) <= 1:
            linked_single = self.clone()
            for module in linked_single.modules:
                for f in module.functions.values():
                    f.attributes.setdefault("origin_module", module.name)
            _post_link_verify(linked_single)
            return linked_single

        merged = Module(f"{self.name}.linked")
        value_map: Dict[int, Value] = {}

        # -- resolve function symbols up front ------------------------------------
        claimants: Dict[str, List[Tuple[Module, Function]]] = {}
        for module in self.modules:
            for f in module.functions.values():
                claimants.setdefault(f.name, []).append((module, f))

        # per name: which function keeps the base name (the "keeper"), and
        # which internal definitions must be renamed
        keepers: Dict[str, Function] = {}
        renames: Dict[int, str] = {}
        reserved = set(claimants)
        for name, group in claimants.items():
            definitions = [(m, f) for m, f in group if not f.is_declaration]
            if not definitions:
                keepers[name] = group[0][1]
                continue
            external_defs = [(m, f) for m, f in definitions
                             if f.linkage != Linkage.INTERNAL]
            if len(external_defs) > 1:
                where = ", ".join(m.name for m, _ in external_defs)
                raise ValueError(
                    f"duplicate symbol {name!r}: defined with external "
                    f"linkage in modules {where}")
            keeper = external_defs[0][1] if external_defs else definitions[0][1]
            keepers[name] = keeper
            for m, f in definitions:
                if f is keeper:
                    continue
                new_name = _suffixed_name(reserved, name, m.name)
                reserved.add(new_name)
                renames[id(f)] = new_name

        # -- place globals and function shells in encounter order ------------------
        placed_globals: Dict[str, GlobalVariable] = {}
        for module in self.modules:
            for g in module.globals.values():
                first = placed_globals.get(g.name)
                if first is not None and _globals_equivalent(first, g):
                    value_map[id(g)] = merged.globals[first.name]
                    continue
                if first is None:
                    name = g.name
                    placed_globals[name] = g
                else:
                    name = _suffixed_name(merged.globals, g.name, module.name)
                new_g = _clone_global(g, name)
                merged.add_global(new_g)
                value_map[id(g)] = new_g

        definition_shells: List[Tuple[Function, Function]] = []
        for module in self.modules:
            for f in module.functions.values():
                keeper = keepers[f.name]
                if f.is_declaration:
                    if f is keeper:
                        shell = _clone_function_shell(f)
                        shell.attributes.setdefault("origin_module", module.name)
                        merged.add_function(shell)
                    continue
                shell = _clone_function_shell(f, renames.get(id(f), f.name))
                shell.attributes.setdefault("origin_module", module.name)
                merged.add_function(shell)
                _map_function(f, shell, value_map)
                definition_shells.append((f, shell))
        # declarations resolve to whatever claimed their name, after every
        # shell exists (the keeper definition may sit in a later module)
        for module in self.modules:
            for f in module.functions.values():
                if f.is_declaration:
                    keeper = keepers[f.name]
                    target = (value_map[id(keeper)] if id(keeper) in value_map
                              else merged.functions[keeper.name])
                    value_map[id(f)] = target

        # -- clone bodies through the shared value map ------------------------------
        for source, shell in definition_shells:
            clone_function_body(source, shell, value_map)

        linked = Program(self.name, [merged], entry=self.entry)
        linked.metadata = dict(self.metadata)
        linked.metadata["linked"] = True
        _post_link_verify(linked)
        return linked

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Program {self.name} ({len(self.modules)} modules)>"


def _post_link_verify(program: "Program") -> None:
    """Verify a freshly linked program when ``REPRO_VERIFY_IR`` is set.

    Opt-in rather than always-on: ``link()`` sits on the hot path of every
    obfuscate/measure cycle, and a structural sweep of a large program is
    not free.  Lazy import — the verifier lives above this module.
    """
    tier = os.environ.get("REPRO_VERIFY_IR")
    if not tier:
        return
    from .verifier import assert_valid
    assert_valid(program, tier=tier)
