"""Functions: named, typed collections of basic blocks."""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Sequence

from .basicblock import BasicBlock
from .instructions import Instruction
from .types import FunctionType, PointerType, Type
from .values import Argument, Value


class Linkage:
    """Symbol visibility of a function within a program."""

    INTERNAL = "internal"     # only referenced within its module
    EXPORTED = "exported"     # may be called or address-taken by other modules
    EXTERNAL = "external"     # declared here, defined elsewhere (e.g. libc)


class Function(Value):
    """A function definition or declaration.

    Attributes relevant to the reproduction:

    * ``linkage`` — drives the fusion trampoline mechanism (exported functions
      keep a forwarding stub);
    * ``attributes`` — free-form metadata; the workloads use ``"cve"`` to mark
      vulnerable functions (Table 3) and ``"uses_setjmp"`` to mark functions
      the fission must treat carefully;
    * ``eh_pairs`` — pairs of (throwing block name, handler block name) used to
      model the C++ EH constraint of section 3.2.4.
    """

    def __init__(self, name: str, ftype: FunctionType,
                 param_names: Optional[Sequence[str]] = None,
                 linkage: str = Linkage.INTERNAL):
        super().__init__(PointerType(ftype), name=name)
        self.ftype = ftype
        self.linkage = linkage
        self.blocks: List[BasicBlock] = []
        self.attributes: Dict[str, object] = {}
        self.eh_pairs: List[tuple] = []
        self.module = None
        names = list(param_names or [])
        while len(names) < len(ftype.param_types):
            names.append(f"arg{len(names)}")
        self.args: List[Argument] = [
            Argument(t, names[i], i, function=self)
            for i, t in enumerate(ftype.param_types)
        ]
        self._name_counter = 0

    # -- basic properties ---------------------------------------------------------

    @property
    def return_type(self) -> Type:
        return self.ftype.return_type

    @property
    def is_variadic(self) -> bool:
        return self.ftype.variadic

    @property
    def is_declaration(self) -> bool:
        return not self.blocks

    @property
    def entry_block(self) -> BasicBlock:
        if not self.blocks:
            raise ValueError(f"function {self.name} has no blocks")
        return self.blocks[0]

    def short(self) -> str:
        return f"@{self.name}"

    # -- block management ---------------------------------------------------------

    def add_block(self, name: str = "", before: Optional[BasicBlock] = None) -> BasicBlock:
        block = BasicBlock(self.unique_name(name or "bb"), parent=self)
        if before is None:
            self.blocks.append(block)
        else:
            self.blocks.insert(self.blocks.index(before), block)
        return block

    def remove_block(self, block: BasicBlock) -> None:
        self.blocks.remove(block)
        block.parent = None

    def get_block(self, name: str) -> Optional[BasicBlock]:
        for block in self.blocks:
            if block.name == name:
                return block
        return None

    def unique_name(self, prefix: str) -> str:
        existing = {b.name for b in self.blocks}
        if prefix not in existing:
            candidate = prefix
        else:
            candidate = None
        while candidate is None or candidate in existing:
            self._name_counter += 1
            candidate = f"{prefix}.{self._name_counter}"
        return candidate

    # -- traversal ----------------------------------------------------------------

    def instructions(self) -> Iterator[Instruction]:
        for block in self.blocks:
            yield from block.instructions

    def predecessors(self) -> Dict[BasicBlock, List[BasicBlock]]:
        preds: Dict[BasicBlock, List[BasicBlock]] = {b: [] for b in self.blocks}
        for block in self.blocks:
            for succ in block.successors():
                preds.setdefault(succ, []).append(block)
        return preds

    def block_count(self) -> int:
        return len(self.blocks)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        kind = "declaration" if self.is_declaration else f"{len(self.blocks)} blocks"
        return f"<Function @{self.name} {self.ftype} ({kind})>"
