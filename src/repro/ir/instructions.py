"""Instruction set of the reproduction IR.

The instruction set mirrors the subset of LLVM IR that the Khaos passes need:
arithmetic/logic, comparisons, stack allocation with explicit loads/stores
(no phi nodes — local variables live in memory, which is also the form in
which the paper describes the fission data-flow rebuild), pointer arithmetic,
direct and indirect calls, casts, select, and the usual terminators including
``switch`` (used by control-flow flattening and by the fusion dispatch).

Every instruction stores its operands in ``self.operands`` so that generic
machinery (cloning, operand replacement, def-use analysis) can treat all
instructions uniformly.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from .types import ArrayType, FunctionType, PointerType, Type, VOID, I1
from .values import Constant, Value


INT_BINARY_OPS = ("add", "sub", "mul", "sdiv", "srem", "and", "or", "xor",
                  "shl", "ashr")
FLOAT_BINARY_OPS = ("fadd", "fsub", "fmul", "fdiv")
BINARY_OPS = INT_BINARY_OPS + FLOAT_BINARY_OPS

ICMP_PREDICATES = ("eq", "ne", "slt", "sle", "sgt", "sge")
FCMP_PREDICATES = ("oeq", "one", "olt", "ole", "ogt", "oge")

CAST_KINDS = ("trunc", "zext", "sext", "fptosi", "sitofp", "bitcast",
              "ptrtoint", "inttoptr", "fpext", "fptrunc")


class Instruction(Value):
    """Base class of all instructions."""

    __slots__ = ("operands", "parent")

    opcode = "instruction"
    is_terminator = False

    def __init__(self, type_: Type, operands: Sequence[Value], name: str = ""):
        super().__init__(type_, name=name)
        self.operands: List[Value] = list(operands)
        self.parent = None  # owning BasicBlock

    # -- generic operand plumbing ------------------------------------------------

    def replace_operand(self, old: Value, new: Value) -> int:
        """Replace every occurrence of ``old`` among the operands; return count."""
        count = 0
        for i, op in enumerate(self.operands):
            if op is old:
                self.operands[i] = new
                count += 1
        return count

    def replace_operands(self, mapping: Dict[Value, Value]) -> None:
        """Identity-based bulk operand replacement."""
        for i, op in enumerate(self.operands):
            for old, new in mapping.items():
                if op is old:
                    self.operands[i] = new
                    break

    def successors(self) -> List["BasicBlockRef"]:
        """Control-flow successors (only meaningful for terminators)."""
        return []

    # -- misc ---------------------------------------------------------------------

    @property
    def has_result(self) -> bool:
        return not self.type.is_void

    def clone_shallow(self) -> "Instruction":
        """Clone the instruction keeping the *same* operand references."""
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{self.opcode} {self.short()}>"


class BinaryOp(Instruction):

    __slots__ = ("op",)
    opcode = "binop"

    def __init__(self, op: str, lhs: Value, rhs: Value, name: str = ""):
        if op not in BINARY_OPS:
            raise ValueError(f"unknown binary op {op!r}")
        super().__init__(lhs.type, [lhs, rhs], name=name)
        self.op = op

    @property
    def lhs(self) -> Value:
        return self.operands[0]

    @property
    def rhs(self) -> Value:
        return self.operands[1]

    def clone_shallow(self) -> "BinaryOp":
        return BinaryOp(self.op, self.lhs, self.rhs, name=self.name)


class Compare(Instruction):

    __slots__ = ("predicate",)
    opcode = "cmp"

    def __init__(self, predicate: str, lhs: Value, rhs: Value, name: str = ""):
        if predicate not in ICMP_PREDICATES + FCMP_PREDICATES:
            raise ValueError(f"unknown comparison predicate {predicate!r}")
        super().__init__(I1, [lhs, rhs], name=name)
        self.predicate = predicate

    @property
    def lhs(self) -> Value:
        return self.operands[0]

    @property
    def rhs(self) -> Value:
        return self.operands[1]

    def clone_shallow(self) -> "Compare":
        return Compare(self.predicate, self.lhs, self.rhs, name=self.name)


class Alloca(Instruction):
    """Allocate ``count`` elements of ``allocated_type`` in the current frame."""

    __slots__ = ("allocated_type", "count")

    opcode = "alloca"

    def __init__(self, allocated_type: Type, count: int = 1, name: str = ""):
        super().__init__(PointerType(allocated_type), [], name=name)
        self.allocated_type = allocated_type
        self.count = count

    def clone_shallow(self) -> "Alloca":
        return Alloca(self.allocated_type, self.count, name=self.name)


class Load(Instruction):

    __slots__ = ()
    opcode = "load"

    def __init__(self, pointer: Value, name: str = ""):
        if not isinstance(pointer.type, PointerType):
            raise TypeError(f"load needs a pointer operand, got {pointer.type}")
        super().__init__(pointer.type.pointee, [pointer], name=name)

    @property
    def pointer(self) -> Value:
        return self.operands[0]

    def clone_shallow(self) -> "Load":
        return Load(self.pointer, name=self.name)


class Store(Instruction):

    __slots__ = ()
    opcode = "store"

    def __init__(self, value: Value, pointer: Value):
        if not isinstance(pointer.type, PointerType):
            raise TypeError(f"store needs a pointer operand, got {pointer.type}")
        super().__init__(VOID, [value, pointer])

    @property
    def value(self) -> Value:
        return self.operands[0]

    @property
    def pointer(self) -> Value:
        return self.operands[1]

    def clone_shallow(self) -> "Store":
        return Store(self.value, self.pointer)


class GetElementPtr(Instruction):
    """Pointer arithmetic: ``&pointer[index]`` for array/element access."""

    __slots__ = ()

    opcode = "gep"

    def __init__(self, pointer: Value, index: Value, name: str = ""):
        if not isinstance(pointer.type, PointerType):
            raise TypeError("gep needs a pointer operand")
        pointee = pointer.type.pointee
        element = pointee.element if isinstance(pointee, ArrayType) else pointee
        super().__init__(PointerType(element), [pointer, index], name=name)

    @property
    def pointer(self) -> Value:
        return self.operands[0]

    @property
    def index(self) -> Value:
        return self.operands[1]

    def clone_shallow(self) -> "GetElementPtr":
        return GetElementPtr(self.pointer, self.index, name=self.name)


class Cast(Instruction):

    __slots__ = ("kind",)
    opcode = "cast"

    def __init__(self, kind: str, value: Value, to_type: Type, name: str = ""):
        if kind not in CAST_KINDS:
            raise ValueError(f"unknown cast kind {kind!r}")
        super().__init__(to_type, [value], name=name)
        self.kind = kind

    @property
    def value(self) -> Value:
        return self.operands[0]

    def clone_shallow(self) -> "Cast":
        return Cast(self.kind, self.value, self.type, name=self.name)


class Select(Instruction):

    __slots__ = ()
    opcode = "select"

    def __init__(self, condition: Value, true_value: Value, false_value: Value,
                 name: str = ""):
        super().__init__(true_value.type, [condition, true_value, false_value],
                         name=name)

    @property
    def condition(self) -> Value:
        return self.operands[0]

    @property
    def true_value(self) -> Value:
        return self.operands[1]

    @property
    def false_value(self) -> Value:
        return self.operands[2]

    def clone_shallow(self) -> "Select":
        return Select(self.condition, self.true_value, self.false_value,
                      name=self.name)


class Call(Instruction):
    """Direct (callee is a Function) or indirect (callee is a pointer value) call."""

    __slots__ = ("may_throw",)

    opcode = "call"

    def __init__(self, callee: Value, args: Sequence[Value], name: str = "",
                 may_throw: bool = False):
        ftype = _callee_function_type(callee)
        super().__init__(ftype.return_type, [callee] + list(args), name=name)
        self.may_throw = may_throw

    @property
    def callee(self) -> Value:
        return self.operands[0]

    @property
    def args(self) -> List[Value]:
        return self.operands[1:]

    @property
    def is_direct(self) -> bool:
        # imported lazily to avoid a circular import at module load time
        from .function import Function
        return isinstance(self.callee, Function)

    def clone_shallow(self) -> "Call":
        return Call(self.callee, self.args, name=self.name,
                    may_throw=self.may_throw)


def _callee_function_type(callee: Value) -> FunctionType:
    type_ = callee.type
    if isinstance(type_, FunctionType):
        return type_
    if isinstance(type_, PointerType) and isinstance(type_.pointee, FunctionType):
        return type_.pointee
    raise TypeError(f"call target has non-function type {type_}")


# -- Terminators ------------------------------------------------------------------


class Terminator(Instruction):

    __slots__ = ()
    is_terminator = True


class Ret(Terminator):

    __slots__ = ()
    opcode = "ret"

    def __init__(self, value: Optional[Value] = None):
        super().__init__(VOID, [value] if value is not None else [])

    @property
    def value(self) -> Optional[Value]:
        return self.operands[0] if self.operands else None

    def clone_shallow(self) -> "Ret":
        return Ret(self.value)


class Branch(Terminator):

    __slots__ = ("target",)
    opcode = "br"

    def __init__(self, target):
        super().__init__(VOID, [])
        self.target = target

    def successors(self):
        return [self.target]

    def clone_shallow(self) -> "Branch":
        return Branch(self.target)


class CondBranch(Terminator):

    __slots__ = ("true_target", "false_target")
    opcode = "condbr"

    def __init__(self, condition: Value, true_target, false_target):
        super().__init__(VOID, [condition])
        self.true_target = true_target
        self.false_target = false_target

    @property
    def condition(self) -> Value:
        return self.operands[0]

    def successors(self):
        return [self.true_target, self.false_target]

    def clone_shallow(self) -> "CondBranch":
        return CondBranch(self.condition, self.true_target, self.false_target)


class Switch(Terminator):

    __slots__ = ("default_target", "cases")
    opcode = "switch"

    def __init__(self, value: Value, default_target,
                 cases: Sequence[Tuple[Constant, object]] = ()):
        super().__init__(VOID, [value])
        self.default_target = default_target
        self.cases: List[Tuple[Constant, object]] = list(cases)

    @property
    def value(self) -> Value:
        return self.operands[0]

    def add_case(self, constant: Constant, target) -> None:
        self.cases.append((constant, target))

    def successors(self):
        return [self.default_target] + [target for _, target in self.cases]

    def clone_shallow(self) -> "Switch":
        return Switch(self.value, self.default_target, list(self.cases))


class Unreachable(Terminator):

    __slots__ = ()
    opcode = "unreachable"

    def __init__(self):
        super().__init__(VOID, [])

    def clone_shallow(self) -> "Unreachable":
        return Unreachable()


# typing helper for successors() return values (block objects)
BasicBlockRef = object
