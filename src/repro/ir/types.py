"""Type system for the reproduction IR.

The IR is deliberately small: integers of various widths, floats, pointers,
fixed arrays, function types and void.  Two pieces of behaviour matter for the
paper reproduction:

* *compatibility* between types (``compatible_type``), used by the fusion
  primitive to decide whether two return values or two parameters may be
  compressed into one slot — "compatible means converting between different
  data types without losing precision" (Khaos, section 3.3.1);
* a stable textual form used by the printer and by binary symbol signatures.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple


class Type:
    """Base class of all IR types."""

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Type) and str(self) == str(other)

    def __hash__(self) -> int:
        return hash(str(self))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{self.__class__.__name__} {self}>"

    @property
    def is_void(self) -> bool:
        return isinstance(self, VoidType)

    @property
    def is_integer(self) -> bool:
        return isinstance(self, IntType)

    @property
    def is_float(self) -> bool:
        return isinstance(self, FloatType)

    @property
    def is_pointer(self) -> bool:
        return isinstance(self, PointerType)

    @property
    def is_function(self) -> bool:
        return isinstance(self, FunctionType)

    @property
    def is_array(self) -> bool:
        return isinstance(self, ArrayType)

    def size_in_slots(self) -> int:
        """Abstract size used by the stack layout (one slot = 8 bytes)."""
        return 1


class VoidType(Type):
    def __str__(self) -> str:
        return "void"

    def size_in_slots(self) -> int:
        return 0


class IntType(Type):
    """A two's-complement integer of ``bits`` width (1, 8, 16, 32, 64).

    Instances are interned per width: ``IntType(64)`` always returns the same
    object, which cuts allocation churn in the hot IR-construction paths
    (types are equal by spelling, so interning is purely an optimisation).
    """

    _interned: dict = {}

    def __new__(cls, bits: int = 64):
        if cls is IntType:
            cached = cls._interned.get(bits)
            if cached is not None:
                return cached
        return super().__new__(cls)

    def __init__(self, bits: int = 64):
        if bits not in (1, 8, 16, 32, 64):
            raise ValueError(f"unsupported integer width: {bits}")
        self.bits = bits
        if type(self) is IntType:
            IntType._interned.setdefault(bits, self)

    def __reduce__(self):
        # Re-intern on unpickle: the default protocol would call
        # ``__new__(cls)`` (bits defaulting to 64) and then overwrite the
        # shared interned instance's ``bits`` via ``__setstate__``.
        return (type(self), (self.bits,))

    def __str__(self) -> str:
        return f"i{self.bits}"

    @property
    def min_value(self) -> int:
        return -(1 << (self.bits - 1)) if self.bits > 1 else 0

    @property
    def max_value(self) -> int:
        return (1 << (self.bits - 1)) - 1 if self.bits > 1 else 1

    def wrap(self, value: int) -> int:
        """Wrap a Python integer into this type's range (two's complement)."""
        mask = (1 << self.bits) - 1
        value &= mask
        if self.bits > 1 and value >= (1 << (self.bits - 1)):
            value -= 1 << self.bits
        return value


class FloatType(Type):
    """An IEEE-ish float; only 32 and 64 bit widths are modelled.

    Interned per width, like :class:`IntType`.
    """

    _interned: dict = {}

    def __new__(cls, bits: int = 64):
        if cls is FloatType:
            cached = cls._interned.get(bits)
            if cached is not None:
                return cached
        return super().__new__(cls)

    def __init__(self, bits: int = 64):
        if bits not in (32, 64):
            raise ValueError(f"unsupported float width: {bits}")
        self.bits = bits
        if type(self) is FloatType:
            FloatType._interned.setdefault(bits, self)

    def __reduce__(self):
        return (type(self), (self.bits,))

    def __str__(self) -> str:
        return f"f{self.bits}"


class PointerType(Type):
    """Pointer to ``pointee``.

    Each pointee type caches its pointer type, so ``PointerType(I64)`` is one
    allocation per distinct pointee object rather than one per call site
    (pointer types are created for every alloca/gep/load during IR builds).
    """

    def __new__(cls, pointee: Type):
        if cls is PointerType:
            cached = pointee.__dict__.get("_pointer_interned")
            if cached is not None:
                return cached
        return super().__new__(cls)

    def __init__(self, pointee: Type):
        self.pointee = pointee
        if type(self) is PointerType:
            pointee.__dict__.setdefault("_pointer_interned", self)

    def __reduce__(self):
        # ``__new__`` requires the pointee, so the default pickle path fails;
        # rebuilding through the constructor also re-interns the pointer type.
        return (type(self), (self.pointee,))

    def __str__(self) -> str:
        return f"{self.pointee}*"


class ArrayType(Type):
    def __init__(self, element: Type, count: int):
        if count < 0:
            raise ValueError("array count must be non-negative")
        self.element = element
        self.count = count

    def __str__(self) -> str:
        return f"[{self.count} x {self.element}]"

    def size_in_slots(self) -> int:
        return max(1, self.count * self.element.size_in_slots())


class FunctionType(Type):
    def __init__(self, return_type: Type, param_types: Sequence[Type],
                 variadic: bool = False):
        self.return_type = return_type
        self.param_types = tuple(param_types)
        self.variadic = variadic

    def __str__(self) -> str:
        params = ", ".join(str(p) for p in self.param_types)
        if self.variadic:
            params = f"{params}, ..." if params else "..."
        return f"{self.return_type} ({params})"


# Convenient singletons -------------------------------------------------------

VOID = VoidType()
I1 = IntType(1)
I8 = IntType(8)
I16 = IntType(16)
I32 = IntType(32)
I64 = IntType(64)
F32 = FloatType(32)
F64 = FloatType(64)


def pointer_to(pointee: Type) -> PointerType:
    return PointerType(pointee)


def compatible_type(a: Type, b: Type) -> Optional[Type]:
    """Return the merged type of ``a`` and ``b`` if they are compatible.

    Compatibility follows the paper's rule: a conversion must not lose
    precision.  Two integers are compatible (merged into the wider one), two
    floats are compatible, two pointers are compatible (merged into ``i8*``
    unless identical), an integer and a pointer are compatible (pointers fit
    in a 64-bit integer slot), but an integer/pointer and a float are not.
    ``void`` merges with anything (the non-void side wins).
    """
    if a == b:
        return a
    if a.is_void:
        return b
    if b.is_void:
        return a
    if a.is_integer and b.is_integer:
        return a if a.bits >= b.bits else b
    if a.is_float and b.is_float:
        return a if a.bits >= b.bits else b
    if a.is_pointer and b.is_pointer:
        return PointerType(I8)
    return None


def compress_parameter_lists(
        a_params: Sequence[Type],
        b_params: Sequence[Type]) -> Tuple[Tuple[Type, ...], Tuple[int, ...], Tuple[int, ...]]:
    """Merge two parameter lists using the paper's compression rule.

    Parameters from the two lists are paired greedily: each parameter of
    ``b`` reuses the first not-yet-claimed slot of ``a`` with a compatible
    type, otherwise it gets a fresh slot.  Returns the merged parameter types
    plus, for each original list, the indices of its parameters in the merged
    list.
    """
    merged = [p for p in a_params]
    a_index = tuple(range(len(a_params)))
    claimed = [False] * len(merged)
    b_index = []
    for p in b_params:
        placed = None
        for i, existing in enumerate(merged):
            if claimed[i] or i >= len(a_params):
                continue
            joint = compatible_type(existing, p)
            if joint is not None:
                merged[i] = joint
                claimed[i] = True
                placed = i
                break
        if placed is None:
            merged.append(p)
            claimed.append(True)
            placed = len(merged) - 1
        b_index.append(placed)
    return tuple(merged), a_index, tuple(b_index)
