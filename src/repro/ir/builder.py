"""A convenience builder for constructing IR, modelled after ``IRBuilder``.

The builder keeps an insertion point (a basic block) and offers one method per
instruction kind.  The workload generators and the obfuscation passes both use
it, so it also provides small conveniences such as automatic constant wrapping
and fresh name generation.
"""

from __future__ import annotations

from typing import Optional, Sequence, Union

from .basicblock import BasicBlock
from .function import Function, Linkage
from .instructions import (Alloca, BinaryOp, Branch, Call, Cast, Compare,
                           CondBranch, GetElementPtr, Instruction, Load, Ret,
                           Select, Store, Switch, Unreachable)
from .module import Module
from .types import FloatType, FunctionType, IntType, PointerType, Type, I1, I64
from .values import Constant, Value


Operand = Union[Value, int, float]


class IRBuilder:
    """Builds instructions at a movable insertion point."""

    def __init__(self, block: Optional[BasicBlock] = None):
        self.block = block
        self._counter = 0

    # -- positioning --------------------------------------------------------------

    def position_at_end(self, block: BasicBlock) -> "IRBuilder":
        self.block = block
        return self

    def _fresh(self, prefix: str) -> str:
        self._counter += 1
        return f"{prefix}{self._counter}"

    def _emit(self, inst: Instruction) -> Instruction:
        if self.block is None:
            raise RuntimeError("builder has no insertion block")
        if self.block.is_terminated:
            raise RuntimeError(
                f"block {self.block.name} already terminated; cannot append "
                f"{inst.opcode}")
        return self.block.append(inst)

    def _coerce(self, value: Operand, type_hint: Optional[Type] = None) -> Value:
        if isinstance(value, Value):
            return value
        if isinstance(value, bool):
            return Constant(I1, int(value))
        if isinstance(value, int):
            return Constant(type_hint if isinstance(type_hint, IntType) else I64,
                            value)
        if isinstance(value, float):
            return Constant(type_hint if isinstance(type_hint, FloatType)
                            else FloatType(64), value)
        raise TypeError(f"cannot coerce {value!r} to an IR value")

    # -- arithmetic / logic -------------------------------------------------------

    def binop(self, op: str, lhs: Operand, rhs: Operand, name: str = "") -> BinaryOp:
        lhs = self._coerce(lhs)
        rhs = self._coerce(rhs, lhs.type)
        return self._emit(BinaryOp(op, lhs, rhs, name=name or self._fresh("t")))

    def add(self, lhs, rhs, name=""):
        return self.binop("add", lhs, rhs, name)

    def sub(self, lhs, rhs, name=""):
        return self.binop("sub", lhs, rhs, name)

    def mul(self, lhs, rhs, name=""):
        return self.binop("mul", lhs, rhs, name)

    def sdiv(self, lhs, rhs, name=""):
        return self.binop("sdiv", lhs, rhs, name)

    def srem(self, lhs, rhs, name=""):
        return self.binop("srem", lhs, rhs, name)

    def and_(self, lhs, rhs, name=""):
        return self.binop("and", lhs, rhs, name)

    def or_(self, lhs, rhs, name=""):
        return self.binop("or", lhs, rhs, name)

    def xor(self, lhs, rhs, name=""):
        return self.binop("xor", lhs, rhs, name)

    def shl(self, lhs, rhs, name=""):
        return self.binop("shl", lhs, rhs, name)

    def ashr(self, lhs, rhs, name=""):
        return self.binop("ashr", lhs, rhs, name)

    def fadd(self, lhs, rhs, name=""):
        return self.binop("fadd", lhs, rhs, name)

    def fsub(self, lhs, rhs, name=""):
        return self.binop("fsub", lhs, rhs, name)

    def fmul(self, lhs, rhs, name=""):
        return self.binop("fmul", lhs, rhs, name)

    def fdiv(self, lhs, rhs, name=""):
        return self.binop("fdiv", lhs, rhs, name)

    def icmp(self, predicate: str, lhs: Operand, rhs: Operand, name: str = "") -> Compare:
        lhs = self._coerce(lhs)
        rhs = self._coerce(rhs, lhs.type)
        return self._emit(Compare(predicate, lhs, rhs,
                                  name=name or self._fresh("cmp")))

    def select(self, cond: Value, a: Operand, b: Operand, name: str = "") -> Select:
        a = self._coerce(a)
        b = self._coerce(b, a.type)
        return self._emit(Select(cond, a, b, name=name or self._fresh("sel")))

    # -- memory -------------------------------------------------------------------

    def alloca(self, type_: Type, count: int = 1, name: str = "") -> Alloca:
        return self._emit(Alloca(type_, count, name=name or self._fresh("ptr")))

    def load(self, pointer: Value, name: str = "") -> Load:
        return self._emit(Load(pointer, name=name or self._fresh("v")))

    def store(self, value: Operand, pointer: Value) -> Store:
        value = self._coerce(value, pointer.type.pointee
                             if isinstance(pointer.type, PointerType) else None)
        return self._emit(Store(value, pointer))

    def gep(self, pointer: Value, index: Operand, name: str = "") -> GetElementPtr:
        index = self._coerce(index)
        return self._emit(GetElementPtr(pointer, index,
                                        name=name or self._fresh("gep")))

    def cast(self, kind: str, value: Operand, to_type: Type, name: str = "") -> Cast:
        value = self._coerce(value)
        return self._emit(Cast(kind, value, to_type,
                               name=name or self._fresh("cast")))

    # -- calls & control flow -----------------------------------------------------

    def call(self, callee: Value, args: Sequence[Operand], name: str = "",
             may_throw: bool = False) -> Call:
        coerced = [self._coerce(a) for a in args]
        return self._emit(Call(callee, coerced,
                               name=name or self._fresh("call"),
                               may_throw=may_throw))

    def ret(self, value: Optional[Operand] = None) -> Ret:
        if value is not None:
            value = self._coerce(value)
        return self._emit(Ret(value))

    def br(self, target: BasicBlock) -> Branch:
        return self._emit(Branch(target))

    def cond_br(self, condition: Value, true_target: BasicBlock,
                false_target: BasicBlock) -> CondBranch:
        return self._emit(CondBranch(condition, true_target, false_target))

    def switch(self, value: Value, default_target: BasicBlock,
               cases: Sequence = ()) -> Switch:
        return self._emit(Switch(value, default_target, cases))

    def unreachable(self) -> Unreachable:
        return self._emit(Unreachable())


def create_function(module: Module, name: str, return_type: Type,
                    param_types: Sequence[Type],
                    param_names: Optional[Sequence[str]] = None,
                    variadic: bool = False,
                    linkage: str = Linkage.INTERNAL) -> Function:
    """Create a function with an entry block and register it in ``module``."""
    ftype = FunctionType(return_type, param_types, variadic=variadic)
    function = Function(name, ftype, param_names=param_names, linkage=linkage)
    function.add_block("entry")
    module.add_function(function)
    return function
