"""The reproduction IR: types, values, instructions, functions and modules.

This package is the substrate every other component builds on: the workload
generators construct programs with :class:`IRBuilder`, the Khaos passes and
the baseline obfuscators transform them, the optimizer cleans them up, the
backend lowers them to binaries for the diffing tools, and the interpreter
executes them to measure runtime overhead.
"""

from .types import (ArrayType, FloatType, FunctionType, IntType, PointerType,
                    Type, VoidType, VOID, I1, I8, I16, I32, I64, F32, F64,
                    compatible_type, compress_parameter_lists, pointer_to)
from .values import (Argument, Constant, GlobalVariable, NullPointer,
                     UndefValue, Value, bool_const, float_const, int_const)
from .instructions import (Alloca, BinaryOp, Branch, Call, Cast, Compare,
                           CondBranch, GetElementPtr, Instruction, Load, Ret,
                           Select, Store, Switch, Terminator, Unreachable,
                           BINARY_OPS, ICMP_PREDICATES)
from .basicblock import BasicBlock
from .function import Function, Linkage
from .module import Module, Program, clone_function_body
from .builder import IRBuilder, create_function
from .printer import function_to_str, instruction_to_str, module_to_str
from .verifier import (VerificationError, assert_valid, verify_function,
                       verify_module, verify_program)

__all__ = [
    "ArrayType", "FloatType", "FunctionType", "IntType", "PointerType", "Type",
    "VoidType", "VOID", "I1", "I8", "I16", "I32", "I64", "F32", "F64",
    "compatible_type", "compress_parameter_lists", "pointer_to",
    "Argument", "Constant", "GlobalVariable", "NullPointer", "UndefValue",
    "Value", "bool_const", "float_const", "int_const",
    "Alloca", "BinaryOp", "Branch", "Call", "Cast", "Compare", "CondBranch",
    "GetElementPtr", "Instruction", "Load", "Ret", "Select", "Store", "Switch",
    "Terminator", "Unreachable", "BINARY_OPS", "ICMP_PREDICATES",
    "BasicBlock", "Function", "Linkage", "Module", "Program",
    "clone_function_body", "IRBuilder", "create_function",
    "function_to_str", "instruction_to_str", "module_to_str",
    "VerificationError", "assert_valid", "verify_function", "verify_module",
    "verify_program",
]
