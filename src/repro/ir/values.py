"""Core value classes of the IR.

Everything that can appear as an instruction operand derives from
:class:`Value`: constants, global variables, function arguments, functions
themselves (used as call targets and as function-pointer constants) and
instructions (defined in :mod:`repro.ir.instructions`).
"""

from __future__ import annotations


from .types import FloatType, IntType, PointerType, Type


class Value:
    """Base class for every IR value.

    The value/instruction hierarchy is allocated in bulk on the hot IR-build
    and cloning paths, so every class in it declares ``__slots__``.
    (:class:`~repro.ir.function.Function` intentionally does not: it carries
    free-form ``attributes`` and is comparatively rare.)
    """

    __slots__ = ("type", "name")

    def __init__(self, type_: Type, name: str = ""):
        self.type = type_
        self.name = name

    def short(self) -> str:
        """Short operand spelling used by the printer."""
        return f"%{self.name}" if self.name else "%<anon>"

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{self.__class__.__name__} {self.short()}: {self.type}>"


class Constant(Value):
    """A literal integer or float constant."""

    __slots__ = ("value",)

    def __init__(self, type_: Type, value):
        super().__init__(type_, name="")
        if isinstance(type_, IntType):
            value = type_.wrap(int(value))
        elif isinstance(type_, FloatType):
            value = float(value)
        self.value = value

    def short(self) -> str:
        return f"{self.type} {self.value}"

    def __eq__(self, other: object) -> bool:
        return (isinstance(other, Constant) and other.type == self.type
                and other.value == self.value)

    def __hash__(self) -> int:
        return hash((str(self.type), self.value))


class UndefValue(Value):
    """An undefined value of a given type (used for padded fusion arguments)."""

    __slots__ = ()

    def short(self) -> str:
        return f"{self.type} undef"


class NullPointer(Constant):
    """The null pointer constant."""

    __slots__ = ()

    def __init__(self, type_: PointerType):
        Value.__init__(self, type_, name="")
        self.value = 0

    def short(self) -> str:
        return f"{self.type} null"


class GlobalVariable(Value):
    """A module-level variable.

    ``value_type`` is the type of the stored data; the value itself has
    pointer-to-``value_type`` type, mirroring LLVM.  ``initializer`` is either
    ``None`` (zero initialised), a Python scalar, or a list of scalars for
    arrays.
    """

    __slots__ = ("value_type", "initializer", "constant", "module")

    def __init__(self, name: str, value_type: Type, initializer=None,
                 constant: bool = False):
        super().__init__(PointerType(value_type), name=name)
        self.value_type = value_type
        self.initializer = initializer
        self.constant = constant
        self.module = None

    def short(self) -> str:
        return f"@{self.name}"


class Argument(Value):
    """A formal parameter of a function."""

    __slots__ = ("index", "function")

    def __init__(self, type_: Type, name: str, index: int, function=None):
        super().__init__(type_, name=name)
        self.index = index
        self.function = function

    def short(self) -> str:
        return f"%{self.name}"


def int_const(value: int, bits: int = 64) -> Constant:
    return Constant(IntType(bits), value)


def float_const(value: float, bits: int = 64) -> Constant:
    return Constant(FloatType(bits), value)


def bool_const(value: bool) -> Constant:
    return Constant(IntType(1), 1 if value else 0)
