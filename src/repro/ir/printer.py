"""Textual form of the IR, used by tests, debugging and documentation."""

from __future__ import annotations


from .basicblock import BasicBlock
from .function import Function
from .instructions import (Alloca, BinaryOp, Branch, Call, Cast, Compare,
                           CondBranch, GetElementPtr, Instruction, Load, Ret,
                           Select, Store, Switch, Unreachable)
from .module import Module
from .values import Argument, Constant, GlobalVariable, UndefValue, Value


def _operand(value: Value) -> str:
    if isinstance(value, Constant):
        return value.short()
    if isinstance(value, (GlobalVariable, Function)):
        return value.short()
    if isinstance(value, UndefValue):
        return value.short()
    if isinstance(value, (Argument, Instruction)):
        return f"%{value.name}"
    return value.short()


def instruction_to_str(inst: Instruction) -> str:
    if isinstance(inst, BinaryOp):
        return (f"%{inst.name} = {inst.op} {inst.type} "
                f"{_operand(inst.lhs)}, {_operand(inst.rhs)}")
    if isinstance(inst, Compare):
        return (f"%{inst.name} = cmp {inst.predicate} "
                f"{_operand(inst.lhs)}, {_operand(inst.rhs)}")
    if isinstance(inst, Alloca):
        suffix = f", count {inst.count}" if inst.count != 1 else ""
        return f"%{inst.name} = alloca {inst.allocated_type}{suffix}"
    if isinstance(inst, Load):
        return f"%{inst.name} = load {inst.type}, {_operand(inst.pointer)}"
    if isinstance(inst, Store):
        return f"store {_operand(inst.value)}, {_operand(inst.pointer)}"
    if isinstance(inst, GetElementPtr):
        return (f"%{inst.name} = gep {_operand(inst.pointer)}, "
                f"{_operand(inst.index)}")
    if isinstance(inst, Cast):
        return (f"%{inst.name} = {inst.kind} {_operand(inst.value)} "
                f"to {inst.type}")
    if isinstance(inst, Select):
        return (f"%{inst.name} = select {_operand(inst.condition)}, "
                f"{_operand(inst.true_value)}, {_operand(inst.false_value)}")
    if isinstance(inst, Call):
        args = ", ".join(_operand(a) for a in inst.args)
        prefix = f"%{inst.name} = " if inst.has_result else ""
        return f"{prefix}call {_operand(inst.callee)}({args})"
    if isinstance(inst, Ret):
        return f"ret {_operand(inst.value)}" if inst.value is not None else "ret void"
    if isinstance(inst, Branch):
        return f"br label %{inst.target.name}"
    if isinstance(inst, CondBranch):
        return (f"br {_operand(inst.condition)}, label %{inst.true_target.name}, "
                f"label %{inst.false_target.name}")
    if isinstance(inst, Switch):
        cases = ", ".join(f"{c.value} -> %{t.name}" for c, t in inst.cases)
        return (f"switch {_operand(inst.value)}, default %{inst.default_target.name} "
                f"[{cases}]")
    if isinstance(inst, Unreachable):
        return "unreachable"
    return f"<{inst.opcode}>"


def block_to_str(block: BasicBlock) -> str:
    lines = [f"{block.name}:"]
    lines.extend(f"  {instruction_to_str(i)}" for i in block.instructions)
    return "\n".join(lines)


def function_to_str(function: Function) -> str:
    params = ", ".join(f"{a.type} %{a.name}" for a in function.args)
    if function.is_variadic:
        params = f"{params}, ..." if params else "..."
    header = f"define {function.return_type} @{function.name}({params})"
    if function.is_declaration:
        return f"declare {function.return_type} @{function.name}({params})"
    body = "\n".join(block_to_str(b) for b in function.blocks)
    return f"{header} [{function.linkage}] {{\n{body}\n}}"


def module_to_str(module: Module) -> str:
    parts = [f"; module {module.name}"]
    for g in module.globals.values():
        init = g.initializer if g.initializer is not None else "zeroinitializer"
        parts.append(f"@{g.name} = global {g.value_type} {init}")
    for f in module.functions.values():
        parts.append(function_to_str(f))
    return "\n\n".join(parts) + "\n"
