"""Compatibility façade over the :mod:`repro.analysis.static` verifier.

Historically this module *was* the verifier — a flat structural check.  The
real implementation now lives in :mod:`repro.analysis.static` with tiered
depth (``structural`` / ``typed`` / ``full``, selectable per call or via
``REPRO_VERIFY_IR``), structured diagnostics, dominance-based def-before-use
and dataflow lints.  This façade keeps the historical API stable for the
passes and tests: the ``verify_*`` functions return rendered error strings,
``assert_valid`` raises :class:`VerificationError`.

The analysis package is imported lazily inside each function:
``repro.ir.__init__`` imports this module at package-load time, and
``repro.analysis`` imports ``repro.ir`` — a module-level import here would
cycle.
"""

from __future__ import annotations

from typing import List, Union

from .function import Function
from .module import Module, Program


class VerificationError(Exception):
    """Raised when IR violates an invariant of the selected verify tier."""

    def __init__(self, errors: List[str]):
        super().__init__("\n".join(errors))
        self.errors = errors


def verify_function(function: Function,
                    tier: Union[None, bool, str] = None,
                    analyses=None) -> List[str]:
    """Error messages (empty when valid) of ``function`` at ``tier``."""
    from ..analysis import static
    return [d.render()
            for d in static.verification_errors(function, tier, analyses)]


def verify_module(module: Module, tier: Union[None, bool, str] = None,
                  analyses=None) -> List[str]:
    from ..analysis import static
    return [d.render()
            for d in static.verification_errors(module, tier, analyses)]


def verify_program(program: Program, raise_on_error: bool = True,
                   tier: Union[None, bool, str] = None,
                   analyses=None) -> List[str]:
    from ..analysis import static
    errors = [d.render()
              for d in static.verification_errors(program, tier, analyses)]
    if errors and raise_on_error:
        raise VerificationError(errors)
    return errors


def assert_valid(obj, tier: Union[None, bool, str] = None,
                 analyses=None) -> None:
    """Verify a Function, Module or Program and raise on any error."""
    from ..analysis import static
    errors = [d.render() for d in static.verification_errors(obj, tier,
                                                             analyses)]
    if errors:
        raise VerificationError(errors)
