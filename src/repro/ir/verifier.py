"""Structural verifier for the IR.

Obfuscation passes rewrite functions aggressively; the verifier catches the
common classes of breakage early (missing terminators, dangling block
references, operands defined in a different function, call arity mismatches).
It is used throughout the test suite and can be enabled after every pass via
``PassManager(verify_each=True)``.
"""

from __future__ import annotations

from typing import List

from .function import Function
from .instructions import (Branch, Call, CondBranch, Instruction, Ret, Switch,
                           Terminator)
from .module import Module, Program
from .values import Argument, Constant, GlobalVariable, UndefValue, Value


class VerificationError(Exception):
    """Raised when a module violates a structural invariant."""

    def __init__(self, errors: List[str]):
        super().__init__("\n".join(errors))
        self.errors = errors


def verify_function(function: Function) -> List[str]:
    errors: List[str] = []
    if function.is_declaration:
        return errors

    blocks = set(id(b) for b in function.blocks)
    defined: set = {id(a) for a in function.args}
    instruction_owner = {}
    for block in function.blocks:
        for inst in block.instructions:
            instruction_owner[id(inst)] = block
            defined.add(id(inst))

    for block in function.blocks:
        if not block.instructions:
            errors.append(f"{function.name}:{block.name}: empty block")
            continue
        terminators = [i for i in block.instructions if i.is_terminator]
        if not terminators:
            errors.append(f"{function.name}:{block.name}: missing terminator")
        elif len(terminators) > 1:
            errors.append(f"{function.name}:{block.name}: multiple terminators")
        elif not block.instructions[-1].is_terminator:
            errors.append(
                f"{function.name}:{block.name}: terminator is not the last instruction")

        for inst in block.instructions:
            for succ in inst.successors():
                if id(succ) not in blocks:
                    errors.append(
                        f"{function.name}:{block.name}: branch to block "
                        f"{getattr(succ, 'name', succ)!r} not in function")
            for op in inst.operands:
                if op is None:
                    errors.append(
                        f"{function.name}:{block.name}: null operand in {inst.opcode}")
                    continue
                if isinstance(op, (Constant, GlobalVariable, Function, UndefValue)):
                    continue
                if isinstance(op, Argument):
                    if op.function is not None and op.function is not function:
                        errors.append(
                            f"{function.name}:{block.name}: argument %{op.name} "
                            f"belongs to @{op.function.name}")
                    continue
                if isinstance(op, Instruction):
                    if id(op) not in defined:
                        errors.append(
                            f"{function.name}:{block.name}: operand %{op.name} of "
                            f"{inst.opcode} is defined in another function")
                    continue

            if isinstance(inst, Call):
                callee = inst.callee
                if isinstance(callee, Function):
                    expected = len(callee.ftype.param_types)
                    got = len(inst.args)
                    if callee.ftype.variadic:
                        if got < expected:
                            errors.append(
                                f"{function.name}: call to variadic @{callee.name} "
                                f"with too few args ({got} < {expected})")
                    elif expected != got:
                        errors.append(
                            f"{function.name}: call to @{callee.name} with {got} "
                            f"args, expected {expected}")

            if isinstance(inst, Ret):
                want_void = function.return_type.is_void
                if want_void and inst.value is not None:
                    errors.append(
                        f"{function.name}: ret with value in void function")
                if not want_void and inst.value is None:
                    errors.append(
                        f"{function.name}: ret void in non-void function")
    return errors


def verify_module(module: Module) -> List[str]:
    errors: List[str] = []
    for function in module.functions.values():
        errors.extend(verify_function(function))
    return errors


def verify_program(program: Program, raise_on_error: bool = True) -> List[str]:
    errors: List[str] = []
    for module in program.modules:
        errors.extend(verify_module(module))
    if errors and raise_on_error:
        raise VerificationError(errors)
    return errors


def assert_valid(obj) -> None:
    """Verify a Function, Module or Program and raise on any error."""
    if isinstance(obj, Function):
        errors = verify_function(obj)
    elif isinstance(obj, Module):
        errors = verify_module(obj)
    elif isinstance(obj, Program):
        errors = verify_program(obj, raise_on_error=False)
    else:
        raise TypeError(f"cannot verify {type(obj)!r}")
    if errors:
        raise VerificationError(errors)
