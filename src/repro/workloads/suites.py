"""The paper's test suites, rebuilt as synthetic workloads.

* **T-I** — all C/C++ programs of SPEC CPU 2006 and 2017 (performance and
  diffing-accuracy experiments);
* **T-II** — the 108 CoreUtils 8.32 programs (diffing-accuracy experiments);
* **T-III** — five embedded programs, each containing at least one function
  with a known CVE (Table 3; vulnerable-code-hiding experiment).

Each program is a deterministic :class:`~repro.workloads.synth.ProgramProfile`
keyed by its name, so every experiment regenerates the same binaries.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from ..ir.module import Program
from ..utils import stable_hash
from .synth import ProgramProfile, VulnerableFunctionSpec, synthesize_program

SPEC_CPU_2006 = (
    "400.perlbench", "401.bzip2", "403.gcc", "429.mcf", "433.milc",
    "444.namd", "445.gobmk", "447.dealII", "450.soplex", "453.povray",
    "456.hmmer", "458.sjeng", "462.libquantum", "464.h264ref", "470.lbm",
    "471.omnetpp", "473.astar", "482.sphinx3", "483.xalancbmk",
)

SPEC_CPU_2017 = (
    "500.perlbench_r", "502.gcc_r", "505.mcf_r", "508.namd_r", "510.parest_r",
    "511.povray_r", "519.lbm_r", "520.omnetpp_r", "523.xalancbmk_r",
    "525.x264_r", "526.blender_r", "531.deepsjeng_r", "538.imagick_r",
    "541.leela_r", "544.nab_r", "557.xz_r", "600.perlbench_s", "602.gcc_s",
    "605.mcf_s", "619.lbm_s", "620.omnetpp_s", "623.xalancbmk_s", "625.x264_s",
    "631.deepsjeng_s", "638.imagick_s", "641.leela_s", "644.nab_s", "657.xz_s",
)

# Figure 9 uses the SPECint 2006 and SPECspeed 2017 C/C++ programs.
SPECINT_2006 = (
    "400.perlbench", "401.bzip2", "429.mcf", "445.gobmk", "456.hmmer",
    "458.sjeng", "462.libquantum", "464.h264ref", "473.astar", "483.xalancbmk",
)
SPECSPEED_2017 = (
    "600.perlbench_s", "605.mcf_s", "620.omnetpp_s", "623.xalancbmk_s",
    "625.x264_s", "631.deepsjeng_s", "641.leela_s", "657.xz_s",
)

COREUTILS_8_32 = (
    "arch", "b2sum", "base32", "base64", "basename", "basenc", "cat", "chcon",
    "chgrp", "chmod", "chown", "chroot", "cksum", "comm", "cp", "csplit",
    "cut", "date", "dd", "df", "dir", "dircolors", "dirname", "du", "echo",
    "env", "expand", "expr", "factor", "false", "fmt", "fold", "groups",
    "head", "hostid", "id", "install", "join", "kill", "link", "ln", "logname",
    "ls", "md5sum", "mkdir", "mkfifo", "mknod", "mktemp", "mv", "nice", "nl",
    "nohup", "nproc", "numfmt", "od", "paste", "pathchk", "pinky", "pr",
    "printenv", "printf", "ptx", "pwd", "readlink", "realpath", "rm", "rmdir",
    "runcon", "seq", "sha1sum", "sha224sum", "sha256sum", "sha384sum",
    "sha512sum", "shred", "shuf", "sleep", "sort", "split", "stat", "stdbuf",
    "stty", "sum", "sync", "tac", "tail", "tee", "test", "timeout", "touch",
    "tr", "true", "truncate", "tsort", "tty", "uname", "unexpand", "uniq",
    "unlink", "uptime", "users", "vdir", "wc", "who", "whoami", "yes",
    "[", "md5sum.textutils",
)

# Table 3: vulnerable functions of the T-III programs.
EMBEDDED_VULNERABILITIES: Dict[str, Tuple[Tuple[str, Tuple[str, ...]], ...]] = {
    "jerryscript": (
        ("opfunc_spread_arguments", ("CVE-2020-13991",)),
    ),
    "quickjs": (
        ("compute_stack_size_rec", ("CVE-2020-22876",)),
    ),
    "busybox-1.33.1": (
        ("getvar_s", ("CVE-2021-42382",)),
        ("handle_special", ("CVE-2021-42384",)),
    ),
    "openssl-1.1.1": (
        ("init_sig_algs", ("CVE-2021-3449",)),
        ("EC_GROUP_set_generator", ("CVE-2019-1547",)),
    ),
    "libcurl-7.34.0": (
        ("suboption", ("CVE-2021-22925", "CVE-2021-22898")),
        ("init_wc_data", ("CVE-2020-8285",)),
        ("conn_is_conn", ("CVE-2020-8231",)),
        ("tftp_connect", ("CVE-2019-5482", "CVE-2019-5436")),
        ("ftp_state_list", ("CVE-2018-1000120",)),
        ("alloc_addbyter", ("CVE-2016-8618",)),
        ("Curl_cookie_getlist", ("CVE-2016-8623",)),
        ("ConnectionExists", ("CVE-2016-8616", "CVE-2016-0755",
                              "CVE-2014-0138", "CVE-2015-3143")),
    ),
}

_VULN_KERNEL_KINDS = ("string_scan", "state_machine", "checksum",
                      "binary_search", "histogram", "rle_length")


@dataclass
class WorkloadProgram:
    """A named workload: build() synthesises its IR program on demand."""

    name: str
    suite: str
    profile: ProgramProfile

    def build(self) -> Program:
        return synthesize_program(self.profile)

    @property
    def vulnerable_functions(self) -> List[str]:
        return [spec.function_name for spec in self.profile.vulnerable]


def _profile_for(name: str, suite: str, kernel_count: int, driver_count: int,
                 iterations: int,
                 vulnerable: Sequence[VulnerableFunctionSpec] = ()) -> ProgramProfile:
    seed = stable_hash(suite, name)
    return ProgramProfile(
        name=name, suite=suite, seed=seed,
        kernel_count=kernel_count, driver_count=driver_count,
        iterations=iterations, vulnerable=tuple(vulnerable))


def spec2006_programs() -> List[WorkloadProgram]:
    programs = []
    for index, name in enumerate(SPEC_CPU_2006):
        kernel_count = 10 + (index % 4) * 2
        programs.append(WorkloadProgram(
            name, "spec2006",
            _profile_for(name, "spec2006", kernel_count,
                         driver_count=4 + index % 3, iterations=3)))
    return programs


def spec2017_programs() -> List[WorkloadProgram]:
    programs = []
    for index, name in enumerate(SPEC_CPU_2017):
        kernel_count = 11 + (index % 5) * 2
        programs.append(WorkloadProgram(
            name, "spec2017",
            _profile_for(name, "spec2017", kernel_count,
                         driver_count=4 + index % 4, iterations=3)))
    return programs


def coreutils_programs() -> List[WorkloadProgram]:
    programs = []
    for index, name in enumerate(COREUTILS_8_32):
        kernel_count = 4 + (index % 4)
        programs.append(WorkloadProgram(
            name, "coreutils",
            _profile_for(name, "coreutils", kernel_count,
                         driver_count=1 + index % 2, iterations=2)))
    return programs


def embedded_programs() -> List[WorkloadProgram]:
    programs = []
    for index, (name, vulns) in enumerate(sorted(EMBEDDED_VULNERABILITIES.items())):
        specs = [VulnerableFunctionSpec(
                     function_name=function_name, cves=cves,
                     kernel_kind=_VULN_KERNEL_KINDS[(index + j) % len(_VULN_KERNEL_KINDS)])
                 for j, (function_name, cves) in enumerate(vulns)]
        kernel_count = 14 + index
        programs.append(WorkloadProgram(
            name, "embedded",
            _profile_for(name, "embedded", kernel_count, driver_count=4,
                         iterations=3, vulnerable=specs)))
    return programs


_SUITES = {
    "spec2006": spec2006_programs,
    "spec2017": spec2017_programs,
    "coreutils": coreutils_programs,
    "embedded": embedded_programs,
}


def suite_names() -> List[str]:
    return sorted(_SUITES)


def load_suite(name: str) -> List[WorkloadProgram]:
    """Load a suite by name (``spec2006``, ``spec2017``, ``coreutils``,
    ``embedded``); ``t1`` / ``t2`` / ``t3`` aliases follow the paper."""
    aliases = {"t1": None, "t2": "coreutils", "t3": "embedded"}
    if name == "t1":
        return spec2006_programs() + spec2017_programs()
    name = aliases.get(name, name) or name
    if name not in _SUITES:
        raise KeyError(f"unknown suite {name!r}; expected one of "
                       f"{sorted(_SUITES) + ['t1', 't2', 't3']}")
    return _SUITES[name]()


def find_program(name: str) -> WorkloadProgram:
    for suite in _SUITES.values():
        for program in suite():
            if program.name == name:
                return program
    raise KeyError(f"unknown workload program {name!r}")
