"""Seeded program synthesiser.

Composes kernels from :mod:`repro.workloads.kernels` into multi-module
programs with the structural features the Khaos evaluation depends on:

* many mid-sized functions with loops and branches (fission material);
* functions with compatible signatures (fusion material);
* direct call chains through *driver* functions (call-graph features);
* an indirect-call *dispatcher* over address-taken kernels (tagged-pointer
  handling);
* a function containing ``setjmp`` and a function with a modelled try/catch
  pair (the fission side conditions);
* a two-module layout with exported symbols (trampoline handling under LTO);
* a deterministic ``main`` whose observable output doubles as the semantic
  oracle and whose dynamic cycle count is the runtime-overhead metric.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..ir.builder import IRBuilder, create_function
from ..ir.function import Function, Linkage
from ..ir.module import Module, Program
from ..ir.types import FunctionType, PointerType, I64
from ..ir.verifier import assert_valid
from ..utils import stable_hash
from .kernels import build_kernel

# Kernels with the (i64, i64) -> i64 shape, usable behind a function pointer.
_TWO_ARG_KERNELS = ("checksum", "rle_length", "gcd_chain", "power_mod",
                    "binary_search", "state_machine", "histogram",
                    "dot_product", "poly_eval", "string_scan")
_ONE_ARG_KERNELS = ("collatz", "bubble_pass", "fib_recursive", "matrix_mul",
                    "newton_sqrt")
_THREE_ARG_KERNELS = ("saturating_math",)
_SPECIAL_KERNELS = ("setjmp_guard", "eh_pair")


@dataclass
class VulnerableFunctionSpec:
    """A named vulnerable function (Table 3) to inject into the program."""

    function_name: str
    cves: Tuple[str, ...]
    kernel_kind: str = "string_scan"


@dataclass
class ProgramProfile:
    """Deterministic description of one synthetic program."""

    name: str
    suite: str = "misc"
    seed: int = 1
    kernel_count: int = 12
    driver_count: int = 3
    dispatcher: bool = True
    include_special: bool = True
    two_modules: bool = True
    iterations: int = 3
    vulnerable: Tuple[VulnerableFunctionSpec, ...] = ()

    def rng(self) -> random.Random:
        return random.Random(stable_hash(self.suite, self.name, self.seed))


def synthesize_program(profile: ProgramProfile) -> Program:
    """Build the program described by ``profile`` (deterministically)."""
    rng = profile.rng()
    lib = Module(f"{profile.name}.lib")
    app = Module(f"{profile.name}.app") if profile.two_modules else lib

    putint = app.declare_function("putint", FunctionType(I64, [I64]))
    if lib is not app:
        lib.declare_function("putint", FunctionType(I64, [I64]))

    kernels = _build_kernels(profile, rng, lib, app)
    drivers = _build_drivers(profile, rng, app, kernels)
    dispatcher = _build_dispatcher(profile, rng, app, kernels) \
        if profile.dispatcher else None
    _build_main(profile, rng, app, putint, kernels, drivers, dispatcher)

    modules = [lib, app] if lib is not app else [app]
    program = Program(profile.name, modules, entry="main")
    program.metadata["suite"] = profile.suite
    program.metadata["profile_seed"] = profile.seed
    assert_valid(program)
    return program


# -- pieces ---------------------------------------------------------------------------


def _build_kernels(profile: ProgramProfile, rng: random.Random,
                   lib: Module, app: Module) -> Dict[str, List[Function]]:
    """Create kernel functions grouped by arity category."""
    groups: Dict[str, List[Function]] = {"two": [], "one": [], "three": [],
                                         "special": [], "vulnerable": []}
    # draw kinds in shuffled rounds so one program rarely contains more than a
    # couple of structurally identical functions (near-duplicates would make
    # the diffing precision metric ambiguous)
    all_kinds = list(_TWO_ARG_KERNELS + _ONE_ARG_KERNELS + _THREE_ARG_KERNELS)
    kernel_count = min(profile.kernel_count, len(all_kinds))
    pool: List[str] = []
    while len(pool) < kernel_count:
        round_kinds = list(all_kinds)
        rng.shuffle(round_kinds)
        pool.extend(round_kinds)

    for index in range(kernel_count):
        kind = pool[index]
        target = lib if (profile.two_modules and rng.random() < 0.5) else app
        name = f"{kind}_{index}"
        function = build_kernel(kind, target, name, rng)
        if target is lib:
            function.linkage = Linkage.EXPORTED
        if kind in _TWO_ARG_KERNELS:
            groups["two"].append(function)
        elif kind in _ONE_ARG_KERNELS:
            groups["one"].append(function)
        else:
            groups["three"].append(function)

    if profile.include_special:
        for kind in _SPECIAL_KERNELS:
            function = build_kernel(kind, app, f"{kind}_fn", rng)
            groups["special"].append(function)

    for spec in profile.vulnerable:
        target = lib if profile.two_modules else app
        function = build_kernel(spec.kernel_kind, target, spec.function_name, rng)
        function.linkage = Linkage.EXPORTED
        function.attributes["cve"] = list(spec.cves)
        function.attributes["vulnerable"] = True
        groups["vulnerable"].append(function)
        if spec.kernel_kind in _TWO_ARG_KERNELS:
            groups["two"].append(function)
        elif spec.kernel_kind in _ONE_ARG_KERNELS:
            groups["one"].append(function)
    return groups


def _call_kernel(builder: IRBuilder, kernel: Function, first, second):
    """Call a kernel with however many arguments its signature needs."""
    arity = len(kernel.args)
    if arity == 1:
        return builder.call(kernel, [first])
    if arity == 2:
        return builder.call(kernel, [first, second])
    return builder.call(kernel, [first, second, builder.add(first, second)])


def _build_drivers(profile: ProgramProfile, rng: random.Random, app: Module,
                   kernels: Dict[str, List[Function]]) -> List[Function]:
    callable_kernels = (kernels["two"] + kernels["one"] + kernels["three"]
                        + kernels["vulnerable"])
    if not callable_kernels:
        return []
    drivers: List[Function] = []
    for index in range(profile.driver_count):
        driver = create_function(app, f"driver_{index}", I64, [I64, I64],
                                 ["work", "salt"])
        b = IRBuilder(driver.entry_block)
        acc = b.alloca(I64, name="acc")
        b.store(driver.args[1], acc)

        chosen = rng.sample(callable_kernels,
                            k=min(len(callable_kernels), rng.randint(2, 4)))
        for position, kernel in enumerate(chosen):
            value = _call_kernel(b, kernel,
                                 b.add(driver.args[0], position),
                                 b.xor(driver.args[1], position * 3))
            b.store(b.xor(b.load(acc), value), acc)

        low = f"{index}.low"
        high = f"{index}.high"
        low_block = driver.add_block(low)
        high_block = driver.add_block(high)
        b.cond_br(b.icmp("slt", b.load(acc), 0), low_block, high_block)
        b.position_at_end(low_block)
        b.ret(b.sub(0, b.load(acc)))
        b.position_at_end(high_block)
        b.ret(b.and_(b.load(acc), 0xFFFFFF))
        drivers.append(driver)
    return drivers


def _build_dispatcher(profile: ProgramProfile, rng: random.Random, app: Module,
                      kernels: Dict[str, List[Function]]) -> Optional[Function]:
    targets = kernels["two"][:4]
    if len(targets) < 2:
        return None
    fptr_type = PointerType(targets[0].ftype)
    dispatcher = create_function(app, "dispatch_op", I64, [I64, I64, I64],
                                 ["which", "a", "b"])
    b = IRBuilder(dispatcher.entry_block)
    slot = b.alloca(fptr_type, name="handler")
    blocks = [dispatcher.add_block(f"case_{i}") for i in range(len(targets))]
    join = dispatcher.add_block("join")

    selector = b.srem(dispatcher.args[0], len(targets))
    from ..ir.values import Constant
    default = blocks[0]
    cases = [(Constant(I64, i), block) for i, block in enumerate(blocks[1:], start=1)]
    b.switch(selector, default, cases)
    for block, target in zip(blocks, targets):
        b.position_at_end(block)
        b.store(target, slot)
        b.br(join)
    b.position_at_end(join)
    handler = b.load(slot)
    result = b.call(handler, [dispatcher.args[1], dispatcher.args[2]])
    b.ret(result)
    return dispatcher


def _build_main(profile: ProgramProfile, rng: random.Random, app: Module,
                putint: Function, kernels: Dict[str, List[Function]],
                drivers: Sequence[Function],
                dispatcher: Optional[Function]) -> None:
    main = create_function(app, "main", I64, [], linkage=Linkage.EXPORTED)
    b = IRBuilder(main.entry_block)
    acc = b.alloca(I64, name="acc")
    index = b.alloca(I64, name="i")
    b.store(rng.randrange(1, 64), acc)
    b.store(0, index)

    loop = main.add_block("loop")
    body = main.add_block("body")
    done = main.add_block("done")
    b.br(loop)
    b.position_at_end(loop)
    i = b.load(index)
    b.cond_br(b.icmp("slt", i, profile.iterations), body, done)

    b.position_at_end(body)
    current = b.load(acc)
    for position, driver in enumerate(drivers):
        value = b.call(driver, [b.add(i, position), b.xor(current, position)])
        current = b.xor(current, value)
    if dispatcher is not None:
        value = b.call(dispatcher, [i, b.add(i, 5), b.and_(current, 0xFF)])
        current = b.add(current, value)
    for special in kernels["special"]:
        value = b.call(special, [b.and_(current, 31)])
        current = b.xor(current, value)
    b.store(current, acc)
    b.call(putint, [b.and_(current, 0xFFFF)])
    b.store(b.add(i, 1), index)
    b.br(loop)

    b.position_at_end(done)
    final = b.load(acc)
    b.call(putint, [final])
    b.ret(b.and_(final, 0xFF))
