"""A library of hand-written algorithmic kernels.

The paper evaluates Khaos on SPEC CPU 2006/2017, CoreUtils and embedded
software.  Those sources are not available offline, so the workload suites are
synthesised from this kernel library: each kernel is a realistic function
(loops, branches, local arrays, arithmetic mixes, recursion) built directly in
the reproduction IR.  The synthesiser (:mod:`repro.workloads.synth`) composes
kernels, glue functions, indirect-call dispatchers and a driving ``main`` into
named programs with the paper's program names.

Every kernel builder has the signature ``build(module, name, rng) -> Function``
and produces a deterministic function for a given name/seed.
"""

from __future__ import annotations

import random
from typing import Callable, Dict, List

from ..ir.builder import IRBuilder, create_function
from ..ir.function import Function
from ..ir.module import Module
from ..ir.types import FunctionType, PointerType, F64, I64
from ..ir.values import Constant

KernelBuilder = Callable[[Module, str, random.Random], Function]

_REGISTRY: Dict[str, KernelBuilder] = {}


def register(name: str) -> Callable[[KernelBuilder], KernelBuilder]:
    def decorator(builder: KernelBuilder) -> KernelBuilder:
        _REGISTRY[name] = builder
        return builder
    return decorator


def kernel_names() -> List[str]:
    return sorted(_REGISTRY)


def build_kernel(kind: str, module: Module, name: str,
                 rng: random.Random) -> Function:
    return _REGISTRY[kind](module, name, rng)


# -- helpers --------------------------------------------------------------------------


def _counted_loop(function: Function, builder: IRBuilder, bound):
    """Create a canonical counted loop; returns (loop, body, done, index_slot)."""
    index = builder.alloca(I64, name="i")
    builder.store(0, index)
    loop = function.add_block("loop")
    body = function.add_block("body")
    done = function.add_block("done")
    builder.br(loop)
    builder.position_at_end(loop)
    current = builder.load(index)
    builder.cond_br(builder.icmp("slt", current, bound), body, done)
    builder.position_at_end(body)
    return loop, body, done, index


def _advance(builder: IRBuilder, index, loop) -> None:
    builder.store(builder.add(builder.load(index), 1), index)
    builder.br(loop)


# -- integer kernels --------------------------------------------------------------------


@register("checksum")
def build_checksum(module: Module, name: str, rng: random.Random) -> Function:
    """Fill a buffer from a seed and accumulate a mixing checksum over it."""
    f = create_function(module, name, I64, [I64, I64], ["n", "seed"])
    b = IRBuilder(f.entry_block)
    size = 16 + rng.randrange(4) * 8
    buf = b.alloca(I64, count=size, name="buf")
    bound = b.srem(f.args[0], size)
    bound = b.select(b.icmp("slt", bound, 1), 1, bound)

    loop, body, done, index = _counted_loop(f, b, bound)
    i = b.load(index)
    cell = b.gep(buf, i)
    mixed = b.xor(b.mul(b.add(f.args[1], i), 2654435761), b.shl(i, 3))
    b.store(mixed, cell)
    _advance(b, index, loop)

    b.position_at_end(done)
    acc = b.alloca(I64, name="acc")
    b.store(f.args[1], acc)
    loop2, body2, done2, index2 = _counted_loop(f, b, bound)
    i2 = b.load(index2)
    value = b.load(b.gep(buf, i2))
    skip = f.add_block("skip")
    take = f.add_block("take")
    cont = f.add_block("cont")
    b.cond_br(b.icmp("eq", b.srem(value, 3), 0), skip, take)
    b.position_at_end(take)
    b.store(b.add(b.load(acc), value), acc)
    b.br(cont)
    b.position_at_end(skip)
    b.store(b.xor(b.load(acc), 0x5A5A), acc)
    b.br(cont)
    b.position_at_end(cont)
    _advance(b, index2, loop2)
    b.position_at_end(done2)
    b.ret(b.load(acc))
    return f


@register("rle_length")
def build_rle_length(module: Module, name: str, rng: random.Random) -> Function:
    """Compute the run-length-encoded size of a synthetic byte stream."""
    f = create_function(module, name, I64, [I64, I64], ["n", "seed"])
    b = IRBuilder(f.entry_block)
    size = 24
    data = b.alloca(I64, count=size, name="data")
    loop, body, done, index = _counted_loop(f, b, size)
    i = b.load(index)
    value = b.and_(b.sdiv(b.mul(b.add(i, f.args[1]), 11), 7), 3)
    b.store(value, b.gep(data, i))
    _advance(b, index, loop)

    b.position_at_end(done)
    runs = b.alloca(I64, name="runs")
    prev = b.alloca(I64, name="prev")
    b.store(0, runs)
    b.store(-1, prev)
    loop2, body2, done2, index2 = _counted_loop(f, b, size)
    i2 = b.load(index2)
    value2 = b.load(b.gep(data, i2))
    same = f.add_block("same")
    diff = f.add_block("diff")
    cont = f.add_block("cont")
    b.cond_br(b.icmp("eq", value2, b.load(prev)), same, diff)
    b.position_at_end(diff)
    b.store(b.add(b.load(runs), 2), runs)
    b.store(value2, prev)
    b.br(cont)
    b.position_at_end(same)
    b.br(cont)
    b.position_at_end(cont)
    _advance(b, index2, loop2)
    b.position_at_end(done2)
    b.ret(b.add(b.load(runs), f.args[0]))
    return f


@register("collatz")
def build_collatz(module: Module, name: str, rng: random.Random) -> Function:
    """Total Collatz trajectory length for values below a small bound."""
    f = create_function(module, name, I64, [I64], ["n"])
    b = IRBuilder(f.entry_block)
    total = b.alloca(I64, name="total")
    value = b.alloca(I64, name="value")
    b.store(0, total)
    limit = b.and_(f.args[0], 31)
    limit = b.add(limit, 2)

    outer_loop, outer_body, outer_done, outer_index = _counted_loop(f, b, limit)
    start = b.add(b.load(outer_index), 1)
    b.store(start, value)
    inner = f.add_block("inner")
    odd = f.add_block("odd")
    even = f.add_block("even")
    step = f.add_block("step")
    inner_done = f.add_block("inner_done")
    b.br(inner)
    b.position_at_end(inner)
    current = b.load(value)
    b.cond_br(b.icmp("sle", current, 1), inner_done, step)
    b.position_at_end(step)
    b.cond_br(b.icmp("eq", b.and_(current, 1), 0), even, odd)
    b.position_at_end(even)
    b.store(b.ashr(current, 1), value)
    b.store(b.add(b.load(total), 1), total)
    b.br(inner)
    b.position_at_end(odd)
    b.store(b.add(b.mul(current, 3), 1), value)
    b.store(b.add(b.load(total), 1), total)
    b.br(inner)
    b.position_at_end(inner_done)
    _advance(b, outer_index, outer_loop)
    b.position_at_end(outer_done)
    b.ret(b.load(total))
    return f


@register("gcd_chain")
def build_gcd_chain(module: Module, name: str, rng: random.Random) -> Function:
    """Iterated Euclid's algorithm over a derived sequence of pairs."""
    f = create_function(module, name, I64, [I64, I64], ["a", "b"])
    b = IRBuilder(f.entry_block)
    x = b.alloca(I64, name="x")
    y = b.alloca(I64, name="y")
    acc = b.alloca(I64, name="acc")
    b.store(b.add(b.mul(f.args[0], 7), 13), x)
    b.store(b.add(b.mul(f.args[1], 5), 11), y)
    b.store(0, acc)

    loop = f.add_block("gcd_loop")
    body = f.add_block("gcd_body")
    done = f.add_block("gcd_done")
    b.br(loop)
    b.position_at_end(loop)
    b.cond_br(b.icmp("ne", b.load(y), 0), body, done)
    b.position_at_end(body)
    remainder = b.srem(b.load(x), b.load(y))
    b.store(b.load(y), x)
    b.store(remainder, y)
    b.store(b.add(b.load(acc), 1), acc)
    b.br(loop)
    b.position_at_end(done)
    b.ret(b.add(b.load(x), b.load(acc)))
    return f


@register("power_mod")
def build_power_mod(module: Module, name: str, rng: random.Random) -> Function:
    """Square-and-multiply modular exponentiation."""
    modulus = rng.choice((1000003, 999983, 104729))
    f = create_function(module, name, I64, [I64, I64], ["base", "exponent"])
    b = IRBuilder(f.entry_block)
    result = b.alloca(I64, name="result")
    base = b.alloca(I64, name="base_slot")
    exponent = b.alloca(I64, name="exp_slot")
    b.store(1, result)
    b.store(b.srem(f.args[0], modulus), base)
    b.store(b.and_(f.args[1], 63), exponent)

    loop = f.add_block("loop")
    body = f.add_block("body")
    multiply = f.add_block("multiply")
    square = f.add_block("square")
    done = f.add_block("done")
    b.br(loop)
    b.position_at_end(loop)
    b.cond_br(b.icmp("sgt", b.load(exponent), 0), body, done)
    b.position_at_end(body)
    b.cond_br(b.icmp("eq", b.and_(b.load(exponent), 1), 1), multiply, square)
    b.position_at_end(multiply)
    b.store(b.srem(b.mul(b.load(result), b.load(base)), modulus), result)
    b.br(square)
    b.position_at_end(square)
    b.store(b.srem(b.mul(b.load(base), b.load(base)), modulus), base)
    b.store(b.ashr(b.load(exponent), 1), exponent)
    b.br(loop)
    b.position_at_end(done)
    b.ret(b.load(result))
    return f


@register("bubble_pass")
def build_bubble_pass(module: Module, name: str, rng: random.Random) -> Function:
    """Bubble-sort a small synthetic array and return an order fingerprint."""
    size = 12
    f = create_function(module, name, I64, [I64], ["seed"])
    b = IRBuilder(f.entry_block)
    data = b.alloca(I64, count=size, name="data")
    loop, body, done, index = _counted_loop(f, b, size)
    i = b.load(index)
    b.store(b.and_(b.mul(b.add(i, f.args[0]), 37), 255), b.gep(data, i))
    _advance(b, index, loop)

    b.position_at_end(done)
    outer_loop, outer_body, outer_done, outer_index = _counted_loop(f, b, size - 1)
    inner_loop, inner_body, inner_done, inner_index = _counted_loop(f, b, size - 1)
    j = b.load(inner_index)
    left_ptr = b.gep(data, j)
    right_ptr = b.gep(data, b.add(j, 1))
    left = b.load(left_ptr)
    right = b.load(right_ptr)
    swap = f.add_block("swap")
    keep = f.add_block("keep")
    b.cond_br(b.icmp("sgt", left, right), swap, keep)
    b.position_at_end(swap)
    b.store(right, left_ptr)
    b.store(left, right_ptr)
    b.br(keep)
    b.position_at_end(keep)
    _advance(b, inner_index, inner_loop)
    b.position_at_end(inner_done)
    _advance(b, outer_index, outer_loop)

    b.position_at_end(outer_done)
    acc = b.alloca(I64, name="acc")
    b.store(0, acc)
    sum_loop, sum_body, sum_done, sum_index = _counted_loop(f, b, size)
    k = b.load(sum_index)
    b.store(b.add(b.mul(b.load(acc), 3), b.load(b.gep(data, k))), acc)
    _advance(b, sum_index, sum_loop)
    b.position_at_end(sum_done)
    b.ret(b.load(acc))
    return f


@register("binary_search")
def build_binary_search(module: Module, name: str, rng: random.Random) -> Function:
    """Binary search in a synthetic sorted table, counting probes."""
    size = 32
    f = create_function(module, name, I64, [I64, I64], ["needle", "scale"])
    b = IRBuilder(f.entry_block)
    table = b.alloca(I64, count=size, name="table")
    loop, body, done, index = _counted_loop(f, b, size)
    i = b.load(index)
    b.store(b.add(b.mul(i, 3), f.args[1]), b.gep(table, i))
    _advance(b, index, loop)

    b.position_at_end(done)
    lo = b.alloca(I64, name="lo")
    hi = b.alloca(I64, name="hi")
    probes = b.alloca(I64, name="probes")
    b.store(0, lo)
    b.store(size - 1, hi)
    b.store(0, probes)
    target = b.add(b.srem(f.args[0], size * 3), f.args[1])

    search = f.add_block("search")
    check = f.add_block("check")
    narrow = f.add_block("narrow")
    go_right = f.add_block("go_right")
    go_left = f.add_block("go_left")
    found = f.add_block("found")
    missing = f.add_block("missing")
    b.br(search)
    b.position_at_end(search)
    b.cond_br(b.icmp("sle", b.load(lo), b.load(hi)), check, missing)
    b.position_at_end(check)
    mid = b.ashr(b.add(b.load(lo), b.load(hi)), 1)
    b.store(b.add(b.load(probes), 1), probes)
    value = b.load(b.gep(table, mid))
    b.cond_br(b.icmp("eq", value, target), found, narrow)
    b.position_at_end(narrow)
    b.cond_br(b.icmp("slt", value, target), go_right, go_left)
    b.position_at_end(go_right)
    b.store(b.add(mid, 1), lo)
    b.br(search)
    b.position_at_end(go_left)
    b.store(b.sub(mid, 1), hi)
    b.br(search)
    b.position_at_end(found)
    b.ret(b.mul(b.load(probes), 2))
    b.position_at_end(missing)
    b.ret(b.add(b.load(probes), 100))
    return f


@register("state_machine")
def build_state_machine(module: Module, name: str, rng: random.Random) -> Function:
    """A token-scanner-like state machine driven by a pseudo-random stream."""
    f = create_function(module, name, I64, [I64, I64], ["n", "seed"])
    b = IRBuilder(f.entry_block)
    state = b.alloca(I64, name="state")
    count = b.alloca(I64, name="count")
    stream = b.alloca(I64, name="stream")
    b.store(0, state)
    b.store(0, count)
    b.store(f.args[1], stream)
    steps = b.add(b.and_(f.args[0], 31), 8)

    loop, body, done, index = _counted_loop(f, b, steps)
    current = b.load(stream)
    symbol = b.and_(current, 3)
    b.store(b.add(b.mul(current, 1103515245), 12345), stream)

    s0 = f.add_block("s0")
    s1 = f.add_block("s1")
    s2 = f.add_block("s2")
    advance = f.add_block("advance")
    state_value = b.load(state)
    b.switch(state_value, s0, [(Constant(I64, 1), s1), (Constant(I64, 2), s2)])
    b.position_at_end(s0)
    b.store(b.select(b.icmp("eq", symbol, 0), 1, 0), state)
    b.br(advance)
    b.position_at_end(s1)
    b.store(b.select(b.icmp("eq", symbol, 1), 2, 0), state)
    b.br(advance)
    b.position_at_end(s2)
    b.store(b.add(b.load(count), 1), count)
    b.store(0, state)
    b.br(advance)
    b.position_at_end(advance)
    _advance(b, index, loop)
    b.position_at_end(done)
    b.ret(b.load(count))
    return f


@register("histogram")
def build_histogram(module: Module, name: str, rng: random.Random) -> Function:
    """Bucket a derived stream into a small histogram and score its skew."""
    buckets = 8
    f = create_function(module, name, I64, [I64, I64], ["n", "seed"])
    b = IRBuilder(f.entry_block)
    hist = b.alloca(I64, count=buckets, name="hist")
    loop, body, done, index = _counted_loop(f, b, buckets)
    b.store(0, b.gep(hist, b.load(index)))
    _advance(b, index, loop)

    b.position_at_end(done)
    samples = b.add(b.and_(f.args[0], 63), buckets)
    loop2, body2, done2, index2 = _counted_loop(f, b, samples)
    i2 = b.load(index2)
    raw = b.xor(b.mul(b.add(i2, f.args[1]), 2246822519), i2)
    slot = b.and_(raw, buckets - 1)
    cell = b.gep(hist, slot)
    b.store(b.add(b.load(cell), 1), cell)
    _advance(b, index2, loop2)

    b.position_at_end(done2)
    best = b.alloca(I64, name="best")
    b.store(0, best)
    loop3, body3, done3, index3 = _counted_loop(f, b, buckets)
    value = b.load(b.gep(hist, b.load(index3)))
    better = f.add_block("better")
    worse = f.add_block("worse")
    b.cond_br(b.icmp("sgt", value, b.load(best)), better, worse)
    b.position_at_end(better)
    b.store(value, best)
    b.br(worse)
    b.position_at_end(worse)
    _advance(b, index3, loop3)
    b.position_at_end(done3)
    b.ret(b.mul(b.load(best), 10))
    return f


@register("fib_recursive")
def build_fib_recursive(module: Module, name: str, rng: random.Random) -> Function:
    """Recursive Fibonacci with a memo-free small bound (exercises recursion)."""
    f = create_function(module, name, I64, [I64], ["n"])
    b = IRBuilder(f.entry_block)
    small = f.add_block("small")
    recurse = f.add_block("recurse")
    clamped = b.and_(f.args[0], 7)
    b.cond_br(b.icmp("sle", clamped, 1), small, recurse)
    b.position_at_end(small)
    b.ret(clamped)
    b.position_at_end(recurse)
    left = b.call(f, [b.sub(clamped, 1)])
    right = b.call(f, [b.sub(clamped, 2)])
    b.ret(b.add(left, right))
    return f


@register("saturating_math")
def build_saturating_math(module: Module, name: str, rng: random.Random) -> Function:
    """Branch-heavy saturating arithmetic chain."""
    limit = rng.choice((1 << 20, 1 << 24, 1 << 30))
    f = create_function(module, name, I64, [I64, I64, I64], ["a", "b", "c"])
    b = IRBuilder(f.entry_block)
    total = b.alloca(I64, name="total")
    b.store(0, total)

    def saturate(value):
        clipped_high = b.select(b.icmp("sgt", value, limit), limit, value)
        return b.select(b.icmp("slt", clipped_high, 0 - limit), 0 - limit,
                        clipped_high)

    first = saturate(b.mul(f.args[0], f.args[1]))
    second = saturate(b.add(first, b.mul(f.args[2], 17)))
    third = saturate(b.sub(second, b.sdiv(f.args[0], 3)))
    b.store(b.add(b.load(total), third), total)

    positive = f.add_block("positive")
    negative = f.add_block("negative")
    merge = f.add_block("merge")
    b.cond_br(b.icmp("sge", third, 0), positive, negative)
    b.position_at_end(positive)
    b.store(b.add(b.load(total), b.and_(third, 0xFF)), total)
    b.br(merge)
    b.position_at_end(negative)
    b.store(b.sub(b.load(total), 5), total)
    b.br(merge)
    b.position_at_end(merge)
    b.ret(b.load(total))
    return f


@register("matrix_mul")
def build_matrix_mul(module: Module, name: str, rng: random.Random) -> Function:
    """4x4 integer matrix multiply with an accumulating trace."""
    dim = 4
    f = create_function(module, name, I64, [I64], ["seed"])
    b = IRBuilder(f.entry_block)
    a = b.alloca(I64, count=dim * dim, name="a")
    c = b.alloca(I64, count=dim * dim, name="c")
    loop, body, done, index = _counted_loop(f, b, dim * dim)
    i = b.load(index)
    b.store(b.and_(b.add(b.mul(i, 7), f.args[0]), 15), b.gep(a, i))
    b.store(0, b.gep(c, i))
    _advance(b, index, loop)

    b.position_at_end(done)
    row_loop, row_body, row_done, row_index = _counted_loop(f, b, dim)
    col_loop, col_body, col_done, col_index = _counted_loop(f, b, dim)
    k_loop, k_body, k_done, k_index = _counted_loop(f, b, dim)
    row = b.load(row_index)
    col = b.load(col_index)
    k = b.load(k_index)
    left = b.load(b.gep(a, b.add(b.mul(row, dim), k)))
    right = b.load(b.gep(a, b.add(b.mul(k, dim), col)))
    cell = b.gep(c, b.add(b.mul(row, dim), col))
    b.store(b.add(b.load(cell), b.mul(left, right)), cell)
    _advance(b, k_index, k_loop)
    b.position_at_end(k_done)
    _advance(b, col_index, col_loop)
    b.position_at_end(col_done)
    _advance(b, row_index, row_loop)

    b.position_at_end(row_done)
    trace = b.alloca(I64, name="trace")
    b.store(0, trace)
    t_loop, t_body, t_done, t_index = _counted_loop(f, b, dim)
    t = b.load(t_index)
    b.store(b.add(b.load(trace), b.load(b.gep(c, b.add(b.mul(t, dim), t)))), trace)
    _advance(b, t_index, t_loop)
    b.position_at_end(t_done)
    b.ret(b.load(trace))
    return f


@register("string_scan")
def build_string_scan(module: Module, name: str, rng: random.Random) -> Function:
    """Count occurrences of a byte class in a synthetic buffer (cal_file-like)."""
    size = 40
    f = create_function(module, name, I64, [I64, I64], ["needle", "seed"])
    b = IRBuilder(f.entry_block)
    buf = b.alloca(I64, count=size, name="buf")

    invalid = f.add_block("invalid")
    valid = f.add_block("valid")
    b.cond_br(b.icmp("slt", f.args[0], 0), invalid, valid)
    b.position_at_end(invalid)
    b.ret(-1)

    b.position_at_end(valid)
    loop, body, done, index = _counted_loop(f, b, size)
    i = b.load(index)
    byte = b.and_(b.mul(b.add(i, f.args[1]), 131), 127)
    b.store(byte, b.gep(buf, i))
    _advance(b, index, loop)

    b.position_at_end(done)
    count = b.alloca(I64, name="count")
    b.store(0, count)
    needle = b.and_(f.args[0], 127)
    loop2, body2, done2, index2 = _counted_loop(f, b, size)
    value = b.load(b.gep(buf, b.load(index2)))
    hit = f.add_block("hit")
    miss = f.add_block("miss")
    b.cond_br(b.icmp("eq", b.and_(value, 0x60), b.and_(needle, 0x60)), hit, miss)
    b.position_at_end(hit)
    b.store(b.add(b.load(count), 1), count)
    b.br(miss)
    b.position_at_end(miss)
    _advance(b, index2, loop2)
    b.position_at_end(done2)
    b.ret(b.load(count))
    return f


# -- floating point kernels ----------------------------------------------------------------


@register("newton_sqrt")
def build_newton_sqrt(module: Module, name: str, rng: random.Random) -> Function:
    """Newton iteration for a square root, returned as a scaled integer."""
    f = create_function(module, name, I64, [I64], ["x"])
    b = IRBuilder(f.entry_block)
    magnitude = b.add(b.and_(f.args[0], 1023), 2)
    as_float = b.cast("sitofp", magnitude, F64)
    guess = b.alloca(F64, name="guess")
    b.store(b.fdiv(as_float, 2.0), guess)

    loop, body, done, index = _counted_loop(f, b, 8)
    g = b.load(guess)
    improved = b.fmul(b.fadd(g, b.fdiv(as_float, g)), 0.5)
    b.store(improved, guess)
    _advance(b, index, loop)
    b.position_at_end(done)
    scaled = b.fmul(b.load(guess), 1000.0)
    b.ret(b.cast("fptosi", scaled, I64))
    return f


@register("dot_product")
def build_dot_product(module: Module, name: str, rng: random.Random) -> Function:
    """Floating-point dot product of two derived vectors."""
    size = 16
    f = create_function(module, name, I64, [I64, I64], ["n", "seed"])
    b = IRBuilder(f.entry_block)
    xs = b.alloca(F64, count=size, name="xs")
    ys = b.alloca(F64, count=size, name="ys")
    loop, body, done, index = _counted_loop(f, b, size)
    i = b.load(index)
    fi = b.cast("sitofp", i, F64)
    seed = b.cast("sitofp", b.and_(f.args[1], 15), F64)
    b.store(b.fadd(b.fmul(fi, 1.5), seed), b.gep(xs, i))
    b.store(b.fsub(b.fmul(fi, 0.75), 2.0), b.gep(ys, i))
    _advance(b, index, loop)

    b.position_at_end(done)
    total = b.alloca(F64, name="total")
    b.store(0.0, total)
    loop2, body2, done2, index2 = _counted_loop(f, b, size)
    i2 = b.load(index2)
    product = b.fmul(b.load(b.gep(xs, i2)), b.load(b.gep(ys, i2)))
    b.store(b.fadd(b.load(total), product), total)
    _advance(b, index2, loop2)
    b.position_at_end(done2)
    b.ret(b.cast("fptosi", b.fmul(b.load(total), 100.0), I64))
    return f


@register("poly_eval")
def build_poly_eval(module: Module, name: str, rng: random.Random) -> Function:
    """Horner evaluation of a fixed polynomial at a derived point."""
    degree = 6
    coeffs = [rng.randrange(1, 9) for _ in range(degree)]
    f = create_function(module, name, I64, [I64, I64], ["x", "scale"])
    b = IRBuilder(f.entry_block)
    x = b.srem(f.args[0], 17)
    acc = b.alloca(I64, name="acc")
    b.store(coeffs[0], acc)
    for coefficient in coeffs[1:]:
        current = b.load(acc)
        b.store(b.add(b.mul(current, x), coefficient), acc)
    scaled = b.mul(b.load(acc), b.select(b.icmp("eq", f.args[1], 0), 1, f.args[1]))
    b.ret(b.srem(scaled, 1000003))
    return f


# -- kernels exercising special control flow ------------------------------------------------


@register("setjmp_guard")
def build_setjmp_guard(module: Module, name: str, rng: random.Random) -> Function:
    """A function whose entry region contains a setjmp call site.

    The fission pass must refuse to separate the region holding the setjmp
    call (section 3.2.4); this kernel exists so that constraint is exercised
    by every suite.
    """
    setjmp = module.declare_function(
        "setjmp", FunctionType(I64, [PointerType(I64)]))
    f = create_function(module, name, I64, [I64], ["n"])
    b = IRBuilder(f.entry_block)
    jmpbuf = b.alloca(I64, count=8, name="jmpbuf")
    flag = b.call(setjmp, [jmpbuf])
    normal = f.add_block("normal")
    recovered = f.add_block("recovered")
    work = f.add_block("work")
    done = f.add_block("done")
    b.cond_br(b.icmp("eq", flag, 0), normal, recovered)
    b.position_at_end(recovered)
    b.ret(-1)
    b.position_at_end(normal)
    total = b.alloca(I64, name="total")
    b.store(0, total)
    b.br(work)
    b.position_at_end(work)
    bound = b.and_(f.args[0], 15)
    loop, body, loop_done, index = _counted_loop(f, b, bound)
    b.store(b.add(b.load(total), b.mul(b.load(index), 3)), total)
    _advance(b, index, loop)
    b.position_at_end(loop_done)
    b.br(done)
    b.position_at_end(done)
    b.ret(b.load(total))
    return f


@register("eh_pair")
def build_eh_pair(module: Module, name: str, rng: random.Random) -> Function:
    """A function with a modelled try/catch pair (EH consistency constraint)."""
    may_throw = module.declare_function("may_throw_helper",
                                        FunctionType(I64, [I64]))
    f = create_function(module, name, I64, [I64], ["n"])
    b = IRBuilder(f.entry_block)
    tryb = f.add_block("try")
    catchb = f.add_block("catch")
    after = f.add_block("after")
    b.br(tryb)
    b.position_at_end(tryb)
    risky = b.call(may_throw, [f.args[0]], may_throw=True)
    b.cond_br(b.icmp("slt", risky, 0), catchb, after)
    b.position_at_end(catchb)
    b.ret(-7)
    b.position_at_end(after)
    b.ret(b.add(risky, 1))
    f.eh_pairs.append(("try", "catch"))
    return f
