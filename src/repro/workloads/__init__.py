"""Synthetic workload suites standing in for SPEC CPU, CoreUtils and the
embedded (T-III) programs of the paper."""

from .kernels import build_kernel, kernel_names
from .synth import ProgramProfile, VulnerableFunctionSpec, synthesize_program
from .suites import (COREUTILS_8_32, EMBEDDED_VULNERABILITIES, SPEC_CPU_2006,
                     SPEC_CPU_2017, SPECINT_2006, SPECSPEED_2017,
                     WorkloadProgram, coreutils_programs, embedded_programs,
                     find_program, load_suite, spec2006_programs,
                     spec2017_programs, suite_names)

__all__ = [
    "build_kernel", "kernel_names", "ProgramProfile", "VulnerableFunctionSpec",
    "synthesize_program", "COREUTILS_8_32", "EMBEDDED_VULNERABILITIES",
    "SPEC_CPU_2006", "SPEC_CPU_2017", "SPECINT_2006", "SPECSPEED_2017",
    "WorkloadProgram", "coreutils_programs", "embedded_programs",
    "find_program", "load_suite", "spec2006_programs", "spec2017_programs",
    "suite_names",
]
