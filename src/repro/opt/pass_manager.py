"""Pass management and optimization options.

The obfuscation passes and the classic optimizations all plug into the same
:class:`PassManager`.  :class:`OptOptions` captures the knobs BinTuner-style
iterative compilation searches over (optimization level, inline threshold,
individual pass toggles, LTO).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Iterable, List, Optional, Tuple, Union

from ..analysis.manager import AnalysisManager, PRESERVE_ALL
from ..ir.function import Function
from ..ir.module import Module, Program
from ..ir.verifier import assert_valid


class Pass:
    """Base class: a named transformation over a program.

    Passes receive an :class:`~repro.analysis.manager.AnalysisManager` and
    fetch every analysis through it instead of constructing CFGs, dominator
    trees or def-use chains ad hoc.  ``preserves`` names the analyses that
    remain valid when the pass reports a change (``PRESERVE_ALL`` for pure
    queries); everything else is invalidated by the driving :class:`Pass.run`.
    """

    name = "pass"
    preserves: Union[str, Tuple[str, ...]] = ()

    def run(self, program: Program,
            analyses: Optional[AnalysisManager] = None) -> bool:
        """Run over the program; return True if anything changed."""
        raise NotImplementedError


class FunctionPass(Pass):
    """A pass applied independently to every defined function."""

    def run(self, program: Program,
            analyses: Optional[AnalysisManager] = None) -> bool:
        analyses = analyses if analyses is not None else AnalysisManager()
        changed = False
        for module in program.modules:
            for function in list(module.functions.values()):
                if function.is_declaration:
                    continue
                function_changed = bool(self.run_on_function(function, analyses))
                if function_changed:
                    analyses.invalidate(function, preserve=self.preserves)
                changed |= function_changed
        return changed

    def run_on_function(self, function: Function,
                        analyses: Optional[AnalysisManager] = None) -> bool:
        raise NotImplementedError


class ModulePass(Pass):
    """A pass applied to each module as a whole."""

    def run(self, program: Program,
            analyses: Optional[AnalysisManager] = None) -> bool:
        analyses = analyses if analyses is not None else AnalysisManager()
        changed = False
        for module in program.modules:
            module_changed = bool(self.run_on_module(module, analyses))
            if module_changed:
                analyses.invalidate_module(module, preserve=self.preserves)
            changed |= module_changed
        return changed

    def run_on_module(self, module: Module,
                      analyses: Optional[AnalysisManager] = None) -> bool:
        raise NotImplementedError


@dataclass
class OptOptions:
    """Compiler configuration, the search space of BinTuner (Figure 9)."""

    level: int = 2                 # 0..3, mirrors -O0/-O1/-O2/-O3
    lto: bool = True               # the paper builds everything with -O2 + LTO
    inline_threshold: int = 30     # max callee size (instructions) to inline
    enable_inlining: bool = True
    enable_simplify_cfg: bool = True
    enable_constant_folding: bool = True
    enable_dce: bool = True
    enable_dead_function_elim: bool = True
    iterations: int = 2            # fixed-point rounds of the scalar pipeline

    def label(self) -> str:
        lto = "+LTO" if self.lto else ""
        return f"O{self.level}{lto}"

    def with_level(self, level: int) -> "OptOptions":
        return replace(self, level=level)


class PassManager:
    """Runs a pass sequence, optionally verifying the program after each.

    ``verify_each`` accepts ``False`` (off), ``True`` (tier selected by
    ``REPRO_VERIFY_IR``, defaulting to ``structural``) or an explicit tier
    name (``"structural"`` / ``"typed"`` / ``"full"``).  Verification runs
    through the manager's own :class:`AnalysisManager`, so the dominator
    trees the ``full`` tier walks are the ones the passes already cached,
    and per-function verify results stay warm across passes that did not
    touch the function.
    """

    def __init__(self, passes: Optional[Iterable[Pass]] = None,
                 verify_each: Union[bool, str] = False,
                 analyses: Optional[AnalysisManager] = None):
        self.passes: List[Pass] = list(passes or [])
        self.verify_each = verify_each
        self.history: List[str] = []
        self.analyses = analyses if analyses is not None else AnalysisManager()

    def add(self, pass_: Pass) -> "PassManager":
        self.passes.append(pass_)
        return self

    def run(self, program: Program) -> bool:
        changed = False
        verify_tier = self.verify_each
        for pass_ in self.passes:
            pass_changed = pass_.run(program, self.analyses)
            changed |= bool(pass_changed)
            self.history.append(f"{pass_.name}:{'changed' if pass_changed else 'no-op'}")
            if verify_tier:
                assert_valid(program, tier=verify_tier,
                             analyses=self.analyses)
        return changed
