"""Control-flow graph simplification.

Three cleanups, driven to a fixed point:

* removal of blocks unreachable from the entry;
* merging of a block into its unique predecessor when that predecessor's only
  successor is the block (straight-line merge);
* skipping of empty forwarding blocks (a block containing only an
  unconditional branch).

After Khaos restructures code these cleanups run again and produce block
shapes that differ markedly from the original function — which is exactly the
effect the paper relies on.

The default implementation is *incremental*: it removes unreachable blocks
once up front (the other two rewrites never disconnect a block from the
entry), then maintains local successor/predecessor edge lists — with
multiplicity, exactly as :class:`~repro.analysis.cfg.ControlFlowGraph`
reports them — and updates those lists in place after every merge and skip.
No analysis is rebuilt and no ``AnalysisManager.invalidate()`` happens per
change; the driving :class:`~repro.opt.pass_manager.FunctionPass` invalidates
once at the end iff the function changed.

The previous fixed-point implementation — which re-fetched the CFG after
every single rewrite — is kept as the reference semantics behind
``SimplifyCFG(legacy=True)`` or ``REPRO_SIMPLIFY_CFG=legacy`` and is
differential-tested against the incremental one
(``tests/test_simplify_cfg_incremental.py``).  Merges take priority over
skips in both implementations, so they reach the same normal form
block-for-block.
"""

from __future__ import annotations

import os
from collections import deque
from typing import Dict, List, Optional

from ..analysis.manager import AnalysisManager
from ..ir.basicblock import BasicBlock
from ..ir.function import Function
from ..ir.instructions import Branch, CondBranch, Switch, Terminator
from .pass_manager import FunctionPass


def _retarget_terminator(term: Optional[Terminator], old: BasicBlock,
                         new: BasicBlock) -> None:
    """Replace every edge ``term -> old`` with ``term -> new``."""
    if isinstance(term, Branch):
        if term.target is old:
            term.target = new
    elif isinstance(term, CondBranch):
        if term.true_target is old:
            term.true_target = new
        if term.false_target is old:
            term.false_target = new
    elif isinstance(term, Switch):
        if term.default_target is old:
            term.default_target = new
        term.cases = [(c, new if t is old else t) for c, t in term.cases]


def _retarget(function: Function, old: BasicBlock, new: BasicBlock) -> None:
    for block in function.blocks:
        _retarget_terminator(block.terminator, old, new)


class SimplifyCFG(FunctionPass):
    name = "simplify-cfg"
    preserves = ()  # restructures the block graph wholesale

    def __init__(self, legacy: Optional[bool] = None):
        if legacy is None:
            legacy = os.environ.get("REPRO_SIMPLIFY_CFG", "") == "legacy"
        self.legacy = legacy

    def run_on_function(self, function: Function,
                        analyses: Optional[AnalysisManager] = None) -> bool:
        if self.legacy:
            return self._run_legacy(function, analyses)
        return self._run_incremental(function)

    # -- incremental implementation ------------------------------------------------

    @staticmethod
    def _run_incremental(function: Function) -> bool:
        blocks = function.blocks
        if not blocks:
            return False
        changed = False

        # unreachable removal, once: merges transfer edges and skips reroute
        # them, so neither ever disconnects a block from the entry
        entry = blocks[0]
        reachable = {entry}
        stack = [entry]
        while stack:
            for succ in stack.pop().successors():
                if succ not in reachable:
                    reachable.add(succ)
                    stack.append(succ)
        if len(reachable) != len(blocks):
            for block in [b for b in blocks if b not in reachable]:
                function.remove_block(block)
            changed = True

        # local edge lists, with multiplicity (a condbr whose two targets
        # coincide contributes two entries, matching ControlFlowGraph)
        succs: Dict[BasicBlock, List[BasicBlock]] = {
            b: list(b.successors()) for b in function.blocks}
        preds: Dict[BasicBlock, List[BasicBlock]] = {b: [] for b in function.blocks}
        for block in function.blocks:
            for succ in succs[block]:
                preds[succ].append(block)

        # two worklists so merges keep global priority over skips, mirroring
        # the legacy fixed point (merge wherever possible, then one skip,
        # then re-check merges)
        merge_q = deque(function.blocks)
        merge_set = set(merge_q)
        skip_q = deque(function.blocks)
        skip_set = set(skip_q)

        def enqueue(block: BasicBlock) -> None:
            if block.parent is not function:
                return
            if block not in merge_set:
                merge_q.append(block)
                merge_set.add(block)
            if block not in skip_set:
                skip_q.append(block)
                skip_set.add(block)

        while merge_q or skip_q:
            while merge_q:
                block = merge_q.popleft()
                merge_set.discard(block)
                if block.parent is not function:
                    continue
                merged = False
                while True:
                    block_succs = succs[block]
                    if len(block_succs) != 1:
                        break
                    succ = block_succs[0]
                    if (succ is entry or succ is block
                            or len(preds[succ]) != 1):
                        break
                    # merge succ into block
                    block.remove(block.terminator)
                    for inst in list(succ.instructions):
                        succ.remove(inst)
                        block.append(inst)
                    function.remove_block(succ)
                    inherited = succs.pop(succ)
                    succs[block] = inherited
                    del preds[succ]
                    for s in inherited:
                        s_preds = preds[s]
                        for i, p in enumerate(s_preds):
                            if p is succ:
                                s_preds[i] = block
                    changed = True
                    merged = True
                    for s in inherited:
                        enqueue(s)
                if merged and block not in skip_set:
                    # the merged block may now hold only a branch
                    skip_q.append(block)
                    skip_set.add(block)

            while skip_q:
                block = skip_q.popleft()
                skip_set.discard(block)
                if block.parent is not function or block is entry:
                    continue
                if len(block.instructions) != 1:
                    continue
                term = block.terminator
                if not isinstance(term, Branch) or term.target is block:
                    continue
                target = term.target
                block_preds = preds.pop(block)
                seen_ids = set()
                unique_preds: List[BasicBlock] = []
                for p in block_preds:
                    if id(p) not in seen_ids:
                        seen_ids.add(id(p))
                        unique_preds.append(p)
                for p in unique_preds:
                    _retarget_terminator(p.terminator, block, target)
                    p_succs = succs[p]
                    for i, s in enumerate(p_succs):
                        if s is block:
                            p_succs[i] = target
                preds[target] = ([p for p in preds[target] if p is not block]
                                 + block_preds)
                del succs[block]
                function.remove_block(block)
                changed = True
                enqueue(target)
                for p in unique_preds:
                    enqueue(p)
                break  # give merges priority again after every skip

        return changed

    # -- legacy fixed-point implementation (reference semantics) -------------------

    def _run_legacy(self, function: Function,
                    analyses: Optional[AnalysisManager] = None) -> bool:
        analyses = analyses if analyses is not None else AnalysisManager()
        changed = False
        while True:
            local = (self._remove_unreachable(function, analyses)
                     or self._merge_straight_line(function, analyses)
                     or self._skip_forwarding_blocks(function, analyses))
            if not local:
                break
            changed = True
        return changed

    @staticmethod
    def _remove_unreachable(function: Function,
                            analyses: AnalysisManager) -> bool:
        cfg = analyses.cfg(function)
        dead = cfg.unreachable_blocks()
        for block in dead:
            function.remove_block(block)
        if dead:
            analyses.invalidate(function)
        return bool(dead)

    @staticmethod
    def _merge_straight_line(function: Function,
                             analyses: AnalysisManager) -> bool:
        cfg = analyses.cfg(function)
        for block in function.blocks:
            succs = cfg.successors.get(block, [])
            if len(succs) != 1:
                continue
            succ = succs[0]
            if succ is function.entry_block or succ is block:
                continue
            if len(cfg.predecessors.get(succ, [])) != 1:
                continue
            # merge succ into block
            term = block.terminator
            block.remove(term)
            for inst in list(succ.instructions):
                succ.remove(inst)
                block.append(inst)
            function.remove_block(succ)
            analyses.invalidate(function)
            return True
        return False

    @staticmethod
    def _skip_forwarding_blocks(function: Function,
                                analyses: AnalysisManager) -> bool:
        for block in function.blocks:
            if block is function.entry_block:
                continue
            if len(block.instructions) != 1:
                continue
            term = block.terminator
            if not isinstance(term, Branch):
                continue
            target = term.target
            if target is block:
                continue
            _retarget(function, block, target)
            function.remove_block(block)
            analyses.invalidate(function)
            return True
        return False
