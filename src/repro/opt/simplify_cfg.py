"""Control-flow graph simplification.

Three cleanups, iterated to a fixed point:

* removal of blocks unreachable from the entry;
* merging of a block into its unique predecessor when that predecessor's only
  successor is the block (straight-line merge);
* skipping of empty forwarding blocks (a block containing only an
  unconditional branch).

After Khaos restructures code these cleanups run again and produce block
shapes that differ markedly from the original function — which is exactly the
effect the paper relies on.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..analysis.manager import AnalysisManager
from ..ir.basicblock import BasicBlock
from ..ir.function import Function
from ..ir.instructions import Branch, CondBranch, Switch
from .pass_manager import FunctionPass


def _retarget(function: Function, old: BasicBlock, new: BasicBlock) -> None:
    for block in function.blocks:
        term = block.terminator
        if term is None:
            continue
        if isinstance(term, Branch) and term.target is old:
            term.target = new
        elif isinstance(term, CondBranch):
            if term.true_target is old:
                term.true_target = new
            if term.false_target is old:
                term.false_target = new
        elif isinstance(term, Switch):
            if term.default_target is old:
                term.default_target = new
            term.cases = [(c, new if t is old else t) for c, t in term.cases]


class SimplifyCFG(FunctionPass):
    name = "simplify-cfg"
    preserves = ()  # restructures the block graph wholesale

    def run_on_function(self, function: Function,
                        analyses: Optional[AnalysisManager] = None) -> bool:
        analyses = analyses if analyses is not None else AnalysisManager()
        changed = False
        while True:
            local = (self._remove_unreachable(function, analyses)
                     or self._merge_straight_line(function, analyses)
                     or self._skip_forwarding_blocks(function, analyses))
            if not local:
                break
            changed = True
        return changed

    @staticmethod
    def _remove_unreachable(function: Function,
                            analyses: AnalysisManager) -> bool:
        cfg = analyses.cfg(function)
        dead = cfg.unreachable_blocks()
        for block in dead:
            function.remove_block(block)
        if dead:
            analyses.invalidate(function)
        return bool(dead)

    @staticmethod
    def _merge_straight_line(function: Function,
                             analyses: AnalysisManager) -> bool:
        cfg = analyses.cfg(function)
        for block in function.blocks:
            succs = cfg.successors.get(block, [])
            if len(succs) != 1:
                continue
            succ = succs[0]
            if succ is function.entry_block or succ is block:
                continue
            if len(cfg.predecessors.get(succ, [])) != 1:
                continue
            # merge succ into block
            term = block.terminator
            block.remove(term)
            for inst in list(succ.instructions):
                succ.remove(inst)
                block.append(inst)
            function.remove_block(succ)
            analyses.invalidate(function)
            return True
        return False

    @staticmethod
    def _skip_forwarding_blocks(function: Function,
                                analyses: AnalysisManager) -> bool:
        for block in function.blocks:
            if block is function.entry_block:
                continue
            if len(block.instructions) != 1:
                continue
            term = block.terminator
            if not isinstance(term, Branch):
                continue
            target = term.target
            if target is block:
                continue
            _retarget(function, block, target)
            function.remove_block(block)
            analyses.invalidate(function)
            return True
        return False
