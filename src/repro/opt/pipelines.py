"""Standard optimization pipelines (O0–O3, optional LTO).

The paper compiles every test suite "under O2 with the link-time optimization
(LTO)"; :func:`optimize_program` reproduces that default.  BinTuner (Figure 9)
searches over :class:`~repro.opt.pass_manager.OptOptions` instances and calls
the same entry point.
"""

from __future__ import annotations

from typing import List, Optional

from ..ir.module import Program
from .constant_fold import ConstantFolding
from .dce import DeadCodeElimination, DeadFunctionElimination
from .inline import Inliner
from .pass_manager import OptOptions, Pass, PassManager
from .simplify_cfg import SimplifyCFG


def build_pipeline(options: OptOptions, entry: str = "main") -> List[Pass]:
    passes: List[Pass] = []
    if options.level <= 0:
        return passes

    def scalar_round() -> List[Pass]:
        round_passes: List[Pass] = []
        if options.enable_constant_folding:
            round_passes.append(ConstantFolding())
        if options.enable_simplify_cfg:
            round_passes.append(SimplifyCFG())
        if options.enable_dce:
            round_passes.append(DeadCodeElimination())
        return round_passes

    passes.extend(scalar_round())
    if options.level >= 2 and options.enable_inlining:
        threshold = options.inline_threshold
        if options.level >= 3:
            threshold = max(threshold * 2, threshold + 20)
        passes.append(Inliner(threshold=threshold))
        passes.extend(scalar_round())
    for _ in range(max(0, options.iterations - 1)):
        passes.extend(scalar_round())
    if options.lto and options.enable_dead_function_elim:
        passes.append(DeadFunctionElimination(entry_names={entry}))
    return passes


def optimize_program(program: Program, options: Optional[OptOptions] = None,
                     verify_each: bool = False) -> Program:
    """Link (when LTO is requested), optimize and return a new program.

    The input program is never mutated: it is linked/cloned first, mirroring
    the way a compiler consumes source and produces a separate artifact.
    """
    options = options or OptOptions()
    working = program.link() if options.lto else program.clone()
    manager = PassManager(build_pipeline(options, entry=working.entry),
                          verify_each=verify_each)
    manager.run(working)
    working.metadata["opt_options"] = options
    return working
