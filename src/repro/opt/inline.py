"""Function inlining.

Direct calls to small, non-recursive functions are expanded at the call site.
Inlining interacts with the Khaos primitives in two ways the paper calls out:

* after fission, the slimmed-down remFunc may become small enough to be
  inlined into its callers, which is why some programs show *negative*
  overhead (e.g. 456.hmmer in Figure 6);
* inlining is the classic inter-procedural transformation that binary diffing
  papers acknowledge hurts their accuracy, which motivates Khaos.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..ir.basicblock import BasicBlock
from ..ir.function import Function
from ..ir.instructions import Alloca, Branch, Call, Load, Ret, Store
from ..ir.module import Module, clone_function_body
from ..ir.values import Value
from .pass_manager import ModulePass


def function_size(function: Function) -> int:
    return sum(len(b.instructions) for b in function.blocks)


def _is_recursive(function: Function) -> bool:
    for inst in function.instructions():
        if isinstance(inst, Call) and inst.callee is function:
            return True
    return False


def can_inline(callee: Function, threshold: int) -> bool:
    if callee.is_declaration:
        return False
    if callee.is_variadic:
        return False
    if _is_recursive(callee):
        return False
    if callee.attributes.get("noinline"):
        return False
    return function_size(callee) <= threshold


def inline_call(caller: Function, call: Call) -> bool:
    """Expand one direct call site in place.  Returns True on success."""
    callee = call.callee
    if not isinstance(callee, Function) or callee.is_declaration:
        return False
    block = call.parent
    if block is None or block.parent is not caller:
        return False

    call_index = block.instructions.index(call)
    trailing = block.instructions[call_index + 1:]

    # 1. continuation block receives everything after the call
    continuation = caller.add_block(f"{block.name}.cont")
    for inst in trailing:
        block.remove(inst)
        continuation.append(inst)
    block.remove(call)

    # 2. clone the callee body into the caller
    value_map: Dict[int, Value] = {}
    for formal, actual in zip(callee.args, call.args):
        value_map[id(formal)] = actual
    temp = Function(f"{callee.name}.inlined", callee.ftype)
    clone_function_body(callee, temp, value_map)

    # result slot: a ret value in the callee becomes a store to this alloca
    result_slot: Optional[Alloca] = None
    if not callee.return_type.is_void:
        result_slot = Alloca(callee.return_type, name=f"{callee.name}.retval")
        caller.entry_block.insert(0, result_slot)

    cloned_blocks: List[BasicBlock] = []
    for cloned in temp.blocks:
        cloned.name = caller.unique_name(f"{callee.name}.{cloned.name}")
        cloned.parent = caller
        caller.blocks.append(cloned)
        cloned_blocks.append(cloned)

    for cloned in cloned_blocks:
        term = cloned.terminator
        if isinstance(term, Ret):
            cloned.remove(term)
            if result_slot is not None and term.value is not None:
                cloned.append(Store(term.value, result_slot))
            cloned.append(Branch(continuation))

    # 3. wire the original block to the inlined entry and patch the result
    block.append(Branch(cloned_blocks[0]))
    if result_slot is not None:
        load = Load(result_slot, name=f"{callee.name}.retload")
        continuation.insert(0, load)
        for inst in caller.instructions():
            inst.replace_operand(call, load)
    return True


class Inliner(ModulePass):
    name = "inline"

    def __init__(self, threshold: int = 30, max_rounds: int = 2):
        self.threshold = threshold
        self.max_rounds = max_rounds

    def run_on_module(self, module: Module, analyses=None) -> bool:
        changed = False
        for _ in range(self.max_rounds):
            round_changed = False
            for caller in list(module.functions.values()):
                if caller.is_declaration:
                    continue
                call_sites = [inst for inst in caller.instructions()
                              if isinstance(inst, Call)
                              and isinstance(inst.callee, Function)
                              and inst.callee is not caller
                              and can_inline(inst.callee, self.threshold)]
                for call in call_sites:
                    if call.parent is None:
                        continue
                    if inline_call(caller, call):
                        round_changed = True
            if not round_changed:
                break
            changed = True
        return changed
