"""Constant folding and propagation.

Folds arithmetic, comparisons, selects and casts whose operands are literal
constants, and simplifies conditional branches with constant conditions into
unconditional branches (the follow-up CFG simplification removes the dead
arm).  This is one of the intra-procedural optimizations whose behaviour
changes once Khaos restructures code across functions.
"""

from __future__ import annotations

from typing import Dict, Optional

from ..ir.function import Function
from ..ir.instructions import (BinaryOp, Branch, Cast, Compare, CondBranch,
                               Select, Switch)
from ..ir.types import FloatType, IntType
from ..ir.values import Constant, Value
from .pass_manager import FunctionPass


def _truncated_div(lhs: int, rhs: int) -> int:
    """C-style (truncate-toward-zero) integer division; division by zero is 0."""
    if rhs == 0:
        return 0
    quotient = abs(lhs) // abs(rhs)
    return quotient if (lhs >= 0) == (rhs >= 0) else -quotient


def _fold_binop(inst: BinaryOp) -> Optional[Constant]:
    lhs, rhs = inst.lhs, inst.rhs
    if not (isinstance(lhs, Constant) and isinstance(rhs, Constant)):
        return None
    a, b = lhs.value, rhs.value
    op = inst.op
    try:
        if op == "add":
            result = a + b
        elif op == "sub":
            result = a - b
        elif op == "mul":
            result = a * b
        elif op == "sdiv":
            result = _truncated_div(int(a), int(b))
        elif op == "srem":
            result = int(a) - _truncated_div(int(a), int(b)) * int(b) if b != 0 else 0
        elif op == "and":
            result = int(a) & int(b)
        elif op == "or":
            result = int(a) | int(b)
        elif op == "xor":
            result = int(a) ^ int(b)
        elif op == "shl":
            result = int(a) << (int(b) & 63)
        elif op == "ashr":
            result = int(a) >> (int(b) & 63)
        elif op == "fadd":
            result = float(a) + float(b)
        elif op == "fsub":
            result = float(a) - float(b)
        elif op == "fmul":
            result = float(a) * float(b)
        elif op == "fdiv":
            result = float(a) / float(b) if b != 0.0 else 0.0
        else:
            return None
    except (TypeError, ValueError):
        return None
    return Constant(inst.type, result)


def _fold_compare(inst: Compare) -> Optional[Constant]:
    lhs, rhs = inst.lhs, inst.rhs
    if not (isinstance(lhs, Constant) and isinstance(rhs, Constant)):
        return None
    a, b = lhs.value, rhs.value
    table = {
        "eq": a == b, "ne": a != b, "slt": a < b, "sle": a <= b,
        "sgt": a > b, "sge": a >= b,
        "oeq": a == b, "one": a != b, "olt": a < b, "ole": a <= b,
        "ogt": a > b, "oge": a >= b,
    }
    if inst.predicate not in table:
        return None
    return Constant(IntType(1), 1 if table[inst.predicate] else 0)


def _fold_cast(inst: Cast) -> Optional[Constant]:
    value = inst.value
    if not isinstance(value, Constant):
        return None
    kind = inst.kind
    if kind in ("trunc", "zext", "sext") and isinstance(inst.type, IntType):
        return Constant(inst.type, int(value.value))
    if kind == "sitofp" and isinstance(inst.type, FloatType):
        return Constant(inst.type, float(value.value))
    if kind == "fptosi" and isinstance(inst.type, IntType):
        return Constant(inst.type, int(value.value))
    if kind in ("fpext", "fptrunc") and isinstance(inst.type, FloatType):
        return Constant(inst.type, float(value.value))
    return None


def _fold_select(inst: Select) -> Optional[Value]:
    cond = inst.condition
    if isinstance(cond, Constant):
        return inst.true_value if cond.value else inst.false_value
    return None


class ConstantFolding(FunctionPass):
    name = "constant-folding"
    preserves = ()  # may rewrite terminators (constant condbr/switch -> br)

    def run_on_function(self, function: Function, analyses=None) -> bool:
        changed = False
        # iterate to a fixed point so chains like (6 * 7) + 0 fold completely
        while self._fold_once(function):
            changed = True
        return changed

    def _fold_once(self, function: Function) -> bool:
        changed = False
        replacements: Dict[int, Value] = {}

        for block in function.blocks:
            for inst in list(block.instructions):
                folded: Optional[Value] = None
                if isinstance(inst, BinaryOp):
                    folded = _fold_binop(inst)
                elif isinstance(inst, Compare):
                    folded = _fold_compare(inst)
                elif isinstance(inst, Cast):
                    folded = _fold_cast(inst)
                elif isinstance(inst, Select):
                    folded = _fold_select(inst)
                if folded is not None:
                    replacements[id(inst)] = folded
                    block.remove(inst)
                    changed = True

        if replacements:
            for inst in function.instructions():
                for i, op in enumerate(inst.operands):
                    if id(op) in replacements:
                        inst.operands[i] = replacements[id(op)]

        # constant conditional branches / switches become unconditional
        for block in function.blocks:
            term = block.terminator
            if isinstance(term, CondBranch) and isinstance(term.condition, Constant):
                target = (term.true_target if term.condition.value
                          else term.false_target)
                block.remove(term)
                block.append(Branch(target))
                changed = True
            elif isinstance(term, Switch) and isinstance(term.value, Constant):
                target = term.default_target
                for constant, case_target in term.cases:
                    if int(constant.value) == int(term.value.value):
                        target = case_target
                        break
                block.remove(term)
                block.append(Branch(target))
                changed = True
        return changed
