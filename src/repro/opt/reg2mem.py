"""Register-to-memory demotion for CFG-restructuring transforms.

Fusion's deep block merging and control-flow flattening both rewire the
CFG so that a value defined on one path becomes *statically* reachable
from another (a fused ``b``-side path can fall into an ``a``-side block
without passing its definitions; a flattened loop re-enters its body
through the dispatcher).  The transforms keep the *dynamic* def-before-use
guarantee — the opaque ``ctrl``/state guards make the bad paths dead — but
the IR no longer satisfies the LLVM-style dominance rule the ``full``
verify tier enforces.

:func:`demote_undominated` is the targeted cousin of LLVM's ``reg2mem``:
it finds exactly the defs whose uses they no longer dominate and spills
them through entry-block allocas (store straight after the def, reload
immediately before each out-of-block use).  Entry allocas dominate every
block and the reloads sit in the using block itself, so a single pass
restores validity without touching values the transform left intact.
"""

from __future__ import annotations

from typing import Dict, List

from ..analysis.manager import AnalysisManager
from ..ir.function import Function
from ..ir.instructions import Alloca, Instruction, Load, Store


def _undominated_defs(function: Function) -> List[Instruction]:
    """Defs with at least one reachable use their block does not dominate."""
    analyses = AnalysisManager()
    domtree = analyses.domtree(function)
    reachable = set(domtree.blocks())
    position: Dict[Instruction, int] = {}
    for block in function.blocks:
        for index, inst in enumerate(block.instructions):
            position[inst] = index

    broken: List[Instruction] = []
    seen = set()
    for block in function.blocks:
        if block not in reachable:
            continue
        for inst in block.instructions:
            for op in inst.operands:
                if not isinstance(op, Instruction) or op in seen:
                    continue
                def_block = op.parent
                if (def_block is None or def_block.parent is not function
                        or def_block not in reachable):
                    continue  # structural verification's problem, not ours
                if def_block is block or domtree.dominates(def_block, block):
                    continue
                seen.add(op)
                broken.append(op)
    return broken


def demote_undominated(function: Function) -> int:
    """Spill every undominated def to an entry alloca; return the count.

    Uses in the defining block keep the SSA value (in-block order is
    untouched); every other use is rewritten to a fresh ``Load`` inserted
    directly before the user, so the reload trivially dominates it.
    """
    broken = _undominated_defs(function)
    if not broken:
        return 0
    entry = function.entry_block
    for value in broken:
        def_block = value.parent
        slot = Alloca(value.type, name=f"{value.name or 'demoted'}.slot")
        entry.insert(0, slot)
        def_block.insert(def_block.instructions.index(value) + 1,
                         Store(value, slot))
        for block in function.blocks:
            if block is def_block:
                continue
            for user in list(block.instructions):
                if value not in user.operands:
                    continue
                reload = Load(slot, name=f"{value.name or 'demoted'}.reload")
                block.insert(block.instructions.index(user), reload)
                user.replace_operand(value, reload)
    return len(broken)
