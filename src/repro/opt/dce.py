"""Dead code elimination.

Removes instructions whose results are unused and which have no side effects,
stores to allocas that are never loaded, and (as a module-level pass) internal
functions that are never referenced.  Dead-function elimination is what erases
the original functions after the fusion pass has redirected every call site to
the fused function.
"""

from __future__ import annotations

from typing import Optional, Set

from ..analysis.manager import AnalysisManager
from ..ir.function import Function, Linkage
from ..ir.instructions import Alloca, Call, Instruction, Store
from ..ir.module import Module
from .pass_manager import FunctionPass, ModulePass


def _has_side_effects(inst: Instruction) -> bool:
    if inst.is_terminator:
        return True
    if isinstance(inst, (Store, Call)):
        return True
    return False


class DeadCodeElimination(FunctionPass):
    name = "dce"
    # DCE only deletes non-terminator instructions, so the block graph and
    # everything derived from it stay valid; def-use chains do not.
    preserves = ("cfg", "domtree", "loops", "block_frequency")

    def run_on_function(self, function: Function,
                        analyses: Optional[AnalysisManager] = None) -> bool:
        """Worklist DCE over a single def-use build.

        The fixed point of "remove side-effect-free instructions with no
        uses, plus allocas that are only ever stored to" is unique, so
        instead of rebuilding :class:`~repro.analysis.defuse.DefUse` every
        sweep the pass threads a live user map through the removals: deleting
        an instruction releases its operands, which may enqueue them in turn.
        """
        analyses = analyses if analyses is not None else AnalysisManager()
        defuse = analyses.defuse(function)
        # live users per value id, updated as code dies
        users = {key: list(lst) for key, lst in defuse.users.items()}
        worklist = []

        def is_dead(inst: Instruction) -> bool:
            return not _has_side_effects(inst) and not users.get(id(inst))

        def release(inst: Instruction) -> None:
            """Unregister ``inst`` as a user of its operands; enqueue newly
            dead definitions."""
            for op in inst.operands:
                op_users = users.get(id(op))
                if not op_users:
                    continue
                try:
                    op_users.remove(inst)
                except ValueError:
                    continue
                if not op_users and isinstance(op, Instruction) \
                        and not _has_side_effects(op):
                    worklist.append(op)

        worklist.extend(inst for inst in function.instructions()
                        if is_dead(inst))
        removed = 0
        while True:
            while worklist:
                inst = worklist.pop()
                if inst.parent is None or not is_dead(inst):
                    continue
                inst.parent.remove(inst)
                removed += 1
                release(inst)
            # allocas only ever stored to (never loaded or escaped) die with
            # their stores; the released store operands may re-arm the loop
            progressed = False
            for block in function.blocks:
                for inst in list(block.instructions):
                    if not isinstance(inst, Alloca) or inst.parent is None:
                        continue
                    uses = users.get(id(inst))
                    if uses and all(isinstance(u, Store) and u.pointer is inst
                                    for u in uses):
                        for use in list(uses):
                            if use.parent is not None:
                                use.parent.remove(use)
                                removed += 1
                            release(use)
                        users[id(inst)] = []
                        block.remove(inst)
                        removed += 1
                        progressed = True
            if not worklist and not progressed:
                break
        if removed:
            analyses.invalidate(function, preserve=self.preserves)
        return bool(removed)


class DeadFunctionElimination(ModulePass):
    name = "dead-function-elim"

    def __init__(self, entry_names: Set[str] = frozenset({"main"})):
        self.entry_names = set(entry_names)

    def run_on_module(self, module: Module,
                      analyses: Optional[AnalysisManager] = None) -> bool:
        analyses = analyses if analyses is not None else AnalysisManager()
        changed = False
        while True:
            graph = analyses.callgraph(module)
            removable = []
            for function in module.functions.values():
                if function.is_declaration:
                    continue
                if function.name in self.entry_names:
                    continue
                if function.linkage != Linkage.INTERNAL:
                    continue
                if graph.in_degree(function.name) > 0:
                    continue
                if graph.is_address_taken(function.name):
                    continue
                removable.append(function.name)
            if not removable:
                break
            for name in removable:
                module.remove_function(name)
            analyses.invalidate_module(module)
            changed = True
        return changed
