"""Dead code elimination.

Removes instructions whose results are unused and which have no side effects,
stores to allocas that are never loaded, and (as a module-level pass) internal
functions that are never referenced.  Dead-function elimination is what erases
the original functions after the fusion pass has redirected every call site to
the fused function.
"""

from __future__ import annotations

from typing import Set

from ..analysis.callgraph import CallGraph
from ..analysis.defuse import DefUse
from ..ir.function import Function, Linkage
from ..ir.instructions import Alloca, Call, Instruction, Load, Store
from ..ir.module import Module
from .pass_manager import FunctionPass, ModulePass


def _has_side_effects(inst: Instruction) -> bool:
    if inst.is_terminator:
        return True
    if isinstance(inst, (Store, Call)):
        return True
    return False


class DeadCodeElimination(FunctionPass):
    name = "dce"

    def run_on_function(self, function: Function) -> bool:
        changed = False
        while True:
            defuse = DefUse(function)
            removed_this_round = 0
            for block in function.blocks:
                for inst in list(block.instructions):
                    if _has_side_effects(inst):
                        continue
                    if not defuse.is_used(inst):
                        block.remove(inst)
                        removed_this_round += 1
            # remove allocas that are only ever stored to (never loaded or escaped)
            removed_this_round += self._remove_write_only_allocas(function)
            if removed_this_round == 0:
                break
            changed = True
        return changed

    @staticmethod
    def _remove_write_only_allocas(function: Function) -> int:
        defuse = DefUse(function)
        removed = 0
        for block in function.blocks:
            for inst in list(block.instructions):
                if not isinstance(inst, Alloca):
                    continue
                uses = defuse.uses_of(inst)
                if uses and all(isinstance(u, Store) and u.pointer is inst
                                for u in uses):
                    for use in uses:
                        use.parent.remove(use)
                        removed += 1
                    block.remove(inst)
                    removed += 1
        return removed


class DeadFunctionElimination(ModulePass):
    name = "dead-function-elim"

    def __init__(self, entry_names: Set[str] = frozenset({"main"})):
        self.entry_names = set(entry_names)

    def run_on_module(self, module: Module) -> bool:
        changed = False
        while True:
            graph = CallGraph(module)
            removable = []
            for function in module.functions.values():
                if function.is_declaration:
                    continue
                if function.name in self.entry_names:
                    continue
                if function.linkage != Linkage.INTERNAL:
                    continue
                if graph.in_degree(function.name) > 0:
                    continue
                if graph.is_address_taken(function.name):
                    continue
                removable.append(function.name)
            if not removable:
                break
            for name in removable:
                module.remove_function(name)
            changed = True
        return changed
