"""Classic compiler optimizations and pipelines (O0–O3, LTO)."""

from .pass_manager import FunctionPass, ModulePass, OptOptions, Pass, PassManager
from .constant_fold import ConstantFolding
from .dce import DeadCodeElimination, DeadFunctionElimination
from .simplify_cfg import SimplifyCFG
from .inline import Inliner, can_inline, function_size, inline_call
from .pipelines import build_pipeline, optimize_program

__all__ = [
    "FunctionPass", "ModulePass", "OptOptions", "Pass", "PassManager",
    "ConstantFolding", "DeadCodeElimination", "DeadFunctionElimination",
    "SimplifyCFG", "Inliner", "can_inline", "function_size", "inline_call",
    "build_pipeline", "optimize_program",
]
