"""The fusion primitive: aggregate pairs of functions into one.

For each selected pair (A, B) the pass builds a *fusFunc* whose first
parameter is the ``ctrl`` selector and whose remaining parameters are the
compressed merger of A's and B's parameter lists (section 3.3.2).  Every
direct call site of A or B is redirected to the fusFunc with the appropriate
``ctrl`` constant and padding for the other side's parameters.  Functions
whose address is taken are handled with the tagged-pointer mechanism
(section 3.3.3): address-taking sites attach a two-bit tag to the fused
function's pointer and every indirect call site is rewritten to check the tag
and supply ``ctrl`` dynamically.  Exported functions keep a forwarding
*trampoline* under their original name, the single-binary analogue of the
paper's cross-module trampoline.  Finally, *deep fusion* (section 3.3.4)
merges innocuous basic blocks from the two sides so the fusFunc cannot be
trivially split back apart.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..analysis.callgraph import CallGraph
from ..analysis.manager import AnalysisManager
from ..analysis.memory_effects import is_innocuous_block
from ..ir.basicblock import BasicBlock
from ..ir.function import Function, Linkage
from ..ir.instructions import (Alloca, Branch, Call, Cast, Compare, CondBranch,
                               Instruction, Load, Ret, Store, Switch)
from ..ir.module import Module, clone_function_body
from ..ir.types import (FunctionType, PointerType, Type, compatible_type,
                        compress_parameter_lists, I64)
from ..ir.values import Argument, Constant, GlobalVariable, NullPointer, UndefValue, Value
from ..opt.reg2mem import demote_undominated
from .config import FusionConfig
from .provenance import ProvenanceMap
from .stats import FusionStats

# Tag bit layout (appendix A.1): bit0 = "points to a fusFunc", bit1 = ctrl.
TAG_FUSED_A = 0b11   # ctrl == 1, run the A side
TAG_FUSED_B = 0b01   # ctrl == 0, run the B side


class FusionPair:
    """Book-keeping for one (A, B) aggregation."""

    def __init__(self, side_a: Function, side_b: Function,
                 merged_params: Tuple[Type, ...],
                 a_index: Sequence[int], b_index: Sequence[int],
                 return_type: Type):
        self.side_a = side_a
        self.side_b = side_b
        self.merged_params = merged_params
        self.a_index = tuple(a_index)
        self.b_index = tuple(b_index)
        self.return_type = return_type
        self.fused: Optional[Function] = None


class Fusion:
    """Applies the fusion primitive to eligible functions of a module."""

    def __init__(self, config: Optional[FusionConfig] = None,
                 provenance: Optional[ProvenanceMap] = None,
                 stats: Optional[FusionStats] = None, seed: int = 0x5EED,
                 analyses: Optional[AnalysisManager] = None):
        self.config = config or FusionConfig()
        self.provenance = provenance if provenance is not None else ProvenanceMap()
        self.stats = stats if stats is not None else FusionStats()
        self.seed = seed
        self.analyses = analyses if analyses is not None else AnalysisManager()
        self._counter = 0

    # -- module driver ------------------------------------------------------------

    def run_on_module(self, module: Module, entry: str = "main",
                      candidate_filter=None) -> List[Function]:
        # One call-graph snapshot drives pairing, tagged-pointer rewriting and
        # trampoline creation (matching the original single-construction
        # semantics); every mutation below invalidates it at the end.
        callgraph = self.analyses.callgraph(module)
        candidates = self._collect_candidates(module, entry, candidate_filter)
        self.stats.candidate_functions += len(candidates)

        pairs = self._select_pairs(candidates, callgraph)
        created: List[Function] = []
        for pair in pairs:
            fused = self._fuse_pair(module, pair, callgraph)
            if fused is None:
                continue
            created.append(fused)
            self.stats.fusfuncs_created += 1
            self.stats.fused_functions += 2
            self.stats.reduced_parameters.append(
                len(pair.side_a.args) + len(pair.side_b.args)
                - len(pair.merged_params))

        if any(callgraph.is_address_taken(p.side_a.name)
               or callgraph.is_address_taken(p.side_b.name)
               for p in pairs if p.fused is not None):
            self._rewrite_indirect_call_sites(module)

        # drop the now-unreferenced originals (exported ones were already
        # replaced by a trampoline carrying the same name)
        for pair in pairs:
            if pair.fused is None:
                continue
            for original in (pair.side_a, pair.side_b):
                if module.get_function(original.name) is original:
                    module.remove_function(original.name)
                    self.provenance.record_removed(original.name)
        if created:
            self.analyses.invalidate_module(module)
        return created

    # -- candidate selection ------------------------------------------------------

    def _collect_candidates(self, module: Module, entry: str,
                            candidate_filter) -> List[Function]:
        candidates = []
        for function in module.defined_functions():
            if function.name == entry:
                continue
            if function.is_variadic:
                continue
            if function.attributes.get("no_obfuscate"):
                continue
            if function.attributes.get("khaos_kind") == "trampoline":
                continue
            if not self.config.fuse_exported and function.linkage == Linkage.EXPORTED:
                continue
            if candidate_filter is not None and not candidate_filter(function):
                continue
            candidates.append(function)
        return candidates

    def _select_pairs(self, candidates: List[Function],
                      callgraph: CallGraph) -> List[FusionPair]:
        rng = random.Random(self.seed)
        pool = list(candidates)
        rng.shuffle(pool)
        paired: Set[int] = set()
        pairs: List[FusionPair] = []

        for i, side_a in enumerate(pool):
            if id(side_a) in paired:
                continue
            best: Optional[Tuple[int, FusionPair]] = None
            for j in range(i + 1, len(pool)):
                side_b = pool[j]
                if id(side_b) in paired:
                    continue
                pair = self._try_pair(side_a, side_b, callgraph)
                if pair is None:
                    continue
                fits_registers = len(pair.merged_params) + 1 <= self.config.max_parameters
                if fits_registers:
                    best = (j, pair)
                    break
                if best is None and self.config.allow_stack_parameters:
                    best = (j, pair)
            if best is not None:
                j, pair = best
                paired.add(id(side_a))
                paired.add(id(pool[j]))
                pairs.append(pair)
        return pairs

    def _try_pair(self, side_a: Function, side_b: Function,
                  callgraph: CallGraph) -> Optional[FusionPair]:
        return_type = compatible_type(side_a.return_type, side_b.return_type)
        if return_type is None:
            return None
        if callgraph.directly_related(side_a.name, side_b.name):
            return None

        a_types = side_a.ftype.param_types
        b_types = side_b.ftype.param_types
        address_taken = (callgraph.is_address_taken(side_a.name)
                         or callgraph.is_address_taken(side_b.name))
        if address_taken:
            # both sides must look identical to indirect callers, so their
            # parameter layouts must coincide exactly
            if a_types != b_types:
                return None
            merged = tuple(a_types)
            a_index = tuple(range(len(a_types)))
            b_index = tuple(range(len(b_types)))
        elif self.config.enable_parameter_compression:
            merged, a_index, b_index = compress_parameter_lists(a_types, b_types)
        else:
            merged = tuple(a_types) + tuple(b_types)
            a_index = tuple(range(len(a_types)))
            b_index = tuple(range(len(a_types), len(a_types) + len(b_types)))

        if len(merged) + 1 > self.config.max_merged_parameters:
            return None
        return FusionPair(side_a, side_b, merged, a_index, b_index, return_type)

    # -- fusing one pair ----------------------------------------------------------

    def _fuse_pair(self, module: Module, pair: FusionPair,
                   callgraph: CallGraph) -> Optional[Function]:
        self._counter += 1
        fused_name = f"khaos.fuse.{self._counter}"
        while module.get_function(fused_name) is not None:
            self._counter += 1
            fused_name = f"khaos.fuse.{self._counter}"

        param_types = [I64] + list(pair.merged_params)
        param_names = ["ctrl"] + [f"p{i}" for i in range(len(pair.merged_params))]
        fused = Function(fused_name, FunctionType(pair.return_type, param_types),
                         param_names=param_names, linkage=Linkage.INTERNAL)
        fused.attributes["khaos_kind"] = "fusfunc"
        fused.attributes["khaos_sides"] = (pair.side_a.name, pair.side_b.name)
        module.add_function(fused)
        pair.fused = fused

        entry = fused.add_block("entry")
        ctrl = fused.args[0]
        is_a = Compare("eq", ctrl, Constant(I64, 1), name="is_a")
        entry.append(is_a)

        a_entry = self._clone_side(fused, pair, pair.side_a, pair.a_index, "a")
        b_entry = self._clone_side(fused, pair, pair.side_b, pair.b_index, "b")
        entry.append(CondBranch(is_a, a_entry, b_entry))
        self._hoist_allocas(fused)

        if self.config.enable_deep_fusion:
            merged_blocks = self._deep_fuse(fused, is_a, "a.", "b.")
            self.stats.deep_fused_blocks += merged_blocks
            if merged_blocks:
                # merging a-side and b-side blocks makes each side's values
                # statically reachable from the other path; spill the defs
                # the merge un-dominated so the fused body stays verifiable
                demote_undominated(fused)
        self.stats.innocuous_block_counts.append(
            sum(1 for b in fused.blocks if is_innocuous_block(fused, b)))

        self.provenance.record_derived(fused.name,
                                       [pair.side_a.name, pair.side_b.name])

        self._rewrite_direct_calls(module, pair)
        self._rewrite_address_taken(module, pair, callgraph)
        self._create_trampolines(module, pair)
        return fused

    # -- body cloning -------------------------------------------------------------

    def _clone_side(self, fused: Function, pair: FusionPair, source: Function,
                    index_map: Sequence[int], prefix: str) -> BasicBlock:
        """Clone ``source``'s body into ``fused``; return its (adapter) entry."""
        adapter = fused.add_block(f"{prefix}.adapter")
        value_map: Dict[int, Value] = {}
        for i, formal in enumerate(source.args):
            fused_param = fused.args[1 + index_map[i]]
            incoming: Value = fused_param
            if fused_param.type != formal.type:
                cast = Cast(self._narrow_cast_kind(fused_param.type, formal.type),
                            fused_param, formal.type,
                            name=f"{prefix}.narrow{i}")
                adapter.append(cast)
                incoming = cast
            value_map[id(formal)] = incoming

        temp = Function(f"{source.name}.tmp", source.ftype)
        clone_function_body(source, temp, value_map)
        cloned_blocks = list(temp.blocks)
        for block in cloned_blocks:
            block.name = fused.unique_name(f"{prefix}.{block.name}")
            block.parent = fused
            fused.blocks.append(block)

        self._rewrite_returns(fused, cloned_blocks, source.return_type,
                              pair.return_type)
        adapter.append(Branch(cloned_blocks[0]))
        return adapter

    def _rewrite_returns(self, fused: Function, blocks: Sequence[BasicBlock],
                         original: Type, merged: Type) -> None:
        for block in blocks:
            term = block.terminator
            if not isinstance(term, Ret):
                continue
            if merged.is_void:
                continue
            if term.value is None:
                block.remove(term)
                block.append(Ret(self._zero_of(merged)))
                continue
            if original == merged:
                continue
            block.remove(term)
            cast = Cast(self._widen_cast_kind(original, merged), term.value,
                        merged, name="retwiden")
            block.append(cast)
            block.append(Ret(cast))

    @staticmethod
    def _hoist_allocas(fused: Function) -> None:
        entry = fused.entry_block
        for block in fused.blocks[1:]:
            for inst in list(block.instructions):
                if isinstance(inst, Alloca):
                    block.remove(inst)
                    entry.insert(0, inst)

    # -- deep fusion ----------------------------------------------------------------

    def _deep_fuse(self, fused: Function, is_a: Compare, prefix_a: str,
                   prefix_b: str) -> int:
        candidates_a = self._deep_fusion_candidates(fused, prefix_a)
        candidates_b = self._deep_fusion_candidates(fused, prefix_b)
        merged = 0
        for block_a, block_b in zip(candidates_a, candidates_b):
            if merged >= self.config.max_deep_fusion_blocks:
                break
            self._merge_innocuous_blocks(fused, is_a, block_a, block_b)
            merged += 1
        return merged

    def _deep_fusion_candidates(self, fused: Function,
                                prefix: str) -> List[BasicBlock]:
        entry = fused.entry_block
        result = []
        for block in fused.blocks:
            if block is entry or not block.name.startswith(prefix):
                continue
            if block.name.endswith(".adapter"):
                continue
            if not block.non_terminator_instructions():
                continue
            if not is_innocuous_block(fused, block):
                continue
            if not self._is_self_contained(fused, block):
                continue
            # The innocuous criterion permits stores to the function's own
            # allocas, but a merged block is re-executed on the *other* side's
            # control flow (possibly inside its loops), where the store index
            # is not bounded by this side's loop guard.  Only pure compute
            # blocks are merged, which keeps re-execution trivially safe.
            if any(isinstance(inst, (Store, Call))
                   for inst in block.non_terminator_instructions()):
                continue
            result.append(block)
        return result

    @staticmethod
    def _is_self_contained(fused: Function, block: BasicBlock) -> bool:
        """Operands must be available no matter which side reaches the block."""
        entry_allocas = {id(i) for i in fused.entry_block.instructions
                         if isinstance(i, Alloca)}
        local = {id(i) for i in block.instructions}
        for inst in block.non_terminator_instructions():
            for op in inst.operands:
                if isinstance(op, (Constant, GlobalVariable, UndefValue,
                                   Function)):
                    continue
                if isinstance(op, Argument) and op.function is fused:
                    # integer/float parameters are always populated (padded
                    # with zeros for the other side); pointer parameters are
                    # padded with null, so dereferencing them from the other
                    # side's path would fault — reject those blocks
                    if op.type.is_pointer:
                        return False
                    continue
                if id(op) in entry_allocas or id(op) in local:
                    continue
                return False
        return True

    def _merge_innocuous_blocks(self, fused: Function, is_a: Compare,
                                block_a: BasicBlock, block_b: BasicBlock) -> None:
        merged = fused.add_block(f"deep.{block_a.name}.{block_b.name}")
        exit_a = fused.add_block(f"{merged.name}.a")
        exit_b = fused.add_block(f"{merged.name}.b")

        term_a = block_a.terminator
        term_b = block_b.terminator
        block_a.remove(term_a)
        block_b.remove(term_b)
        exit_a.append(term_a)
        exit_b.append(term_b)

        for inst in list(block_a.instructions):
            block_a.remove(inst)
            merged.append(inst)
        for inst in list(block_b.instructions):
            block_b.remove(inst)
            merged.append(inst)
        merged.append(CondBranch(is_a, exit_a, exit_b))

        self._retarget_block(fused, block_a, merged)
        self._retarget_block(fused, block_b, merged)
        fused.remove_block(block_a)
        fused.remove_block(block_b)

    @staticmethod
    def _retarget_block(function: Function, old: BasicBlock,
                        new: BasicBlock) -> None:
        for block in function.blocks:
            term = block.terminator
            if term is None:
                continue
            if isinstance(term, Branch) and term.target is old:
                term.target = new
            elif isinstance(term, CondBranch):
                if term.true_target is old:
                    term.true_target = new
                if term.false_target is old:
                    term.false_target = new
            elif isinstance(term, Switch):
                if term.default_target is old:
                    term.default_target = new
                term.cases = [(c, new if t is old else t) for c, t in term.cases]

    # -- call-site rewriting --------------------------------------------------------

    def _rewrite_direct_calls(self, module: Module, pair: FusionPair) -> None:
        for function in module.defined_functions():
            for block in function.blocks:
                for call in [i for i in block.instructions if isinstance(i, Call)]:
                    callee = call.callee
                    if callee is pair.side_a:
                        self._replace_call(function, block, call, pair,
                                           ctrl=1, index_map=pair.a_index,
                                           original=pair.side_a)
                    elif callee is pair.side_b:
                        self._replace_call(function, block, call, pair,
                                           ctrl=0, index_map=pair.b_index,
                                           original=pair.side_b)

    def _replace_call(self, function: Function, block: BasicBlock, call: Call,
                      pair: FusionPair, ctrl: int, index_map: Sequence[int],
                      original: Function) -> None:
        position = block.instructions.index(call)
        new_args: List[Value] = [self._zero_of(t) for t in pair.merged_params]
        inserted: List[Instruction] = []

        for arg_value, merged_pos in zip(call.args, index_map):
            target_type = pair.merged_params[merged_pos]
            if arg_value.type != target_type and not isinstance(arg_value, Constant):
                cast = Cast(self._widen_cast_kind(arg_value.type, target_type),
                            arg_value, target_type, name="argwiden")
                inserted.append(cast)
                new_args[merged_pos] = cast
            elif isinstance(arg_value, Constant) and arg_value.type != target_type:
                new_args[merged_pos] = Constant(target_type, arg_value.value) \
                    if not target_type.is_pointer else arg_value
            else:
                new_args[merged_pos] = arg_value

        new_call = Call(pair.fused, [Constant(I64, ctrl)] + new_args,
                        name=call.name or "fusedcall")
        inserted.append(new_call)

        result: Value = new_call
        if (not original.return_type.is_void
                and original.return_type != pair.return_type):
            narrow = Cast(self._narrow_cast_kind(pair.return_type,
                                                 original.return_type),
                          new_call, original.return_type, name="retnarrow")
            inserted.append(narrow)
            result = narrow

        for offset, inst in enumerate(inserted):
            block.insert(position + offset, inst)
        block.remove(call)
        if call.has_result:
            for inst in function.instructions():
                inst.replace_operand(call, result)

    # -- tagged pointers and trampolines ---------------------------------------------

    def _rewrite_address_taken(self, module: Module, pair: FusionPair,
                               callgraph: CallGraph) -> None:
        tag_ptr = self._declare_tag_intrinsic(module, "__khaos_tag_ptr",
                                              with_tag_argument=True)
        replacements = []
        for side, tag in ((pair.side_a, TAG_FUSED_A), (pair.side_b, TAG_FUSED_B)):
            if not callgraph.is_address_taken(side.name):
                continue
            replacements.append((side, tag))
        if not replacements:
            return

        for function in module.defined_functions():
            for block in function.blocks:
                for inst in list(block.instructions):
                    operand_slice = (inst.operands[1:] if isinstance(inst, Call)
                                     else inst.operands)
                    for side, tag in replacements:
                        if not any(op is side for op in operand_slice):
                            continue
                        if (side.linkage == Linkage.EXPORTED
                                and self.config.fuse_exported):
                            # the trampoline (created right after) keeps the
                            # original name and signature; point at it instead
                            continue
                        position = block.instructions.index(inst)
                        tagged = Call(tag_ptr, [pair.fused, Constant(I64, tag)],
                                      name="tagged")
                        block.insert(position, tagged)
                        start = 1 if isinstance(inst, Call) else 0
                        for i in range(start, len(inst.operands)):
                            if inst.operands[i] is side:
                                inst.operands[i] = tagged

    def _create_trampolines(self, module: Module, pair: FusionPair) -> None:
        for side, ctrl, index_map in ((pair.side_a, 1, pair.a_index),
                                      (pair.side_b, 0, pair.b_index)):
            if side.linkage != Linkage.EXPORTED or not self.config.fuse_exported:
                continue
            original_name = side.name
            module.remove_function(original_name)
            trampoline = Function(original_name, side.ftype,
                                  param_names=[a.name for a in side.args],
                                  linkage=Linkage.EXPORTED)
            trampoline.attributes["khaos_kind"] = "trampoline"
            module.add_function(trampoline)
            block = trampoline.add_block("entry")

            args: List[Value] = [self._zero_of(t) for t in pair.merged_params]
            for formal, merged_pos in zip(trampoline.args, index_map):
                target_type = pair.merged_params[merged_pos]
                value: Value = formal
                if formal.type != target_type:
                    cast = Cast(self._widen_cast_kind(formal.type, target_type),
                                formal, target_type, name="trampwiden")
                    block.append(cast)
                    value = cast
                args[merged_pos] = value
            call = Call(pair.fused, [Constant(I64, ctrl)] + args, name="forward")
            block.append(call)
            if trampoline.return_type.is_void:
                block.append(Ret(None))
            elif trampoline.return_type != pair.return_type:
                narrow = Cast(self._narrow_cast_kind(pair.return_type,
                                                     trampoline.return_type),
                              call, trampoline.return_type, name="trampnarrow")
                block.append(narrow)
                block.append(Ret(narrow))
            else:
                block.append(Ret(call))

            # any remaining references to the original now point at the trampoline
            for function in module.defined_functions():
                for inst in function.instructions():
                    inst.replace_operand(side, trampoline)
            self.provenance.record_derived(original_name, [original_name])

    def _rewrite_indirect_call_sites(self, module: Module) -> None:
        extract = self._declare_tag_intrinsic(module, "__khaos_extract_tag")
        clear = self._declare_clear_intrinsic(module)

        for function in module.defined_functions():
            # snapshot first: the rewrite splits blocks and appends new ones,
            # and the calls it inserts must not be rewritten again
            indirect_calls = [inst for inst in function.instructions()
                              if isinstance(inst, Call) and not inst.is_direct]
            for call in indirect_calls:
                self._rewrite_one_indirect_call(function, call, extract, clear)

    def _rewrite_one_indirect_call(self, function: Function, call: Call,
                                   extract: Function, clear: Function) -> None:
        block = call.parent
        position = block.instructions.index(call)
        trailing = block.instructions[position + 1:]

        continuation = function.add_block(f"{block.name}.icall.cont")
        for inst in trailing:
            block.remove(inst)
            continuation.append(inst)
        block.remove(call)

        result_slot: Optional[Alloca] = None
        if call.has_result:
            result_slot = Alloca(call.type, name="icall.result")
            function.entry_block.insert(0, result_slot)

        fused_path = function.add_block(f"{block.name}.icall.fused")
        normal_path = function.add_block(f"{block.name}.icall.normal")

        tag = Call(extract, [call.callee], name="icall.tag")
        block.append(tag)
        has_tag = Compare("ne", tag, Constant(I64, 0), name="icall.hastag")
        block.append(has_tag)
        block.append(CondBranch(has_tag, fused_path, normal_path))

        # fused path: ctrl comes from bit 1 of the tag, target from the cleared ptr
        shifted = Call(clear, [call.callee], name="icall.target")
        fused_path.append(shifted)
        ctrl_bit = _bit1(fused_path, tag)
        fused_call = Call(shifted, [ctrl_bit] + list(call.args),
                          name="icall.fusedcall")
        fused_path.append(fused_call)
        if result_slot is not None:
            fused_path.append(Store(fused_call, result_slot))
        fused_path.append(Branch(continuation))

        # normal path: the original call, untouched
        normal_call = call.clone_shallow()
        normal_call.name = "icall.plain"
        normal_path.append(normal_call)
        if result_slot is not None:
            normal_path.append(Store(normal_call, result_slot))
        normal_path.append(Branch(continuation))

        if result_slot is not None:
            reload = Load(result_slot, name="icall.reload")
            continuation.insert(0, reload)
            for inst in function.instructions():
                inst.replace_operand(call, reload)

    # -- intrinsic declarations -------------------------------------------------------

    @staticmethod
    def _declare_tag_intrinsic(module: Module, name: str,
                               with_tag_argument: bool = False) -> Function:
        pointer = PointerType(FunctionType(I64, [], variadic=True))
        params = [pointer, I64] if with_tag_argument else [pointer]
        return module.declare_function(name, FunctionType(
            I64 if name == "__khaos_extract_tag" else pointer, params))

    @staticmethod
    def _declare_clear_intrinsic(module: Module) -> Function:
        pointer = PointerType(FunctionType(I64, [], variadic=True))
        return module.declare_function("__khaos_clear_tag",
                                       FunctionType(pointer, [pointer]))

    # -- small helpers ------------------------------------------------------------------

    @staticmethod
    def _zero_of(type_: Type) -> Value:
        if type_.is_pointer:
            return NullPointer(type_)
        if type_.is_float:
            return Constant(type_, 0.0)
        if type_.is_integer:
            return Constant(type_, 0)
        return UndefValue(type_)

    @staticmethod
    def _widen_cast_kind(src: Type, dst: Type) -> str:
        if src.is_integer and dst.is_integer:
            return "sext"
        if src.is_float and dst.is_float:
            return "fpext"
        return "bitcast"

    @staticmethod
    def _narrow_cast_kind(src: Type, dst: Type) -> str:
        if src.is_integer and dst.is_integer:
            return "trunc"
        if src.is_float and dst.is_float:
            return "fptrunc"
        return "bitcast"


def _bit1(block: BasicBlock, tag: Value) -> Instruction:
    """Extract the ctrl bit (bit 1) of a tag value inside ``block``."""
    from ..ir.instructions import BinaryOp
    shifted = BinaryOp("ashr", tag, Constant(I64, 1), name="icall.ctrlshift")
    block.append(shifted)
    masked = BinaryOp("and", shifted, Constant(I64, 1), name="icall.ctrl")
    block.append(masked)
    return masked
