"""Region identification for the fission primitive (Algorithm 1 of the paper).

A candidate region is the dominator subtree of a non-entry block.  Regions are
ranked by cost-effectiveness: the obfuscation *effect* is the number of basic
blocks in the subtree, the *cost* is the static execution frequency of the
subtree's head (scaled again by the trip count of the innermost loop the head
sits in, so code inside loops is strongly penalised).  The algorithm picks the
best region, discards every candidate that intersects it, and repeats.

On top of Algorithm 1 the implementation enforces the structural side
conditions the paper discusses in sections 3.2.1–3.2.4:

* single entry — no edge from outside the region may target a non-head block;
* no ``setjmp`` call site inside a separated region;
* a region that contains a potentially-throwing call must also contain its
  paired handler block (C++ EH consistency);
* allocas defined inside the region must not be referenced outside it (their
  storage dies with the sepFunc frame).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Set

from ..analysis.cfg import ControlFlowGraph
from ..analysis.manager import AnalysisManager
from ..ir.basicblock import BasicBlock
from ..ir.function import Function
from ..ir.instructions import Alloca, Call
from .config import FissionConfig


@dataclass
class Region:
    """A candidate (or chosen) fission region."""

    head: BasicBlock
    blocks: List[BasicBlock]
    effect: float
    cost: float

    @property
    def value(self) -> float:
        return self.effect / self.cost if self.cost > 0 else float("inf")

    @property
    def block_set(self) -> Set[BasicBlock]:
        return set(self.blocks)

    def intersects(self, other: "Region") -> bool:
        return bool(self.block_set & other.block_set)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<Region head={self.head.name} blocks={len(self.blocks)} "
                f"value={self.value:.3f}>")


def _contains_setjmp(blocks: Sequence[BasicBlock]) -> bool:
    for block in blocks:
        for inst in block.instructions:
            if isinstance(inst, Call):
                callee_name = getattr(inst.callee, "name", "")
                if callee_name in ("setjmp", "sigsetjmp", "_setjmp"):
                    return True
    return False


def _single_entry(function: Function, cfg: ControlFlowGraph,
                  region_blocks: Set[BasicBlock], head: BasicBlock) -> bool:
    for block in function.blocks:
        if block not in region_blocks:
            continue
        if block is head:
            continue
        for pred in cfg.predecessors.get(block, []):
            if pred not in region_blocks:
                return False
    return True


def _eh_consistent(function: Function, region_blocks: Set[BasicBlock]) -> bool:
    """Keep try/catch pairs on the same side of the cut (section 3.2.4)."""
    names_inside = {b.name for b in function.blocks if b in region_blocks}
    for thrower, handler in function.eh_pairs:
        if (thrower in names_inside) != (handler in names_inside):
            return False
    return True


def _allocas_escape(function: Function, region_blocks: Set[BasicBlock]) -> bool:
    inside_allocas = set()
    for block in function.blocks:
        if block not in region_blocks:
            continue
        for inst in block.instructions:
            if isinstance(inst, Alloca):
                inside_allocas.add(id(inst))
    if not inside_allocas:
        return False
    for block in function.blocks:
        if block in region_blocks:
            continue
        for inst in block.instructions:
            for op in inst.operands:
                if id(op) in inside_allocas:
                    return True
    return False


class RegionIdentifier:
    """Implements Algorithm 1 plus the structural validity checks."""

    def __init__(self, function: Function, config: Optional[FissionConfig] = None,
                 analyses: Optional[AnalysisManager] = None):
        self.function = function
        self.config = config or FissionConfig()
        self.analyses = analyses if analyses is not None else AnalysisManager()
        self.cfg = self.analyses.cfg(function)
        self.domtree = self.analyses.domtree(function)
        self.loops = self.analyses.loops(function)
        self.frequency = self.analyses.block_frequency(function)

    # -- candidate generation -----------------------------------------------------

    def candidate_regions(self) -> List[Region]:
        candidates: List[Region] = []
        entry = self.function.entry_block
        for head in self.domtree.blocks():
            if head is entry:
                continue  # "we won't separate the whole function" (line 3)
            blocks = self.domtree.dominated_region(head)
            if len(blocks) < self.config.min_region_blocks:
                continue
            if len(blocks) >= self.function.block_count():
                continue
            region_ids = set(blocks)
            if not self._is_valid(head, blocks, region_ids):
                continue
            effect = float(len(blocks))
            cost = self.frequency.get(head)
            loop = self.loops.innermost_loop(head)
            if loop is not None:
                cost *= loop.trip_count
            candidates.append(Region(head, blocks, effect, cost))
        return candidates

    def _is_valid(self, head: BasicBlock, blocks: List[BasicBlock],
                  region_ids: Set[BasicBlock]) -> bool:
        if _contains_setjmp(blocks):
            return False
        if not _single_entry(self.function, self.cfg, region_ids, head):
            return False
        if not _eh_consistent(self.function, region_ids):
            return False
        if _allocas_escape(self.function, region_ids):
            return False
        return True

    # -- Algorithm 1 --------------------------------------------------------------

    def identify(self) -> List[Region]:
        remaining = self.candidate_regions()
        chosen: List[Region] = []
        while remaining and len(chosen) < self.config.max_regions_per_function:
            target = max(remaining, key=lambda r: r.value)
            if target.value < self.config.min_value:
                break
            chosen.append(target)
            remaining = [r for r in remaining if not r.intersects(target)]
        return chosen
