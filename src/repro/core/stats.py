"""Internal statistics of the fission and fusion primitives (Table 2)."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List


@dataclass
class FissionStats:
    """Per-program fission statistics.

    * ``ratio`` — #sepFuncs / #oriFuncs (the paper reports 116–152%);
    * ``avg_sepfunc_blocks`` — average number of basic blocks per sepFunc (#BB);
    * ``reduction_ratio`` — average fraction of blocks removed from the
      functions that were actually split (RR).
    """

    original_functions: int = 0
    processed_functions: int = 0
    sepfuncs_created: int = 0
    sepfunc_block_counts: List[int] = field(default_factory=list)
    per_function_reduction: List[float] = field(default_factory=list)

    @property
    def ratio(self) -> float:
        if self.original_functions == 0:
            return 0.0
        return self.sepfuncs_created / self.original_functions

    @property
    def avg_sepfunc_blocks(self) -> float:
        if not self.sepfunc_block_counts:
            return 0.0
        return sum(self.sepfunc_block_counts) / len(self.sepfunc_block_counts)

    @property
    def reduction_ratio(self) -> float:
        if not self.per_function_reduction:
            return 0.0
        return sum(self.per_function_reduction) / len(self.per_function_reduction)

    def as_row(self) -> Dict[str, float]:
        return {
            "fission_ratio": self.ratio,
            "avg_bb": self.avg_sepfunc_blocks,
            "reduction_ratio": self.reduction_ratio,
        }


@dataclass
class FusionStats:
    """Per-program fusion statistics.

    * ``ratio`` — fraction of eligible functions that were aggregated (97–99%);
    * ``avg_reduced_params`` — parameters saved by the compression (#RP);
    * ``avg_innocuous_blocks`` — innocuous blocks per fused function (#HBB).
    """

    candidate_functions: int = 0
    fused_functions: int = 0
    fusfuncs_created: int = 0
    reduced_parameters: List[int] = field(default_factory=list)
    innocuous_block_counts: List[int] = field(default_factory=list)
    deep_fused_blocks: int = 0

    @property
    def ratio(self) -> float:
        if self.candidate_functions == 0:
            return 0.0
        return self.fused_functions / self.candidate_functions

    @property
    def avg_reduced_params(self) -> float:
        if not self.reduced_parameters:
            return 0.0
        return sum(self.reduced_parameters) / len(self.reduced_parameters)

    @property
    def avg_innocuous_blocks(self) -> float:
        if not self.innocuous_block_counts:
            return 0.0
        return sum(self.innocuous_block_counts) / len(self.innocuous_block_counts)

    def as_row(self) -> Dict[str, float]:
        return {
            "fusion_ratio": self.ratio,
            "avg_reduced_params": self.avg_reduced_params,
            "avg_innocuous_blocks": self.avg_innocuous_blocks,
        }


@dataclass
class KhaosStats:
    fission: FissionStats = field(default_factory=FissionStats)
    fusion: FusionStats = field(default_factory=FusionStats)

    def as_row(self) -> Dict[str, float]:
        row = {}
        row.update(self.fission.as_row())
        row.update(self.fusion.as_row())
        return row
