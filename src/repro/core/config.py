"""Configuration of the Khaos obfuscator."""

from __future__ import annotations

from dataclasses import dataclass, field, replace


class Mode:
    """Obfuscation modes evaluated in the paper (section 3.4)."""

    FISSION = "fission"
    FUSION = "fusion"
    FUFI_SEP = "fufi.sep"
    FUFI_ORI = "fufi.ori"
    FUFI_ALL = "fufi.all"

    ALL = (FISSION, FUSION, FUFI_SEP, FUFI_ORI, FUFI_ALL)


@dataclass
class FissionConfig:
    """Parameters of the fission primitive."""

    min_function_blocks: int = 4      # functions smaller than this are left alone
    min_region_blocks: int = 2        # do not create single-block sepFuncs
    max_regions_per_function: int = 4
    max_parameters: int = 6           # keep sepFunc arguments in registers
    min_value: float = 0.01           # Algorithm 1 cost-effectiveness cutoff
    enable_dataflow_reduction: bool = True


@dataclass
class FusionConfig:
    """Parameters of the fusion primitive."""

    max_parameters: int = 6           # prefer pairs whose merged list fits registers
    allow_stack_parameters: bool = True
    max_merged_parameters: int = 10   # hard cap even when the stack is allowed
    enable_parameter_compression: bool = True
    enable_deep_fusion: bool = True
    max_deep_fusion_blocks: int = 2
    fuse_exported: bool = True        # exported functions get trampolines


@dataclass
class KhaosConfig:
    """Top-level configuration: mode, seed and per-primitive settings."""

    mode: str = Mode.FUFI_ORI
    seed: int = 0x5EED
    fission: FissionConfig = field(default_factory=FissionConfig)
    fusion: FusionConfig = field(default_factory=FusionConfig)

    def __post_init__(self) -> None:
        if self.mode not in Mode.ALL:
            raise ValueError(f"unknown Khaos mode {self.mode!r}; "
                             f"expected one of {Mode.ALL}")

    @property
    def runs_fission(self) -> bool:
        return self.mode in (Mode.FISSION, Mode.FUFI_SEP, Mode.FUFI_ORI,
                             Mode.FUFI_ALL)

    @property
    def runs_fusion(self) -> bool:
        return self.mode in (Mode.FUSION, Mode.FUFI_SEP, Mode.FUFI_ORI,
                             Mode.FUFI_ALL)

    def with_mode(self, mode: str) -> "KhaosConfig":
        return replace(self, mode=mode)

    def cache_key(self) -> tuple:
        """Hashable identity of this configuration for the variant cache."""
        from dataclasses import astuple
        return ("khaos", self.mode, self.seed,
                astuple(self.fission), astuple(self.fusion))
