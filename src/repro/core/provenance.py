"""Provenance tracking: which original functions does each new function come from?

The paper's "pairing success judgment method" (section 4.2) relaxes
Precision@1: a match is counted as correct when an original function is paired
with any of its sepFuncs or its remFunc (fission), or with the fusFunc it was
merged into (fusion).  That judgment needs a ground-truth map from every
function in the obfuscated binary back to the set of original functions whose
code it (partly) contains — which is exactly what :class:`ProvenanceMap`
records as the passes run.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, List, Set


class ProvenanceMap:
    """Maps obfuscated function names to the original function names they contain."""

    def __init__(self, original_names: Iterable[str] = ()):
        self._origins: Dict[str, Set[str]] = {
            name: {name} for name in original_names}

    # -- updates ------------------------------------------------------------------

    def record_identity(self, name: str) -> None:
        self._origins.setdefault(name, {name})

    def record_derived(self, new_name: str, source_names: Iterable[str]) -> None:
        """``new_name`` contains code from every function in ``source_names``.

        Source names are resolved through the map, so deriving from an already
        derived function (e.g. fusing two sepFuncs) accumulates the true
        original functions.
        """
        origins: Set[str] = set()
        for source in source_names:
            origins |= self._origins.get(source, {source})
        self._origins[new_name] = origins

    def record_removed(self, name: str) -> None:
        self._origins.pop(name, None)

    def rename(self, old_name: str, new_name: str) -> None:
        if old_name in self._origins:
            self._origins[new_name] = self._origins.pop(old_name)

    # -- queries ------------------------------------------------------------------

    def origins_of(self, name: str) -> FrozenSet[str]:
        return frozenset(self._origins.get(name, {name}))

    def functions_containing(self, original_name: str) -> List[str]:
        """Every obfuscated function that contains code of ``original_name``."""
        return sorted(new_name for new_name, origins in self._origins.items()
                      if original_name in origins)

    def is_correct_match(self, original_name: str, matched_name: str) -> bool:
        """The paper's relaxed pairing rule."""
        return original_name in self.origins_of(matched_name)

    def known_names(self) -> List[str]:
        return sorted(self._origins)

    def as_dict(self) -> Dict[str, FrozenSet[str]]:
        return {name: frozenset(origins)
                for name, origins in self._origins.items()}

    def compose(self, later: "ProvenanceMap") -> "ProvenanceMap":
        """Provenance of applying ``later`` after ``self``."""
        combined = ProvenanceMap()
        for name, origins in later._origins.items():
            resolved: Set[str] = set()
            for origin in origins:
                resolved |= self._origins.get(origin, {origin})
            combined._origins[name] = resolved
        return combined

    def __len__(self) -> int:
        return len(self._origins)

    def __contains__(self, name: str) -> bool:
        return name in self._origins
