"""The Khaos driver: runs fission and/or fusion according to the configured mode.

The five modes follow section 3.4 of the paper:

* ``fission`` — only the fission primitive;
* ``fusion`` — only the fusion primitive, over the original functions;
* ``fufi.sep`` — fission first, then fusion restricted to the generated
  sepFuncs (no indirect-call handling is ever needed in this mode because
  sepFuncs are never address-taken);
* ``fufi.ori`` — fission first, then fusion restricted to functions the
  fission did not touch (the paper's recommended balance);
* ``fufi.all`` — fission first, then fusion over sepFuncs and untouched
  functions uniformly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

from ..analysis.manager import AnalysisManager
from ..ir.function import Function
from ..ir.module import Program
from ..ir.verifier import assert_valid
from .config import KhaosConfig, Mode
from .fission import Fission
from .fusion import Fusion
from .provenance import ProvenanceMap
from .stats import KhaosStats


@dataclass
class ObfuscationResult:
    """IR-level outcome of an obfuscation run."""

    program: Program
    provenance: ProvenanceMap
    stats: KhaosStats
    label: str
    config: Optional[KhaosConfig] = None


def _fusion_filter_for(mode: str) -> Optional[Callable[[Function], bool]]:
    if mode == Mode.FUSION:
        return None
    if mode == Mode.FUFI_SEP:
        return lambda f: f.attributes.get("khaos_kind") == "sepfunc"
    if mode == Mode.FUFI_ORI:
        return lambda f: (f.attributes.get("khaos_kind") != "sepfunc"
                          and not f.attributes.get("khaos_fissioned"))
    if mode == Mode.FUFI_ALL:
        return lambda f: (f.attributes.get("khaos_kind") == "sepfunc"
                          or not f.attributes.get("khaos_fissioned"))
    return None


class Khaos:
    """Applies the configured Khaos mode to a program (at the IR level)."""

    def __init__(self, config: Optional[KhaosConfig] = None):
        self.config = config or KhaosConfig()

    def cache_key(self) -> tuple:
        """Identity of this obfuscator for :class:`~repro.core.variant_cache.VariantCache`."""
        return self.config.cache_key()

    def obfuscate(self, program: Program, verify: bool = True) -> ObfuscationResult:
        working = program.link()
        module = working.modules[0]
        original_names = [f.name for f in module.defined_functions()]
        provenance = ProvenanceMap(original_names)
        stats = KhaosStats()

        analyses = AnalysisManager()
        if self.config.runs_fission:
            fission = Fission(self.config.fission, provenance, stats.fission,
                              analyses=analyses)
            fission.run_on_module(module, entry=working.entry)

        if self.config.runs_fusion:
            fusion = Fusion(self.config.fusion, provenance, stats.fusion,
                            seed=self.config.seed, analyses=analyses)
            fusion.run_on_module(module, entry=working.entry,
                                 candidate_filter=_fusion_filter_for(self.config.mode))

        if verify:
            # tier from REPRO_VERIFY_IR (structural by default); reusing the
            # pipeline's AnalysisManager lets the full tier walk the dominator
            # trees fission/fusion already built for the surviving functions
            assert_valid(working, analyses=analyses)
        working.metadata["khaos_mode"] = self.config.mode
        return ObfuscationResult(program=working, provenance=provenance,
                                 stats=stats, label=self.config.mode,
                                 config=self.config)


def obfuscate(program: Program, mode: str = Mode.FUFI_ORI,
              seed: int = 0x5EED, verify: bool = True) -> ObfuscationResult:
    """Convenience wrapper: obfuscate ``program`` with the given Khaos mode."""
    return Khaos(KhaosConfig(mode=mode, seed=seed)).obfuscate(program, verify=verify)
