"""Khaos: the inter-procedural obfuscation primitives (fission and fusion)."""

from .config import FissionConfig, FusionConfig, KhaosConfig, Mode
from .provenance import ProvenanceMap
from .stats import FissionStats, FusionStats, KhaosStats
from .region import Region, RegionIdentifier
from .fission import Fission
from .fusion import Fusion, TAG_FUSED_A, TAG_FUSED_B
from .obfuscator import Khaos, ObfuscationResult, obfuscate
from .variant_cache import VariantCache, variant_key

__all__ = [
    "FissionConfig", "FusionConfig", "KhaosConfig", "Mode", "ProvenanceMap",
    "FissionStats", "FusionStats", "KhaosStats", "Region", "RegionIdentifier",
    "Fission", "Fusion", "TAG_FUSED_A", "TAG_FUSED_B", "Khaos",
    "ObfuscationResult", "obfuscate", "VariantCache", "variant_key",
]
