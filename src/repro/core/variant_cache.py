"""Build-variant cache for the evaluation experiments.

The paper's pipeline compiles every workload "under O2 with LTO" once per
obfuscation configuration, and Figures 6, 7 and 8 all iterate the same
(workload, configuration) matrix — the overhead experiments re-build exactly
the variants the diffing-precision experiment builds.  Workload synthesis is
profile-seeded and every obfuscator is seeded too, so a built variant is a
pure function of ``(workload, obfuscation config, optimization options)``:
rebuilding it is wasted work.

:class:`VariantCache` memoises those builds.  Keys are derived with
:func:`variant_key`; obfuscators advertise their configuration through a
``cache_key()`` method (see :meth:`repro.core.config.KhaosConfig.cache_key`),
so two obfuscators with the same label but different knobs never collide.

Cached artifacts are shared between callers, so consumers must treat them as
immutable: run the program, diff the binary, read the provenance — never
mutate the IR in place.  (The evaluation drivers only ever execute and diff.)
"""

from __future__ import annotations

import dataclasses
import os
import pickle
from collections import OrderedDict
from typing import Callable, Dict, Optional, Tuple

#: Bump when the build pipeline changes incompatibly (key schema version).
_KEY_SCHEMA = 1

#: On-disk payload format version (bump when save()'s layout changes).
CACHE_FILE_VERSION = 1

#: File name used inside a ``REPRO_VARIANT_CACHE_DIR`` directory.
CACHE_FILE_NAME = "variants.pkl"


def cache_file_path(directory: str) -> str:
    """The cache file inside a ``REPRO_VARIANT_CACHE_DIR`` directory."""
    return os.path.join(directory, CACHE_FILE_NAME)


def _freeze(value) -> object:
    """Recursively convert ``value`` into a hashable key component."""
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return (type(value).__name__,) + tuple(
            (f.name, _freeze(getattr(value, f.name)))
            for f in dataclasses.fields(value))
    if isinstance(value, dict):
        return tuple(sorted((k, _freeze(v)) for k, v in value.items()))
    if isinstance(value, (list, tuple)):
        return tuple(_freeze(v) for v in value)
    return value


def _value_based(frozen) -> bool:
    """True when ``frozen`` compares by value (safe inside a cache key).

    Arbitrary objects hash by identity, so embedding them in a key would
    defeat cache sharing between logically identical configurations — and
    never match again after a disk round trip.
    """
    if frozen is None or isinstance(frozen, (str, bytes, int, float, bool)):
        return True
    if isinstance(frozen, tuple):
        return all(_value_based(item) for item in frozen)
    return False


def config_cache_key(obfuscator_or_label) -> object:
    """The configuration component of a variant key.

    Accepts a plain label string (e.g. ``"baseline"``) or any obfuscator
    object; objects exposing ``cache_key()`` use it, others fall back to
    their ``label`` plus frozen public configuration.
    """
    if isinstance(obfuscator_or_label, str):
        return obfuscator_or_label
    cache_key = getattr(obfuscator_or_label, "cache_key", None)
    if callable(cache_key):
        return cache_key()
    # fallback: freeze the public configuration too, so two instances with
    # the same label but different knobs never collide
    config = []
    for name in sorted(getattr(obfuscator_or_label, "__dict__", {})):
        if name.startswith("_") or name == "label":
            continue
        value = getattr(obfuscator_or_label, name)
        if callable(value):
            continue
        frozen = _freeze(value)
        if not _value_based(frozen):
            # identity-hashed objects would never match across instances or
            # a disk round trip; fall back to their (stable-enough) repr
            frozen = repr(value)
        config.append((name, frozen))
    return (type(obfuscator_or_label).__name__,
            getattr(obfuscator_or_label, "label", "?"),
            tuple(config))


def variant_key(workload, obfuscator_or_label, options=None) -> Tuple:
    """Cache key for one built variant.

    ``workload`` is a :class:`~repro.workloads.suites.WorkloadProgram` (its
    *whole* profile pins the synthesised IR — every knob, not just the seed);
    ``obfuscator_or_label`` identifies the obfuscation configuration incl.
    its seed; ``options`` the :class:`~repro.opt.pass_manager.OptOptions` of
    the O2+LTO pipeline.
    """
    profile = getattr(workload, "profile", None)
    return (_KEY_SCHEMA,
            workload.suite, workload.name,
            _freeze(profile) if profile is not None else None,
            config_cache_key(obfuscator_or_label),
            _freeze(options) if options is not None else None)


class VariantCache:
    """LRU memo of built variants, keyed by :func:`variant_key`.

    ``max_entries=None`` means unbounded (the evaluation matrices are small:
    at most a few hundred variants).  ``hits``/``misses`` feed the benchmark
    report; ``hit_rate`` is the fraction of lookups served from cache.
    """

    def __init__(self, max_entries: Optional[int] = None):
        if max_entries is not None and max_entries <= 0:
            raise ValueError("max_entries must be positive or None")
        self.max_entries = max_entries
        self._entries: "OrderedDict[Tuple, object]" = OrderedDict()
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: Tuple) -> bool:
        return key in self._entries

    def get_or_build(self, key: Tuple, builder: Callable[[], object]):
        """Return the cached artifact for ``key``, building it on first use."""
        try:
            artifact = self._entries[key]
        except KeyError:
            self.misses += 1
            artifact = builder()
            self._entries[key] = artifact
            if (self.max_entries is not None
                    and len(self._entries) > self.max_entries):
                self._entries.popitem(last=False)
            return artifact
        self.hits += 1
        self._entries.move_to_end(key)
        return artifact

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def stats(self) -> Dict[str, object]:
        return {"entries": len(self._entries), "hits": self.hits,
                "misses": self.misses, "hit_rate": round(self.hit_rate, 4)}

    def clear(self) -> None:
        self._entries.clear()
        self.hits = 0
        self.misses = 0

    # -- disk persistence -------------------------------------------------------

    def save(self, path: str) -> None:
        """Persist the cached artifacts to ``path`` as a version-stamped pickle.

        Written atomically (temp file + rename) so concurrent readers — e.g.
        executor workers pre-loading from ``REPRO_VARIANT_CACHE_DIR`` — never
        observe a half-written file.  Hit/miss counters are *not* persisted;
        they describe one process's lookups, not the artifacts.
        """
        payload = {
            "version": CACHE_FILE_VERSION,
            "key_schema": _KEY_SCHEMA,
            "entries": list(self._entries.items()),
        }
        directory = os.path.dirname(path)
        if directory:
            os.makedirs(directory, exist_ok=True)
        tmp_path = f"{path}.tmp.{os.getpid()}"
        with open(tmp_path, "wb") as fh:
            pickle.dump(payload, fh, protocol=pickle.HIGHEST_PROTOCOL)
        os.replace(tmp_path, path)

    @classmethod
    def load(cls, path: str,
             max_entries: Optional[int] = None) -> "VariantCache":
        """Load a cache previously written by :meth:`save`.

        Raises :class:`ValueError` when the file was written with a different
        payload format or variant-key schema — a stale cache must never serve
        artifacts built by an incompatible pipeline.
        """
        with open(path, "rb") as fh:
            payload = pickle.load(fh)
        if (not isinstance(payload, dict)
                or payload.get("version") != CACHE_FILE_VERSION
                or payload.get("key_schema") != _KEY_SCHEMA):
            raise ValueError(
                f"incompatible variant cache file {path!r} "
                f"(want version={CACHE_FILE_VERSION}, key_schema={_KEY_SCHEMA})")
        cache = cls(max_entries=max_entries)
        for key, artifact in payload["entries"]:
            cache._entries[key] = artifact
            if (cache.max_entries is not None
                    and len(cache._entries) > cache.max_entries):
                cache._entries.popitem(last=False)
        return cache
