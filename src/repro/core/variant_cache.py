"""Build-variant cache: the façade over the shared artifact store.

The paper's pipeline compiles every workload "under O2 with LTO" once per
obfuscation configuration, and Figures 6, 7 and 8 all iterate the same
(workload, configuration) matrix — the overhead experiments re-build exactly
the variants the diffing-precision experiment builds.  Workload synthesis is
profile-seeded and every obfuscator is seeded too, so a built variant is a
pure function of ``(workload, obfuscation config, optimization options)``:
rebuilding it is wasted work.

:class:`VariantCache` memoises those builds.  Keys are derived with
:func:`variant_key` (now living in :mod:`repro.store.keys`, re-exported here);
obfuscators advertise their configuration through a ``cache_key()`` method
(see :meth:`repro.core.config.KhaosConfig.cache_key`), so two obfuscators
with the same label but different knobs never collide.

Since the artifact-store subsystem landed, ``VariantCache`` is a thin façade
over :class:`repro.store.artifact_store.ArtifactStore`: the default
construction wraps a pure in-memory store (the historical LRU behaviour),
and passing ``store=ArtifactStore.attach(dir)`` makes every lookup fall
through the in-process LRU to a shared on-disk object tree that any number
of concurrent workers use together.  The pre-store single-pickle layout
(:meth:`save`/:meth:`load`, ``variants.pkl`` under the now-deprecated
``REPRO_VARIANT_CACHE_DIR``) is kept as an import/export format on top of
the store — not as a parallel caching mechanism.

Cached artifacts are shared between callers (and, through a rooted store,
between processes), so consumers must treat them as immutable: run the
program, diff the binary, read the provenance — never mutate the IR in
place.  (The evaluation drivers only ever execute and diff.)
"""

from __future__ import annotations

import os
import pickle
from typing import Callable, Dict, Optional, Tuple

from ..store.artifact_store import KIND_BINARY, KIND_VARIANT, ArtifactStore
from ..store.keys import (KEY_SCHEMA as _KEY_SCHEMA,  # noqa: F401 (re-export)
                          _freeze, _value_based, config_cache_key, variant_key)

#: On-disk payload format version of the *legacy* single-pickle layout
#: (bump when save()'s layout changes).  The store tree has its own schema
#: stamp — see :data:`repro.store.artifact_store.STORE_SCHEMA`.
CACHE_FILE_VERSION = 1

#: File name used inside a ``REPRO_VARIANT_CACHE_DIR`` directory.
CACHE_FILE_NAME = "variants.pkl"


def cache_file_path(directory: str) -> str:
    """The legacy cache file inside a ``REPRO_VARIANT_CACHE_DIR`` directory."""
    return os.path.join(directory, CACHE_FILE_NAME)


class VariantCache:
    """Memo of built variants, keyed by :func:`variant_key`.

    A façade over one :class:`~repro.store.artifact_store.ArtifactStore`
    namespace (kind ``"variant"``).  ``max_entries`` bounds the in-process
    LRU layer; ``None`` means unbounded (the evaluation matrices are small:
    at most a few hundred variants).  ``hits``/``misses`` count this
    process's lookups (a hit served from the store's disk layer is still a
    hit — nothing was rebuilt); ``hit_rate`` is the fraction of lookups
    served without building.
    """

    def __init__(self, max_entries: Optional[int] = None,
                 store: Optional[ArtifactStore] = None):
        if max_entries is not None and max_entries <= 0:
            raise ValueError("max_entries must be positive or None")
        if store is None:
            store = ArtifactStore(root=None, max_memory_entries=max_entries)
        elif (max_entries is not None
                and store.max_memory_entries != max_entries):
            # the store owns the memory layer; a conflicting façade bound
            # would be silently ignored, so reject it instead
            raise ValueError(
                f"max_entries={max_entries} conflicts with the supplied "
                f"store's max_memory_entries={store.max_memory_entries}; "
                f"bound the store at attach time instead")
        self.max_entries = store.max_memory_entries
        self._store = store
        self.hits = 0
        self.misses = 0

    @property
    def store(self) -> ArtifactStore:
        """The backing artifact store (rooted for shared-on-disk caches)."""
        return self._store

    def __len__(self) -> int:
        return self._store.entry_count(KIND_VARIANT)

    def __contains__(self, key: Tuple) -> bool:
        return self._store.contains(KIND_VARIANT, key)

    def get_or_build(self, key: Tuple, builder: Callable[[], object]):
        """Return the cached artifact for ``key``, building it on first use.

        With a rooted store, a freshly built variant's lowered binary also
        rides along under kind ``"binary"`` and the same key, so diff-only
        consumers can fetch binaries from the shared tree without unpickling
        whole :class:`~repro.toolchain.BuildArtifact` objects.
        """
        built = False

        def tracked_builder():
            nonlocal built
            built = True
            return builder()

        artifact = self._store.get_or_build(KIND_VARIANT, key, tracked_builder)
        if built:
            self.misses += 1
            if self._store.persistent:
                binary = getattr(artifact, "binary", None)
                if binary is not None:
                    self._store.put(KIND_BINARY, key, binary)
        else:
            self.hits += 1
        return artifact

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def stats(self) -> Dict[str, object]:
        return {"entries": len(self), "hits": self.hits,
                "misses": self.misses, "hit_rate": round(self.hit_rate, 4)}

    def store_stats(self) -> Dict[str, object]:
        """The backing store's layer-by-layer counters (memory/disk/puts)."""
        return self._store.stats()

    def clear(self) -> None:
        """Reset counters and drop the in-process layer.

        Shared on-disk objects are deliberately left alone: they belong to
        every attached process, not to this façade.
        """
        self._store.clear_memory()
        self._store.reset_counters()
        self.hits = 0
        self.misses = 0

    # -- legacy single-pickle persistence ----------------------------------------

    def save(self, path: str) -> None:
        """Export the in-process entries to ``path`` (legacy pickle layout).

        Written atomically (temp file + rename) so concurrent readers never
        observe a half-written file.  Hit/miss counters are *not* persisted;
        they describe one process's lookups, not the artifacts.  For a
        store-backed cache only the memory layer is exported — the on-disk
        tree already persists everything and needs no second copy.
        """
        payload = {
            "version": CACHE_FILE_VERSION,
            "key_schema": _KEY_SCHEMA,
            "entries": self._store.memory_items(KIND_VARIANT),
        }
        directory = os.path.dirname(path)
        if directory:
            os.makedirs(directory, exist_ok=True)
        tmp_path = f"{path}.tmp.{os.getpid()}"
        with open(tmp_path, "wb") as fh:
            pickle.dump(payload, fh, protocol=pickle.HIGHEST_PROTOCOL)
        os.replace(tmp_path, path)

    def import_legacy(self, path: str) -> int:
        """Seed the in-process layer from a :meth:`save`-format file.

        Returns the number of entries imported (the LRU bound applies, so
        fewer may survive).  Raises :class:`ValueError` when the file was
        written with a different payload format or variant-key schema — a
        stale cache must never serve artifacts built by an incompatible
        pipeline.
        """
        with open(path, "rb") as fh:
            payload = pickle.load(fh)
        if (not isinstance(payload, dict)
                or payload.get("version") != CACHE_FILE_VERSION
                or payload.get("key_schema") != _KEY_SCHEMA):
            raise ValueError(
                f"incompatible variant cache file {path!r} "
                f"(want version={CACHE_FILE_VERSION}, key_schema={_KEY_SCHEMA})")
        entries = payload["entries"]
        for key, artifact in entries:
            self._store.preload(KIND_VARIANT, key, artifact)
        return len(entries)

    @classmethod
    def load(cls, path: str,
             max_entries: Optional[int] = None) -> "VariantCache":
        """Load a cache previously written by :meth:`save`."""
        cache = cls(max_entries=max_entries)
        cache.import_legacy(path)
        return cache
