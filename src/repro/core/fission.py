"""The fission primitive: separate a function into sub-functions.

For every chosen region (see :mod:`repro.core.region`) the pass

1. creates a *sepFunc* whose body is the region's basic blocks;
2. rebuilds the data flow — values defined outside the region and used inside
   become parameters, values defined inside and used outside are returned
   through pointer out-parameters, and locals used only inside the region are
   re-allocated inside the sepFunc (the paper's lazy-allocation data-flow
   reduction);
3. rebuilds the control flow — the region is replaced in the *remFunc* by a
   call followed by a dispatch on the sepFunc's return value, which encodes
   the exit through which the region left (including "the original function
   returns now", section 3.2.3).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from ..analysis.defuse import region_inputs, region_outputs
from ..analysis.manager import AnalysisManager
from ..ir.basicblock import BasicBlock
from ..ir.function import Function, Linkage
from ..ir.instructions import (Alloca, Branch, Call, CondBranch, Instruction,
                               Load, Ret, Store, Switch, Unreachable)
from ..ir.module import Module
from ..ir.types import FunctionType, PointerType, I64
from ..ir.values import Constant, Value
from .config import FissionConfig
from .provenance import ProvenanceMap
from .region import Region, RegionIdentifier
from .stats import FissionStats


class Fission:
    """Applies the fission primitive to every eligible function of a module."""

    def __init__(self, config: Optional[FissionConfig] = None,
                 provenance: Optional[ProvenanceMap] = None,
                 stats: Optional[FissionStats] = None,
                 analyses: Optional[AnalysisManager] = None):
        self.config = config or FissionConfig()
        self.provenance = provenance if provenance is not None else ProvenanceMap()
        self.stats = stats if stats is not None else FissionStats()
        self.analyses = analyses if analyses is not None else AnalysisManager()

    # -- module driver ------------------------------------------------------------

    def run_on_module(self, module: Module, entry: str = "main") -> List[Function]:
        created: List[Function] = []
        originals = [f for f in module.defined_functions() if f.name != entry]
        self.stats.original_functions += len(originals)
        for function in originals:
            if function.attributes.get("no_obfuscate"):
                continue
            new_funcs = self.run_on_function(module, function)
            created.extend(new_funcs)
        if created:
            # new sepFuncs and rewritten call sites invalidate any cached
            # call graph of this module
            self.analyses.invalidate_module(module)
        return created

    def run_on_function(self, module: Module, function: Function) -> List[Function]:
        if function.is_declaration:
            return []
        if function.block_count() < self.config.min_function_blocks:
            return []

        identifier = RegionIdentifier(function, self.config,
                                      analyses=self.analyses)
        regions = identifier.identify()
        if not regions:
            return []

        original_block_count = function.block_count()
        created: List[Function] = []
        removed_blocks = 0
        for index, region in enumerate(regions):
            # earlier extractions may have invalidated a later region
            if any(block.parent is not function for block in region.blocks):
                continue
            sepfunc = self._extract_region(module, function, region, index)
            self.analyses.invalidate(function)
            if sepfunc is None:
                continue
            created.append(sepfunc)
            removed_blocks += len(region.blocks)
            self.stats.sepfunc_block_counts.append(len(region.blocks))
            self.provenance.record_derived(sepfunc.name, [function.name])

        if created:
            self.stats.processed_functions += 1
            self.stats.sepfuncs_created += len(created)
            self.stats.per_function_reduction.append(
                removed_blocks / max(1, original_block_count))
            function.attributes["khaos_fissioned"] = True
            self.provenance.record_identity(function.name)
        return created

    # -- region extraction --------------------------------------------------------

    def _extract_region(self, module: Module, function: Function,
                        region: Region, index: int) -> Optional[Function]:
        region_blocks = list(region.blocks)
        region_ids = set(region_blocks)

        inputs = region_inputs(region_blocks)
        lazy_allocas: List[Alloca] = []
        if self.config.enable_dataflow_reduction:
            lazy_allocas = self._lazy_allocas(function, region_ids, inputs)
            lazy_ids = {id(a) for a in lazy_allocas}
            inputs = [v for v in inputs if id(v) not in lazy_ids]
        outputs = region_outputs(function, region_blocks)

        ret_blocks = [b for b in region_blocks if isinstance(b.terminator, Ret)]
        need_ret_out = (not function.return_type.is_void) and bool(ret_blocks)

        param_count = len(inputs) + len(outputs) + (1 if need_ret_out else 0)
        if param_count > self.config.max_parameters:
            return None

        exit_targets = self._exit_targets(region_blocks, region_ids)
        return_code = len(exit_targets)

        # -- build the sepFunc shell ---------------------------------------------
        param_types = [v.type for v in inputs]
        param_types += [PointerType(o.type) for o in outputs]
        if need_ret_out:
            param_types.append(PointerType(function.return_type))
        param_names = [f"in{i}" for i in range(len(inputs))]
        param_names += [f"out{i}" for i in range(len(outputs))]
        if need_ret_out:
            param_names.append("retout")

        sep_name = self._unique_name(module, f"{function.name}.sep.{index}")
        sepfunc = Function(sep_name, FunctionType(I64, param_types),
                           param_names=param_names, linkage=Linkage.INTERNAL)
        sepfunc.attributes["khaos_kind"] = "sepfunc"
        sepfunc.attributes["khaos_origin"] = function.name
        module.add_function(sepfunc)

        # -- move the region's blocks ----------------------------------------------
        ordered = [region.head] + [b for b in region_blocks if b is not region.head]
        for block in ordered:
            function.remove_block(block)
            block.parent = sepfunc
            sepfunc.blocks.append(block)

        # -- data flow: inputs become parameters ------------------------------------
        input_map: Dict[int, Value] = {
            id(value): sepfunc.args[i] for i, value in enumerate(inputs)}
        for inst in sepfunc.instructions():
            for i, op in enumerate(inst.operands):
                mapped = input_map.get(id(op))
                if mapped is not None:
                    inst.operands[i] = mapped

        # -- data flow reduction: locals used only in the region move inside --------
        for alloca in lazy_allocas:
            if alloca.parent is not None:
                alloca.parent.remove(alloca)
            sepfunc.entry_block.insert(0, alloca)

        # -- data flow: outputs are written through pointer parameters --------------
        out_params = sepfunc.args[len(inputs):len(inputs) + len(outputs)]
        for output, out_param in zip(outputs, out_params):
            owner = output.parent
            position = owner.instructions.index(output) + 1
            owner.insert(position, Store(output, out_param))
        ret_out_param = sepfunc.args[-1] if need_ret_out else None

        # -- control flow inside the sepFunc: exits return their code ---------------
        exit_stubs: Dict[BasicBlock, BasicBlock] = {}
        for code, target in enumerate(exit_targets):
            stub = sepfunc.add_block(f"exit.{code}")
            stub.append(Ret(Constant(I64, code)))
            exit_stubs[target] = stub

        for block in ordered:
            term = block.terminator
            if term is None:
                continue
            if isinstance(term, Ret):
                block.remove(term)
                if need_ret_out and term.value is not None:
                    block.append(Store(term.value, ret_out_param))
                block.append(Ret(Constant(I64, return_code)))
                continue
            self._retarget_outside(term, region_ids, exit_stubs)

        # -- control flow in the remFunc: call + dispatch ---------------------------
        self._build_call_site(function, sepfunc, region, inputs, outputs,
                              exit_targets, ret_blocks, need_ret_out,
                              return_code)
        return sepfunc

    # -- helpers ------------------------------------------------------------------

    @staticmethod
    def _unique_name(module: Module, base: str) -> str:
        name = base
        counter = 0
        while module.get_function(name) is not None:
            counter += 1
            name = f"{base}.{counter}"
        return name

    def _lazy_allocas(self, function: Function, region_ids: set,
                      inputs: Sequence[Value]) -> List[Alloca]:
        defuse = self.analyses.defuse(function)
        lazy: List[Alloca] = []
        for value in inputs:
            if not isinstance(value, Alloca):
                continue
            uses = defuse.uses_of(value)
            if uses and all(u.parent in region_ids for u in uses):
                lazy.append(value)
        return lazy

    @staticmethod
    def _exit_targets(region_blocks: Sequence[BasicBlock],
                      region_ids: set) -> List[BasicBlock]:
        targets: List[BasicBlock] = []
        seen = set()
        for block in region_blocks:
            for succ in block.successors():
                if succ in region_ids:
                    continue
                if succ not in seen:
                    seen.add(succ)
                    targets.append(succ)
        return targets

    @staticmethod
    def _retarget_outside(term: Instruction, region_ids: set,
                          exit_stubs: Dict[BasicBlock, BasicBlock]) -> None:
        if isinstance(term, Branch):
            if term.target not in region_ids:
                term.target = exit_stubs[term.target]
        elif isinstance(term, CondBranch):
            if term.true_target not in region_ids:
                term.true_target = exit_stubs[term.true_target]
            if term.false_target not in region_ids:
                term.false_target = exit_stubs[term.false_target]
        elif isinstance(term, Switch):
            if term.default_target not in region_ids:
                term.default_target = exit_stubs[term.default_target]
            term.cases = [
                (c, exit_stubs[t] if t not in region_ids else t)
                for c, t in term.cases]

    def _build_call_site(self, function: Function, sepfunc: Function,
                         region: Region, inputs: Sequence[Value],
                         outputs: Sequence[Instruction],
                         exit_targets: Sequence[BasicBlock],
                         ret_blocks: Sequence[BasicBlock],
                         need_ret_out: bool, return_code: int) -> None:
        entry = function.entry_block

        out_allocas: List[Alloca] = []
        for i, output in enumerate(outputs):
            slot = Alloca(output.type, name=f"{sepfunc.name}.out{i}")
            entry.insert(0, slot)
            out_allocas.append(slot)
        ret_alloca: Optional[Alloca] = None
        if need_ret_out:
            ret_alloca = Alloca(function.return_type, name=f"{sepfunc.name}.retslot")
            entry.insert(0, ret_alloca)

        call_block = function.add_block(f"{region.head.name}.call")
        call_args: List[Value] = list(inputs) + list(out_allocas)
        if ret_alloca is not None:
            call_args.append(ret_alloca)
        call = Call(sepfunc, call_args, name=f"{sepfunc.name}.code")
        call_block.append(call)

        # outputs become loads of the out slots; rewrite every remaining use
        replacements: Dict[int, Value] = {}
        for output, slot in zip(outputs, out_allocas):
            load = Load(slot, name=f"{output.name}.reload")
            call_block.append(load)
            replacements[id(output)] = load
        if replacements:
            for inst in function.instructions():
                for i, op in enumerate(inst.operands):
                    if id(op) in replacements:
                        inst.operands[i] = replacements[id(op)]

        # the block that re-materialises "return from inside the region"
        return_block: Optional[BasicBlock] = None
        if ret_blocks:
            return_block = function.add_block(f"{region.head.name}.ret")
            if need_ret_out and ret_alloca is not None:
                reload = Load(ret_alloca, name=f"{sepfunc.name}.retreload")
                return_block.append(reload)
                return_block.append(Ret(reload))
            elif function.return_type.is_void:
                return_block.append(Ret(None))
            else:
                return_block.append(Ret(Constant(I64, 0)))

        # dispatch on the sepFunc's return code
        if len(exit_targets) == 1 and not ret_blocks:
            call_block.append(Branch(exit_targets[0]))
        elif not exit_targets and not ret_blocks:
            call_block.append(Unreachable())
        else:
            default = return_block if return_block is not None else exit_targets[0]
            switch = Switch(call, default)
            for code, target in enumerate(exit_targets):
                switch.add_case(Constant(I64, code), target)
            if return_block is not None and exit_targets:
                switch.add_case(Constant(I64, return_code), return_block)
            call_block.append(switch)

        # redirect every edge that targeted the region head to the call block
        self._retarget_head(function, region.head, call_block)

    @staticmethod
    def _retarget_head(function: Function, head: BasicBlock,
                       call_block: BasicBlock) -> None:
        for block in function.blocks:
            if block is call_block:
                continue
            term = block.terminator
            if term is None:
                continue
            if isinstance(term, Branch) and term.target is head:
                term.target = call_block
            elif isinstance(term, CondBranch):
                if term.true_target is head:
                    term.true_target = call_block
                if term.false_target is head:
                    term.false_target = call_block
            elif isinstance(term, Switch):
                if term.default_target is head:
                    term.default_target = call_block
                term.cases = [(c, call_block if t is head else t)
                              for c, t in term.cases]
