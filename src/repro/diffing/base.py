"""The common binary-diffing framework: tool interface, matching and metrics.

Every tool produces, for each function of the *original* (un-obfuscated,
un-stripped) binary, a ranked list of candidate functions in the *obfuscated*
binary.  The evaluation then applies the paper's metrics:

* **Precision@1** with the relaxed pairing rule of section 4.2 — a pairing is
  correct if the top-ranked candidate contains code of the original function
  (its remFunc, one of its sepFuncs, or the fusFunc it was merged into),
  which is what :class:`~repro.core.provenance.ProvenanceMap` records;
* **escape@n** (section 4.3) — a vulnerable function *escapes* if no correct
  candidate appears within the top *n* ranked matches;
* a whole-binary **similarity score** in [0, 1] (used for the BinDiff /
  BinTuner comparison of Figure 9).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..backend.binary import Binary, BinaryFunction
from ..core.provenance import ProvenanceMap


RankedCandidates = List[Tuple[str, float]]


@dataclass
class ToolInfo:
    """Table 1 characteristics of a diffing tool."""

    name: str
    granularity: str              # "function" or "basic block"
    symbol_relying: bool
    time_consuming: bool
    memory_consuming: bool
    callgraph_lacking: bool

    def as_row(self) -> Dict[str, str]:
        def yn(flag: bool) -> str:
            return "Y" if flag else "N"
        return {
            "diffing": self.name,
            "granularity": self.granularity,
            "symbol relying": yn(self.symbol_relying),
            "time consuming": yn(self.time_consuming),
            "memory consuming": yn(self.memory_consuming),
            "call-graph lacking": yn(self.callgraph_lacking),
        }


@dataclass
class DiffResult:
    """Outcome of diffing one (original, obfuscated) binary pair."""

    tool: str
    original: str
    obfuscated: str
    matches: Dict[str, RankedCandidates] = field(default_factory=dict)
    similarity_score: float = 0.0

    def top_match(self, function_name: str) -> Optional[str]:
        ranked = self.matches.get(function_name)
        if not ranked:
            return None
        return ranked[0][0]

    def rank_of_correct(self, function_name: str,
                        provenance: ProvenanceMap) -> Optional[int]:
        """1-based rank of the first correct candidate, or None."""
        ranked = self.matches.get(function_name, [])
        for position, (candidate, _score) in enumerate(ranked, start=1):
            if provenance.is_correct_match(function_name, candidate):
                return position
        return None


class BinaryDiffer:
    """Base class of the five re-implemented diffing tools."""

    info: ToolInfo

    @property
    def name(self) -> str:
        return self.info.name

    def diff(self, original: Binary, obfuscated: Binary) -> DiffResult:
        raise NotImplementedError

    # -- helpers shared by the concrete tools --------------------------------------

    @staticmethod
    def rank_by_similarity(original: Binary, obfuscated: Binary,
                           similarity, max_candidates: int = 50
                           ) -> Dict[str, RankedCandidates]:
        """Rank every obfuscated function for every original function."""
        matches: Dict[str, RankedCandidates] = {}
        for source in original.functions:
            scored = [(target.name, similarity(source, target))
                      for target in obfuscated.functions]
            scored.sort(key=lambda pair: (-pair[1], pair[0]))
            matches[source.name] = scored[:max_candidates]
        return matches

    @staticmethod
    def whole_binary_score(matches: Dict[str, RankedCandidates],
                           original: Binary, obfuscated: Binary) -> float:
        """Greedy one-to-one assignment score, normalised to [0, 1]."""
        pairs: List[Tuple[float, str, str]] = []
        for source_name, ranked in matches.items():
            for target_name, score in ranked:
                pairs.append((score, source_name, target_name))
        pairs.sort(key=lambda item: (-item[0], item[1], item[2]))
        used_sources: set = set()
        used_targets: set = set()
        total = 0.0
        for score, source_name, target_name in pairs:
            if source_name in used_sources or target_name in used_targets:
                continue
            used_sources.add(source_name)
            used_targets.add(target_name)
            total += max(0.0, min(1.0, score))
        denominator = max(len(original.functions), len(obfuscated.functions), 1)
        return total / denominator


# -- evaluation metrics ---------------------------------------------------------------------


def precision_at_1(result: DiffResult, provenance: ProvenanceMap,
                   function_names: Optional[Sequence[str]] = None) -> float:
    """Fraction of original functions whose top match is correct."""
    names = list(function_names) if function_names is not None \
        else sorted(result.matches)
    if not names:
        return 0.0
    correct = 0
    for name in names:
        top = result.top_match(name)
        if top is not None and provenance.is_correct_match(name, top):
            correct += 1
    return correct / len(names)


def escape_ratio(results: Sequence[DiffResult], provenance_by_result,
                 vulnerable_functions: Sequence[str], n: int) -> float:
    """Fraction of vulnerable functions not correctly matched within the top n."""
    total = 0
    escaped = 0
    for result in results:
        provenance = provenance_by_result[id(result)]
        for function_name in vulnerable_functions:
            if function_name not in result.matches:
                continue
            total += 1
            rank = result.rank_of_correct(function_name, provenance)
            if rank is None or rank > n:
                escaped += 1
    if total == 0:
        return 0.0
    return escaped / total


def escape_at_n(result: DiffResult, provenance: ProvenanceMap,
                function_name: str, n: int) -> bool:
    """True if ``function_name`` has no correct match within the top ``n``."""
    rank = result.rank_of_correct(function_name, provenance)
    return rank is None or rank > n
