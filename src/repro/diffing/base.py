"""The common binary-diffing framework: tool interface, matching and metrics.

Every tool produces, for each function of the *original* (un-obfuscated,
un-stripped) binary, a ranked list of candidate functions in the *obfuscated*
binary.  The evaluation then applies the paper's metrics:

* **Precision@1** with the relaxed pairing rule of section 4.2 — a pairing is
  correct if the top-ranked candidate contains code of the original function
  (its remFunc, one of its sepFuncs, or the fusFunc it was merged into),
  which is what :class:`~repro.core.provenance.ProvenanceMap` records;
* **escape@n** (section 4.3) — a vulnerable function *escapes* if no correct
  candidate appears within the top *n* ranked matches;
* a whole-binary **similarity score** in [0, 1] (used for the BinDiff /
  BinTuner comparison of Figure 9).
"""

from __future__ import annotations

import heapq
import os
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..backend.binary import Binary, BinaryFunction
from ..core.provenance import ProvenanceMap
from .index import FeatureIndex, feature_index


RankedCandidates = List[Tuple[str, float]]


def use_indexed_features() -> bool:
    """False when ``REPRO_DIFF_FEATURES=legacy`` selects per-diff extraction.

    The legacy path re-extracts every feature on every ``diff()`` call — it
    is the differential reference for the :class:`~repro.diffing.index.FeatureIndex`
    fast path and must produce bit-identical results.
    """
    return os.environ.get("REPRO_DIFF_FEATURES", "indexed").lower() != "legacy"


@dataclass
class ToolInfo:
    """Table 1 characteristics of a diffing tool."""

    name: str
    granularity: str              # "function" or "basic block"
    symbol_relying: bool
    time_consuming: bool
    memory_consuming: bool
    callgraph_lacking: bool

    def as_row(self) -> Dict[str, str]:
        def yn(flag: bool) -> str:
            return "Y" if flag else "N"
        return {
            "diffing": self.name,
            "granularity": self.granularity,
            "symbol relying": yn(self.symbol_relying),
            "time consuming": yn(self.time_consuming),
            "memory consuming": yn(self.memory_consuming),
            "call-graph lacking": yn(self.callgraph_lacking),
        }


@dataclass
class DiffResult:
    """Outcome of diffing one (original, obfuscated) binary pair."""

    tool: str
    original: str
    obfuscated: str
    matches: Dict[str, RankedCandidates] = field(default_factory=dict)
    similarity_score: float = 0.0

    def top_match(self, function_name: str) -> Optional[str]:
        ranked = self.matches.get(function_name)
        if not ranked:
            return None
        return ranked[0][0]

    def rank_of_correct(self, function_name: str,
                        provenance: ProvenanceMap) -> Optional[int]:
        """1-based rank of the first correct candidate, or None."""
        ranked = self.matches.get(function_name, [])
        for position, (candidate, _score) in enumerate(ranked, start=1):
            if provenance.is_correct_match(function_name, candidate):
                return position
        return None


class BinaryDiffer:
    """Base class of the five re-implemented diffing tools.

    ``diff()`` resolves the feature source and dispatches to ``_diff``: by
    default each binary's features come from its memoised
    :class:`~repro.diffing.index.FeatureIndex` (extracted once, reused across
    every diff of that binary); setting ``use_index = False`` on an instance
    — or ``REPRO_DIFF_FEATURES=legacy`` in the environment — re-extracts per
    call, which is the differential reference path.
    """

    info: ToolInfo

    #: Tri-state: None follows REPRO_DIFF_FEATURES, True/False force a path.
    use_index: Optional[bool] = None

    @property
    def name(self) -> str:
        return self.info.name

    def diff(self, original: Binary, obfuscated: Binary) -> DiffResult:
        indexed = self.use_index if self.use_index is not None \
            else use_indexed_features()
        if indexed:
            return self._diff(original, obfuscated,
                              feature_index(original), feature_index(obfuscated))
        return self._diff(original, obfuscated, None, None)

    def _diff(self, original: Binary, obfuscated: Binary,
              original_index: Optional[FeatureIndex],
              obfuscated_index: Optional[FeatureIndex]) -> DiffResult:
        raise NotImplementedError

    # -- helpers shared by the concrete tools --------------------------------------

    @staticmethod
    def rank_by_similarity(original: Binary, obfuscated: Binary,
                           similarity, max_candidates: int = 50
                           ) -> Dict[str, RankedCandidates]:
        """Rank every obfuscated function for every original function.

        Top-k selection via a heap instead of a full sort; ``nsmallest`` on
        the ``(-score, name)`` key is documented to equal
        ``sorted(...)[:k]``, so the candidate lists are bit-identical to the
        previous full-sort implementation.
        """
        matches: Dict[str, RankedCandidates] = {}
        key = lambda pair: (-pair[1], pair[0])  # noqa: E731
        for source in original.functions:
            scored = [(target.name, similarity(source, target))
                      for target in obfuscated.functions]
            matches[source.name] = heapq.nsmallest(max_candidates, scored, key=key)
        return matches

    @staticmethod
    def whole_binary_score(matches: Dict[str, RankedCandidates],
                           original: Binary, obfuscated: Binary) -> float:
        """Greedy one-to-one assignment score, normalised to [0, 1]."""
        pairs: List[Tuple[float, str, str]] = []
        for source_name, ranked in matches.items():
            for target_name, score in ranked:
                pairs.append((score, source_name, target_name))
        pairs.sort(key=lambda item: (-item[0], item[1], item[2]))
        used_sources: set = set()
        used_targets: set = set()
        total = 0.0
        for score, source_name, target_name in pairs:
            if source_name in used_sources or target_name in used_targets:
                continue
            used_sources.add(source_name)
            used_targets.add(target_name)
            total += max(0.0, min(1.0, score))
        denominator = max(len(original.functions), len(obfuscated.functions), 1)
        return total / denominator


# -- evaluation metrics ---------------------------------------------------------------------


def precision_at_1(result: DiffResult, provenance: ProvenanceMap,
                   function_names: Optional[Sequence[str]] = None) -> float:
    """Fraction of original functions whose top match is correct."""
    names = list(function_names) if function_names is not None \
        else sorted(result.matches)
    if not names:
        return 0.0
    correct = 0
    for name in names:
        top = result.top_match(name)
        if top is not None and provenance.is_correct_match(name, top):
            correct += 1
    return correct / len(names)


def escape_ratio(results: Sequence[Tuple[DiffResult, ProvenanceMap]],
                 vulnerable_functions: Sequence[str], n: int) -> float:
    """Fraction of vulnerable functions not correctly matched within the top n.

    ``results`` pairs each :class:`DiffResult` with the provenance of its
    obfuscated binary.  (An earlier version took a dict keyed on
    ``id(result)`` — fragile once results are garbage-collected or shipped
    across process boundaries, where ids are recycled or rewritten.)
    """
    total = 0
    escaped = 0
    for result, provenance in results:
        for function_name in vulnerable_functions:
            if function_name not in result.matches:
                continue
            total += 1
            rank = result.rank_of_correct(function_name, provenance)
            if rank is None or rank > n:
                escaped += 1
    if total == 0:
        return 0.0
    return escaped / total


def escape_at_n(result: DiffResult, provenance: ProvenanceMap,
                function_name: str, n: int) -> bool:
    """True if ``function_name`` has no correct match within the top ``n``."""
    rank = result.rank_of_correct(function_name, provenance)
    return rank is None or rank > n
