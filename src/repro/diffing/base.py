"""The common binary-diffing framework: tool interface, matching and metrics.

Every tool produces, for each function of the *original* (un-obfuscated,
un-stripped) binary, a ranked list of candidate functions in the *obfuscated*
binary.  The evaluation then applies the paper's metrics:

* **Precision@1** with the relaxed pairing rule of section 4.2 — a pairing is
  correct if the top-ranked candidate contains code of the original function
  (its remFunc, one of its sepFuncs, or the fusFunc it was merged into),
  which is what :class:`~repro.core.provenance.ProvenanceMap` records;
* **escape@n** (section 4.3) — a vulnerable function *escapes* if no correct
  candidate appears within the top *n* ranked matches;
* a whole-binary **similarity score** in [0, 1] (used for the BinDiff /
  BinTuner comparison of Figure 9).

Besides the monolithic ``diff()`` entry point, every tool implements a
*partial-result contract* so the evaluation matrices can shard one binary
pair below whole-diff granularity (see :mod:`repro.evaluation.diff_sharding`):
:meth:`BinaryDiffer.shard_units` names the stable per-function shard keys of
a pair, :meth:`BinaryDiffer.partial_diff` scores an arbitrary subset of those
units into a mergeable :class:`PartialDiff`, and
:meth:`BinaryDiffer.merge_partials` deterministically reassembles a
:class:`DiffResult` bit-identical to the serial ``diff()``.  Tools whose
scoring is pairwise-decomposable (one source function's candidate ranking
depends only on per-function features of the two binaries) declare
``shard_granularity = "function"``; tools that match below function
granularity (DeepBinDiff scores *basic blocks*, so a function's ranking
emerges from cross-granularity block votes) fall back to
``shard_granularity = "binary"`` — their only shardable unit is the whole
binary pair.
"""

from __future__ import annotations

import heapq
import os
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..backend.binary import Binary, BinaryFunction
from ..core.provenance import ProvenanceMap
from .index import FeatureIndex, feature_index


RankedCandidates = List[Tuple[str, float]]


def use_indexed_features() -> bool:
    """False when ``REPRO_DIFF_FEATURES=legacy`` selects per-diff extraction.

    The legacy path re-extracts every feature on every ``diff()`` call — it
    is the differential reference for the :class:`~repro.diffing.index.FeatureIndex`
    fast path and must produce bit-identical results.
    """
    return os.environ.get("REPRO_DIFF_FEATURES", "indexed").lower() != "legacy"


@dataclass
class ToolInfo:
    """Table 1 characteristics of a diffing tool."""

    name: str
    granularity: str              # "function" or "basic block"
    symbol_relying: bool
    time_consuming: bool
    memory_consuming: bool
    callgraph_lacking: bool

    def as_row(self) -> Dict[str, str]:
        def yn(flag: bool) -> str:
            return "Y" if flag else "N"
        return {
            "diffing": self.name,
            "granularity": self.granularity,
            "symbol relying": yn(self.symbol_relying),
            "time consuming": yn(self.time_consuming),
            "memory consuming": yn(self.memory_consuming),
            "call-graph lacking": yn(self.callgraph_lacking),
        }


@dataclass
class DiffResult:
    """Outcome of diffing one (original, obfuscated) binary pair."""

    tool: str
    original: str
    obfuscated: str
    matches: Dict[str, RankedCandidates] = field(default_factory=dict)
    similarity_score: float = 0.0

    def top_match(self, function_name: str) -> Optional[str]:
        ranked = self.matches.get(function_name)
        if not ranked:
            return None
        return ranked[0][0]

    def rank_of_correct(self, function_name: str,
                        provenance: ProvenanceMap) -> Optional[int]:
        """1-based rank of the first correct candidate, or None."""
        return rank_of_correct(self.matches.get(function_name, []),
                               function_name, provenance)


def rank_of_correct(ranked: RankedCandidates, function_name: str,
                    provenance: ProvenanceMap) -> Optional[int]:
    """1-based rank of the first correct candidate in one ranked list."""
    for position, (candidate, _score) in enumerate(ranked, start=1):
        if provenance.is_correct_match(function_name, candidate):
            return position
    return None


#: The ranking channel every tool produces: the candidate lists that become
#: ``DiffResult.matches``.  Tools may score extra channels per source
#: function (BinDiff ranks a symbol-free "structural" channel that its
#: whole-binary score is computed from); channels travel inside
#: :class:`PartialDiff` so the merge can finalize the score without
#: re-extracting any feature.
MATCH_CHANNEL = "matches"


@dataclass
class PartialDiff:
    """Mergeable outcome of scoring a subset of one binary pair's functions.

    The unit of the function-granularity diff sharding: ``sources`` names the
    source functions this partial scored (a subset of ``units``, the full
    roster of the pair in rank order), ``matches``/``channels`` hold their
    ranked candidate lists, and the function counts carry the denominators
    the whole-binary score needs — so :meth:`BinaryDiffer.merge_partials`
    can reassemble the exact serial :class:`DiffResult` without ever seeing
    the binaries.  Everything inside is plain strings/floats/ints, so a
    partial pickles across process (and machine) boundaries unchanged.

    Whole-pair partials (the ``shard_granularity == "binary"`` fallback)
    cover every unit at once and carry the final ``similarity_score``
    directly.
    """

    tool: str
    original: str
    obfuscated: str
    units: Tuple[str, ...]
    sources: Tuple[str, ...]
    matches: Dict[str, RankedCandidates]
    channels: Dict[str, Dict[str, RankedCandidates]] = field(default_factory=dict)
    original_functions: int = 0
    obfuscated_functions: int = 0
    similarity_score: Optional[float] = None


class BinaryDiffer:
    """Base class of the five re-implemented diffing tools.

    ``diff()`` resolves the feature source and dispatches to ``_diff``: by
    default each binary's features come from its memoised
    :class:`~repro.diffing.index.FeatureIndex` (extracted once, reused across
    every diff of that binary); setting ``use_index = False`` on an instance
    — or ``REPRO_DIFF_FEATURES=legacy`` in the environment — re-extracts per
    call, which is the differential reference path.
    """

    info: ToolInfo

    #: Tri-state: None follows REPRO_DIFF_FEATURES, True/False force a path.
    use_index: Optional[bool] = None

    #: "function" when :meth:`partial_diff` can score an arbitrary subset of
    #: source functions independently; "binary" when the tool only scores
    #: whole pairs (the sharding fallback).
    shard_granularity: str = "function"

    @property
    def name(self) -> str:
        return self.info.name

    def diff(self, original: Binary, obfuscated: Binary) -> DiffResult:
        return self._diff(original, obfuscated,
                          *self._resolve_indexes(original, obfuscated))

    def _resolve_indexes(self, original: Binary, obfuscated: Binary
                         ) -> Tuple[Optional[FeatureIndex],
                                    Optional[FeatureIndex]]:
        """The feature source ``diff()`` *and* ``partial_diff()`` score from.

        One resolution point keeps the sharded path on exactly the feature
        path of the serial reference (instance ``use_index`` tri-state, then
        ``REPRO_DIFF_FEATURES``).
        """
        indexed = self.use_index if self.use_index is not None \
            else use_indexed_features()
        if indexed:
            return feature_index(original), feature_index(obfuscated)
        return None, None

    def _diff(self, original: Binary, obfuscated: Binary,
              original_index: Optional[FeatureIndex],
              obfuscated_index: Optional[FeatureIndex]) -> DiffResult:
        """Default whole-pair diff of the pairwise-decomposable tools.

        Ranks every channel of :meth:`_pair_scorers` for every source
        function and finalizes the whole-binary score — exactly the merged
        outcome of :meth:`partial_diff` over any partition of the sources,
        which is what makes the function-granularity sharding bit-identical
        by construction.  Tools that score below function granularity
        (DeepBinDiff) override this wholesale.
        """
        scorers = self._pair_scorers(original, obfuscated,
                                     original_index, obfuscated_index)
        matches = self.rank_by_similarity(original, obfuscated,
                                          scorers[MATCH_CHANNEL])
        channels = {name: self.rank_by_similarity(original, obfuscated, fn)
                    for name, fn in scorers.items() if name != MATCH_CHANNEL}
        score = self._finalize_score(matches, channels,
                                     len(original.functions),
                                     len(obfuscated.functions))
        return DiffResult(tool=self.name, original=original.name,
                          obfuscated=obfuscated.name, matches=matches,
                          similarity_score=score)

    # -- the partial-result / sharding contract ------------------------------------

    def cache_key(self) -> Tuple:
        """Stable, value-based key of this tool's configuration.

        Two instances with the same knobs produce identical keys across
        processes and disk round trips (the ``diff`` store kind addresses
        partial results under it); differently-tuned instances never
        collide.  Concrete tools override with their explicit knob tuple.
        """
        config = tuple(sorted(
            (name, value) for name, value in vars(self).items()
            if not name.startswith("_")
            and isinstance(value, (str, bytes, int, float, bool, type(None)))))
        return (type(self).__name__.lower(), config)

    def shard_units(self, original: Binary) -> List[str]:
        """The stable per-function shard keys of a pair, in rank order.

        One unit per source (original) function; the order is the order
        ``diff()`` ranks them in, which is what the merge layer reassembles.
        """
        return [f.name for f in original.functions]

    def _pair_scorers(self, original: Binary, obfuscated: Binary,
                      original_index: Optional[FeatureIndex],
                      obfuscated_index: Optional[FeatureIndex]
                      ) -> Dict[str, Callable[[BinaryFunction, BinaryFunction], float]]:
        """Per-channel similarity callables over (source, target) pairs.

        Must contain :data:`MATCH_CHANNEL`; extra channels are ranked
        alongside and fed to :meth:`_finalize_score`.  Building the scorers
        is where feature extraction happens (through the indexes when
        given), so one call amortises across every pair a shard scores.
        """
        raise NotImplementedError

    def _finalize_score(self, matches: Dict[str, RankedCandidates],
                        channels: Dict[str, Dict[str, RankedCandidates]],
                        original_functions: int,
                        obfuscated_functions: int) -> float:
        """The whole-binary similarity from complete ranking channels.

        Runs identically over freshly-ranked channels (``_diff``) and over
        merged partial channels (``merge_partials``) — the score is a pure
        function of the assembled rankings plus the function counts.
        """
        return self.assignment_score(matches, original_functions,
                                     obfuscated_functions)

    def partial_diff(self, original: Binary, obfuscated: Binary,
                     sources: Optional[Sequence[str]] = None) -> PartialDiff:
        """Score ``sources`` (default: every unit) into a mergeable partial.

        Function-granularity tools rank exactly the requested source
        functions against every obfuscated function — the shard's pair set
        — through the same scorers ``diff()`` uses.  Binary-granularity
        tools ignore ``sources`` and wrap a whole ``diff()`` (their partial
        covers every unit and carries the final score).
        """
        units = tuple(self.shard_units(original))
        if self.shard_granularity != "function":
            result = self.diff(original, obfuscated)
            return PartialDiff(
                tool=self.name, original=original.name,
                obfuscated=obfuscated.name, units=units, sources=units,
                matches=result.matches,
                original_functions=len(original.functions),
                obfuscated_functions=len(obfuscated.functions),
                similarity_score=result.similarity_score)
        sources = units if sources is None else tuple(sources)
        unknown = sorted(set(sources) - set(units))
        if unknown:
            raise ValueError(
                f"{self.name}: unknown source functions {unknown}")
        scorers = self._pair_scorers(
            original, obfuscated, *self._resolve_indexes(original, obfuscated))
        by_name = {f.name: f for f in original.functions}
        targets = obfuscated.functions
        matches: Dict[str, RankedCandidates] = {}
        channels: Dict[str, Dict[str, RankedCandidates]] = {
            name: {} for name in scorers if name != MATCH_CHANNEL}
        for source_name in sources:
            source = by_name[source_name]
            matches[source_name] = self.rank_candidates(
                source, targets, scorers[MATCH_CHANNEL])
            for channel_name in channels:
                channels[channel_name][source_name] = self.rank_candidates(
                    source, targets, scorers[channel_name])
        return PartialDiff(
            tool=self.name, original=original.name, obfuscated=obfuscated.name,
            units=units, sources=sources, matches=matches, channels=channels,
            original_functions=len(original.functions),
            obfuscated_functions=len(obfuscated.functions))

    def merge_partials(self, partials: Sequence[PartialDiff]) -> DiffResult:
        """Deterministically reassemble a serial-identical :class:`DiffResult`.

        The partials must cover every unit of the pair exactly once (any
        partition, in any order — the unit roster fixes the assembly).  A
        single whole-pair partial short-circuits with its carried score;
        otherwise the score is finalized from the merged channels, exactly
        as ``diff()`` finalizes it from fresh ones.
        """
        if not partials:
            raise ValueError("merge_partials needs at least one partial")
        first = partials[0]
        identity = (first.tool, first.original, first.obfuscated, first.units)
        for partial in partials[1:]:
            other = (partial.tool, partial.original, partial.obfuscated,
                     partial.units)
            if other != identity:
                raise ValueError(
                    f"cannot merge partials of different pairs: "
                    f"{other!r} vs {identity!r}")
        by_source: Dict[str, PartialDiff] = {}
        for partial in partials:
            for source in partial.sources:
                if source in by_source:
                    raise ValueError(f"unit {source!r} scored by two partials")
                by_source[source] = partial
        missing = [unit for unit in first.units if unit not in by_source]
        if missing:
            raise ValueError(f"partials cover no score for units {missing}")
        matches = {unit: by_source[unit].matches[unit] for unit in first.units}
        if len(partials) == 1 and first.similarity_score is not None:
            return DiffResult(tool=first.tool, original=first.original,
                              obfuscated=first.obfuscated, matches=matches,
                              similarity_score=first.similarity_score)
        channel_names = sorted({name for partial in partials
                                for name in partial.channels})
        channels = {name: {unit: by_source[unit].channels[name][unit]
                           for unit in first.units}
                    for name in channel_names}
        score = self._finalize_score(matches, channels,
                                     first.original_functions,
                                     first.obfuscated_functions)
        return DiffResult(tool=first.tool, original=first.original,
                          obfuscated=first.obfuscated, matches=matches,
                          similarity_score=score)

    # -- helpers shared by the concrete tools --------------------------------------

    @staticmethod
    def rank_candidates(source: BinaryFunction,
                        targets: Sequence[BinaryFunction],
                        similarity, max_candidates: int = 50
                        ) -> RankedCandidates:
        """One source function's ranked candidate list.

        Top-k selection via a heap instead of a full sort; ``nsmallest`` on
        the ``(-score, name)`` key is documented to equal
        ``sorted(...)[:k]``, so the candidate lists are bit-identical to the
        previous full-sort implementation — and identical no matter which
        shard ranks the source.
        """
        key = lambda pair: (-pair[1], pair[0])  # noqa: E731
        scored = [(target.name, similarity(source, target))
                  for target in targets]
        return heapq.nsmallest(max_candidates, scored, key=key)

    @staticmethod
    def rank_by_similarity(original: Binary, obfuscated: Binary,
                           similarity, max_candidates: int = 50
                           ) -> Dict[str, RankedCandidates]:
        """Rank every obfuscated function for every original function."""
        targets = obfuscated.functions
        return {source.name: BinaryDiffer.rank_candidates(
                    source, targets, similarity, max_candidates)
                for source in original.functions}

    @staticmethod
    def assignment_score(matches: Dict[str, RankedCandidates],
                         original_functions: int,
                         obfuscated_functions: int) -> float:
        """Greedy one-to-one assignment score, normalised to [0, 1].

        Takes the function counts instead of the binaries so the merge
        layer can finalize scores from partial results alone.
        """
        pairs: List[Tuple[float, str, str]] = []
        for source_name, ranked in matches.items():
            for target_name, score in ranked:
                pairs.append((score, source_name, target_name))
        pairs.sort(key=lambda item: (-item[0], item[1], item[2]))
        used_sources: set = set()
        used_targets: set = set()
        total = 0.0
        for score, source_name, target_name in pairs:
            if source_name in used_sources or target_name in used_targets:
                continue
            used_sources.add(source_name)
            used_targets.add(target_name)
            total += max(0.0, min(1.0, score))
        denominator = max(original_functions, obfuscated_functions, 1)
        return total / denominator

    @staticmethod
    def whole_binary_score(matches: Dict[str, RankedCandidates],
                           original: Binary, obfuscated: Binary) -> float:
        """Greedy one-to-one assignment score against the two binaries."""
        return BinaryDiffer.assignment_score(matches, len(original.functions),
                                             len(obfuscated.functions))


# -- evaluation metrics ---------------------------------------------------------------------


def precision_at_1(result: DiffResult, provenance: ProvenanceMap,
                   function_names: Optional[Sequence[str]] = None) -> float:
    """Fraction of original functions whose top match is correct."""
    names = list(function_names) if function_names is not None \
        else sorted(result.matches)
    if not names:
        return 0.0
    correct = 0
    for name in names:
        top = result.top_match(name)
        if top is not None and provenance.is_correct_match(name, top):
            correct += 1
    return correct / len(names)


def escape_ratio(results: Sequence[Tuple[DiffResult, ProvenanceMap]],
                 vulnerable_functions: Sequence[str], n: int) -> float:
    """Fraction of vulnerable functions not correctly matched within the top n.

    ``results`` pairs each :class:`DiffResult` with the provenance of its
    obfuscated binary.  (An earlier version took a dict keyed on
    ``id(result)`` — fragile once results are garbage-collected or shipped
    across process boundaries, where ids are recycled or rewritten.)
    """
    total = 0
    escaped = 0
    for result, provenance in results:
        for function_name in vulnerable_functions:
            if function_name not in result.matches:
                continue
            total += 1
            rank = result.rank_of_correct(function_name, provenance)
            if rank is None or rank > n:
                escaped += 1
    if total == 0:
        return 0.0
    return escaped / total


def escape_at_n(result: DiffResult, provenance: ProvenanceMap,
                function_name: str, n: int) -> bool:
    """True if ``function_name`` has no correct match within the top ``n``."""
    rank = result.rank_of_correct(function_name, provenance)
    return rank is None or rank > n
