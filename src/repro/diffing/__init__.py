"""Re-implementations of the five binary diffing tools used in the evaluation."""

from typing import Dict, List

from .base import (MATCH_CHANNEL, BinaryDiffer, DiffResult, PartialDiff,
                   ToolInfo, escape_at_n, escape_ratio, precision_at_1,
                   rank_of_correct, use_indexed_features)
from .index import (FeatureIndex, clear_index_cache, feature_index,
                    index_cache_size)
from .bindiff import BinDiff
from .vulseeker import VulSeeker
from .asm2vec import Asm2Vec
from .safe import Safe
from .deepbindiff import DeepBinDiff


def all_differs() -> List[BinaryDiffer]:
    """The confrontation targets of the paper, in Table 1 order."""
    return [BinDiff(), VulSeeker(), Asm2Vec(), Safe(), DeepBinDiff()]


def differ_by_name(name: str) -> BinaryDiffer:
    for differ in all_differs():
        if differ.name.lower() == name.lower():
            return differ
    raise KeyError(f"unknown diffing tool {name!r}")


def tool_table() -> List[Dict[str, str]]:
    """Table 1: characteristics of the chosen diffing tools."""
    return [differ.info.as_row() for differ in all_differs()]


__all__ = [
    "MATCH_CHANNEL", "BinaryDiffer", "DiffResult", "PartialDiff", "ToolInfo",
    "escape_at_n", "escape_ratio", "precision_at_1", "rank_of_correct",
    "use_indexed_features", "FeatureIndex",
    "clear_index_cache", "feature_index", "index_cache_size",
    "BinDiff", "VulSeeker", "Asm2Vec", "Safe", "DeepBinDiff",
    "all_differs", "differ_by_name", "tool_table",
]
