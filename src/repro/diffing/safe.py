"""A SAFE-style differ.

SAFE (Massarelli et al., DIMVA 2019) embeds the *linear* instruction sequence
of a function with a self-attentive recurrent network.  The re-implementation
keeps the sequence view: instruction tokens are embedded (hashed projections),
combined with their local bigram context, and weighted by a smooth positional
attention profile that emphasises the middle of the function over the
prologue/epilogue boilerplate.  No CFG, call-graph or symbol information is
used (Table 1).

Per-function embeddings are pre-normalized and memoised on each binary's
:class:`~repro.diffing.index.FeatureIndex`; without an index every embedding
is re-extracted per diff — the legacy reference path.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional

from ..backend.binary import Binary, BinaryFunction
from .base import MATCH_CHANNEL, BinaryDiffer, ToolInfo
from .features import (EMBEDDING_DIM, NormalizedVector, add_scaled,
                       cached_token_vector, instruction_bag,
                       vector_similarity)
from .index import FeatureIndex


class Safe(BinaryDiffer):
    info = ToolInfo(name="Safe", granularity="function",
                    symbol_relying=False, time_consuming=False,
                    memory_consuming=False, callgraph_lacking=True)

    def __init__(self, dim: int = EMBEDDING_DIM, max_instructions: int = 250):
        self.dim = dim
        self.max_instructions = max_instructions

    def _attention_weight(self, position: int, length: int) -> float:
        if length <= 1:
            return 1.0
        # a raised-cosine profile: prologue/epilogue get lower weight
        phase = position / (length - 1)
        return 0.5 + 0.5 * math.sin(math.pi * phase)

    def _instruction_vectors(self, function: BinaryFunction,
                             index: Optional[FeatureIndex]) -> List[List[float]]:
        """One combined vector per instruction: token bag + 0.5 × bigram.

        The attention weight scales whole instructions, so each instruction's
        content can be pre-combined once (and cached on the index).  Only the
        first ``max_instructions`` are embedded — like the original
        sequence-truncating implementation — so the truncation bound is part
        of the memo key.
        """
        def build() -> List[List[float]]:
            vectors: List[List[float]] = []
            previous_opcode = "<s>"
            for inst in function.instructions()[:self.max_instructions]:
                bag = instruction_bag(inst, self.dim)
                bigram = f"{previous_opcode}->{inst.opcode}"
                bigram_vector = cached_token_vector(bigram, self.dim)
                vectors.append([b + 0.5 * g
                                for b, g in zip(bag, bigram_vector)])
                previous_opcode = inst.opcode
            return vectors

        if index is not None:
            return index.memo(("safe_inst_vectors", function.name, self.dim,
                               self.max_instructions), build)
        return build()

    def _function_embedding(self, function: BinaryFunction,
                            index: Optional[FeatureIndex]) -> List[float]:
        vectors = self._instruction_vectors(function, index)
        embedding = [0.0] * self.dim
        length = len(vectors)
        for position, combined in enumerate(vectors):
            add_scaled(embedding, combined,
                       self._attention_weight(position, length))
        return embedding

    def _embeddings(self, binary: Binary,
                    index: Optional[FeatureIndex]) -> Dict[str, NormalizedVector]:
        if index is not None:
            return index.function_embeddings(
                ("safe", self.dim, self.max_instructions),
                lambda f: self._function_embedding(f, index))
        return {f.name: NormalizedVector(self._function_embedding(f, None))
                for f in binary.functions}

    def cache_key(self) -> tuple:
        return ("safe", self.dim, self.max_instructions)

    def _pair_scorers(self, original: Binary, obfuscated: Binary,
                      original_index: Optional[FeatureIndex],
                      obfuscated_index: Optional[FeatureIndex]):
        original_embeddings = self._embeddings(original, original_index)
        obfuscated_embeddings = self._embeddings(obfuscated, obfuscated_index)

        def similarity(a: BinaryFunction, b: BinaryFunction) -> float:
            return vector_similarity(original_embeddings[a.name],
                                     obfuscated_embeddings[b.name])

        return {MATCH_CHANNEL: similarity}
