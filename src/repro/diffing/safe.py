"""A SAFE-style differ.

SAFE (Massarelli et al., DIMVA 2019) embeds the *linear* instruction sequence
of a function with a self-attentive recurrent network.  The re-implementation
keeps the sequence view: instruction tokens are embedded (hashed projections),
combined with their local bigram context, and weighted by a smooth positional
attention profile that emphasises the middle of the function over the
prologue/epilogue boilerplate.  No CFG, call-graph or symbol information is
used (Table 1).
"""

from __future__ import annotations

import math
from typing import Dict, List

from ..backend.binary import Binary, BinaryFunction
from .base import BinaryDiffer, DiffResult, ToolInfo
from .features import (EMBEDDING_DIM, add_scaled, cached_token_vector,
                       instruction_tokens, normalised_similarity)


class Safe(BinaryDiffer):
    info = ToolInfo(name="Safe", granularity="function",
                    symbol_relying=False, time_consuming=False,
                    memory_consuming=False, callgraph_lacking=True)

    def __init__(self, dim: int = EMBEDDING_DIM, max_instructions: int = 250):
        self.dim = dim
        self.max_instructions = max_instructions

    def _attention_weight(self, position: int, length: int) -> float:
        if length <= 1:
            return 1.0
        # a raised-cosine profile: prologue/epilogue get lower weight
        phase = position / (length - 1)
        return 0.5 + 0.5 * math.sin(math.pi * phase)

    def _function_embedding(self, function: BinaryFunction) -> List[float]:
        instructions = function.instructions()[:self.max_instructions]
        embedding = [0.0] * self.dim
        length = len(instructions)
        previous_opcode = "<s>"
        for position, inst in enumerate(instructions):
            weight = self._attention_weight(position, length)
            for token in instruction_tokens(inst):
                add_scaled(embedding, cached_token_vector(token, self.dim), weight)
            bigram = f"{previous_opcode}->{inst.opcode}"
            add_scaled(embedding, cached_token_vector(bigram, self.dim), 0.5 * weight)
            previous_opcode = inst.opcode
        return embedding

    def diff(self, original: Binary, obfuscated: Binary) -> DiffResult:
        original_embeddings = {f.name: self._function_embedding(f)
                               for f in original.functions}
        obfuscated_embeddings = {f.name: self._function_embedding(f)
                                 for f in obfuscated.functions}

        def similarity(a: BinaryFunction, b: BinaryFunction) -> float:
            return normalised_similarity(original_embeddings[a.name],
                                         obfuscated_embeddings[b.name])

        matches = self.rank_by_similarity(original, obfuscated, similarity)
        score = self.whole_binary_score(matches, original, obfuscated)
        return DiffResult(tool=self.name, original=original.name,
                          obfuscated=obfuscated.name, matches=matches,
                          similarity_score=score)
