"""Per-binary feature index: extract once, diff many times.

The evaluation matrices diff the same binaries repeatedly — the baseline
binary of each program is diffed once per (obfuscation label × tool), so the
seed implementation re-extracted its token streams, embeddings and CFG
features dozens of times.  :class:`FeatureIndex` computes each feature family
once per :class:`~repro.backend.binary.Binary` and memoises it:

* shared primitives (token streams, bag-of-token block embeddings, numeric
  block/function features, CFG-propagated vectors, call-graph edges) live in
  named accessors so several tools reuse one extraction — Asm2Vec and
  DeepBinDiff, for example, share the per-block bag embeddings;
* tool-specific derived features (final per-function embeddings, keyed by the
  tool's configuration) go through :meth:`FeatureIndex.memo`.

Indexes are memoised per binary *object* via :func:`feature_index`: the cache
is keyed on ``id(binary)`` and validated by a weak reference, so a recycled
id can never serve stale features, and dropping the binary drops its index.
Builds are deterministic, which is what makes the features pure functions of
the binary; the pre-index extraction paths are kept in each tool as the
differential reference (``REPRO_DIFF_FEATURES=legacy``) and are asserted
bit-identical by ``tests/test_feature_index.py``.
"""

from __future__ import annotations

import weakref
from typing import Callable, Dict, List, Set, Tuple, TypeVar

from ..backend.binary import Binary, BinaryFunction
from .features import (NormalizedVector, block_numeric_features, embed_block,
                       function_numeric_features, propagate_over_cfg)

T = TypeVar("T")


class FeatureIndex:
    """Lazily-computed, memoised diffing features of one binary.

    The binary is held through a weak reference: the module-level cache keeps
    indexes alive, so a strong reference here would pin every indexed binary
    in memory forever.  Dropping the binary evicts its cache entry (see
    :func:`feature_index`), which frees the index and its features with it.
    """

    __slots__ = ("_binary_ref", "_memo")

    def __init__(self, binary: Binary):
        self._binary_ref = weakref.ref(binary)
        self._memo: Dict[object, object] = {}

    @property
    def binary(self) -> Binary:
        binary = self._binary_ref()
        if binary is None:  # pragma: no cover - caller always holds the binary
            raise ReferenceError("the indexed binary has been collected")
        return binary

    # -- generic memoisation -------------------------------------------------------

    def memo(self, key: object, builder: Callable[[], T]) -> T:
        """Return the cached value for ``key``, building it on first use.

        Tools key their derived feature maps on their configuration (e.g.
        ``("asm2vec", walks, walk_length, dim)``) so two differently-tuned
        instances of the same tool never share final embeddings.
        """
        try:
            return self._memo[key]  # type: ignore[return-value]
        except KeyError:
            value = builder()
            self._memo[key] = value
            return value

    # -- shared primitives ---------------------------------------------------------

    def block_bag_embeddings(self, function: BinaryFunction,
                             dim: int) -> Dict[str, List[float]]:
        """Bag-of-token embedding of every block (shared Asm2Vec/DeepBinDiff)."""
        def build() -> Dict[str, List[float]]:
            return {block.label: embed_block(block, dim)
                    for block in function.blocks}
        return self.memo(("block_bags", function.name, dim), build)

    def numeric_block_features(
            self, function: BinaryFunction) -> Dict[str, List[float]]:
        """VulSeeker-style numeric features of every block, keyed by label."""
        def build() -> Dict[str, List[float]]:
            return {block.label: block_numeric_features(block)
                    for block in function.blocks}
        return self.memo(("block_numeric", function.name), build)

    def propagated_numeric_features(self, function: BinaryFunction,
                                    iterations: int) -> Dict[str, List[float]]:
        """Numeric block features after CFG propagation (VulSeeker)."""
        def build() -> Dict[str, List[float]]:
            raw = self.numeric_block_features(function)
            if not raw:
                return {}
            return propagate_over_cfg(function, raw, iterations=iterations)
        return self.memo(("propagated_numeric", function.name, iterations), build)

    def structural_features(self) -> Dict[str, List[float]]:
        """BinDiff's function-level statistics for every function."""
        def build() -> Dict[str, List[float]]:
            return {f.name: function_numeric_features(f)
                    for f in self.binary.functions}
        return self.memo("structural", build)

    def callees(self) -> Dict[str, Set[str]]:
        """Call-graph successors of every function (BinDiff's neighbourhood)."""
        def build() -> Dict[str, Set[str]]:
            return {f.name: self.binary.callees_of(f.name)
                    for f in self.binary.functions}
        return self.memo("callees", build)

    # -- payload export / adoption (artifact-store persistence) --------------------

    def export_payload(self) -> Dict[object, object]:
        """A picklable snapshot of every memoised feature of this index.

        Feature values are plain containers of floats/strings (or
        :class:`NormalizedVector`, which pickles exactly), and memo keys are
        value tuples, so the snapshot round-trips through
        :class:`~repro.store.artifact_store.ArtifactStore` unchanged.  The
        snapshot shares the feature objects with the live index — treat it
        as immutable, like every stored artifact.
        """
        return dict(self._memo)

    def adopt_payload(self, payload: Dict[object, object]) -> int:
        """Warm-start this index from an exported snapshot.

        Features are pure functions of the binary, so adopting a snapshot
        keyed to the *same build configuration* can never change a result —
        it only skips re-extraction.  Entries already computed locally are
        kept (they are identical by construction); returns the number of
        entries actually adopted.
        """
        adopted = 0
        for key, value in payload.items():
            if key not in self._memo:
                self._memo[key] = value
                adopted += 1
        return adopted

    def function_embeddings(self, key: object,
                            embed: Callable[[BinaryFunction], List[float]]
                            ) -> Dict[str, NormalizedVector]:
        """Memoised, pre-normalized per-function embedding map.

        ``embed`` produces the raw embedding of one function; the map is the
        common final shape of the vector-based tools (Asm2Vec, SAFE,
        VulSeeker), normalized once so ranking is pure dot products.
        """
        def build() -> Dict[str, NormalizedVector]:
            return {f.name: NormalizedVector(embed(f))
                    for f in self.binary.functions}
        return self.memo(key, build)


# -- per-binary memoisation ---------------------------------------------------------

#: id(binary) -> (weakref to the binary, its index).  The weak reference both
#: validates the id (recycled ids of collected binaries can never alias) and
#: evicts the entry when the binary is garbage-collected.
_INDEX_CACHE: Dict[int, Tuple[weakref.ref, FeatureIndex]] = {}


def feature_index(binary: Binary) -> FeatureIndex:
    """The memoised :class:`FeatureIndex` of ``binary`` (one per object)."""
    key = id(binary)
    entry = _INDEX_CACHE.get(key)
    if entry is not None and entry[0]() is binary:
        return entry[1]
    index = FeatureIndex(binary)
    ref = weakref.ref(binary, lambda _ref, _key=key: _INDEX_CACHE.pop(_key, None))
    _INDEX_CACHE[key] = (ref, index)
    return index


def clear_index_cache() -> None:
    """Drop every memoised index (benchmarks use this to time cold runs)."""
    _INDEX_CACHE.clear()


def index_cache_size() -> int:
    return len(_INDEX_CACHE)
