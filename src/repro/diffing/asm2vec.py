"""An Asm2Vec-style differ.

Asm2Vec (Ding et al., S&P 2019) learns a PV-DM representation of a function
from token sequences sampled by random walks over its CFG; clone search ranks
repository functions by cosine similarity of the embeddings.  The
re-implementation keeps the two ingredients that matter for this evaluation —
token-level lexical features (opcodes + operand shapes) gathered along CFG
walks, aggregated into a per-function vector — while replacing the trained
projection with deterministic hashed token vectors.  The tool uses neither
symbols nor the call graph (Table 1).
"""

from __future__ import annotations

import random
from typing import Dict, List

from ..backend.binary import Binary, BinaryFunction
from ..utils import stable_hash
from .base import BinaryDiffer, DiffResult, ToolInfo
from .features import (EMBEDDING_DIM, add_scaled, block_tokens, embed_tokens,
                       normalised_similarity)


class Asm2Vec(BinaryDiffer):
    info = ToolInfo(name="Asm2Vec", granularity="function",
                    symbol_relying=False, time_consuming=False,
                    memory_consuming=False, callgraph_lacking=True)

    def __init__(self, walks: int = 4, walk_length: int = 8, dim: int = EMBEDDING_DIM):
        self.walks = walks
        self.walk_length = walk_length
        self.dim = dim

    def _random_walk_tokens(self, function: BinaryFunction,
                            rng: random.Random) -> List[str]:
        blocks = function.block_map()
        if not function.blocks:
            return []
        tokens: List[str] = []
        current = function.blocks[0].label
        for _ in range(self.walk_length):
            block = blocks.get(current)
            if block is None:
                break
            tokens.extend(block_tokens(block))
            if not block.successors:
                break
            current = rng.choice(block.successors)
        return tokens

    def _function_embedding(self, function: BinaryFunction) -> List[float]:
        rng = random.Random(stable_hash("asm2vec", function.name,
                                        function.instruction_count))
        embedding = [0.0] * self.dim
        # lexical term: every block contributes once
        for block in function.blocks:
            add_scaled(embedding, embed_tokens(block_tokens(block), self.dim), 1.0)
        # random-walk term: emphasises tokens on frequently-walked paths
        for _ in range(self.walks):
            walk = self._random_walk_tokens(function, rng)
            add_scaled(embedding, embed_tokens(walk, self.dim), 0.5)
        return embedding

    def diff(self, original: Binary, obfuscated: Binary) -> DiffResult:
        original_embeddings = {f.name: self._function_embedding(f)
                               for f in original.functions}
        obfuscated_embeddings = {f.name: self._function_embedding(f)
                                 for f in obfuscated.functions}

        def similarity(a: BinaryFunction, b: BinaryFunction) -> float:
            return normalised_similarity(original_embeddings[a.name],
                                         obfuscated_embeddings[b.name])

        matches = self.rank_by_similarity(original, obfuscated, similarity)
        score = self.whole_binary_score(matches, original, obfuscated)
        return DiffResult(tool=self.name, original=original.name,
                          obfuscated=obfuscated.name, matches=matches,
                          similarity_score=score)
