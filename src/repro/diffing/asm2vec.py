"""An Asm2Vec-style differ.

Asm2Vec (Ding et al., S&P 2019) learns a PV-DM representation of a function
from token sequences sampled by random walks over its CFG; clone search ranks
repository functions by cosine similarity of the embeddings.  The
re-implementation keeps the two ingredients that matter for this evaluation —
token-level lexical features (opcodes + operand shapes) gathered along CFG
walks, aggregated into a per-function vector — while replacing the trained
projection with deterministic hashed token vectors.  The tool uses neither
symbols nor the call graph (Table 1).

Per-function embeddings are pre-normalized and memoised on each binary's
:class:`~repro.diffing.index.FeatureIndex` (the per-block bag embeddings are
shared with DeepBinDiff); without an index every embedding is re-extracted
per diff — the legacy reference path.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional

from ..backend.binary import Binary, BinaryFunction
from ..utils import stable_hash
from .base import MATCH_CHANNEL, BinaryDiffer, ToolInfo
from .features import (EMBEDDING_DIM, NormalizedVector, add_scaled,
                       embed_block, vector_similarity)
from .index import FeatureIndex


class Asm2Vec(BinaryDiffer):
    info = ToolInfo(name="Asm2Vec", granularity="function",
                    symbol_relying=False, time_consuming=False,
                    memory_consuming=False, callgraph_lacking=True)

    def __init__(self, walks: int = 4, walk_length: int = 8, dim: int = EMBEDDING_DIM):
        self.walks = walks
        self.walk_length = walk_length
        self.dim = dim

    def _random_walk_labels(self, function: BinaryFunction,
                            rng: random.Random) -> List[str]:
        blocks = function.block_map()
        if not function.blocks:
            return []
        labels: List[str] = []
        current = function.blocks[0].label
        for _ in range(self.walk_length):
            block = blocks.get(current)
            if block is None:
                break
            labels.append(block.label)
            if not block.successors:
                break
            current = rng.choice(block.successors)
        return labels

    def _function_embedding(self, function: BinaryFunction,
                            index: Optional[FeatureIndex]) -> List[float]:
        if index is not None:
            bags = index.block_bag_embeddings(function, self.dim)
        else:
            bags = {block.label: embed_block(block, self.dim)
                    for block in function.blocks}
        rng = random.Random(stable_hash("asm2vec", function.name,
                                        function.instruction_count))
        embedding = [0.0] * self.dim
        # lexical term: every block contributes once
        for block in function.blocks:
            add_scaled(embedding, bags[block.label], 1.0)
        # random-walk term: emphasises tokens on frequently-walked paths
        # (accumulated from the per-block bags rather than re-embedding the
        # walked token stream — the walked blocks' tokens all land at 0.5)
        for _ in range(self.walks):
            for label in self._random_walk_labels(function, rng):
                add_scaled(embedding, bags[label], 0.5)
        return embedding

    def _embeddings(self, binary: Binary,
                    index: Optional[FeatureIndex]) -> Dict[str, NormalizedVector]:
        if index is not None:
            return index.function_embeddings(
                ("asm2vec", self.walks, self.walk_length, self.dim),
                lambda f: self._function_embedding(f, index))
        return {f.name: NormalizedVector(self._function_embedding(f, None))
                for f in binary.functions}

    def cache_key(self) -> tuple:
        return ("asm2vec", self.walks, self.walk_length, self.dim)

    def _pair_scorers(self, original: Binary, obfuscated: Binary,
                      original_index: Optional[FeatureIndex],
                      obfuscated_index: Optional[FeatureIndex]):
        original_embeddings = self._embeddings(original, original_index)
        obfuscated_embeddings = self._embeddings(obfuscated, obfuscated_index)

        def similarity(a: BinaryFunction, b: BinaryFunction) -> float:
            return vector_similarity(original_embeddings[a.name],
                                     obfuscated_embeddings[b.name])

        return {MATCH_CHANNEL: similarity}
