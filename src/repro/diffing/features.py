"""Feature extraction shared by the binary-diffing re-implementations.

The five tools of the paper differ mainly in *which* features they extract
(Table 1): function-level statistics and names (BinDiff), per-block numeric
semantic features propagated over the CFG (VulSeeker), token embeddings over
random-walk/linear instruction sequences (Asm2Vec, SAFE) and per-block
embeddings with program-wide context (DeepBinDiff).  This module provides the
shared building blocks: token streams, hashed embedding vectors (deterministic
random projections — no training required), per-block numeric features and
neighbourhood aggregation over the CFG.
"""

from __future__ import annotations

import math
from array import array
from operator import add, mul
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ..backend.binary import Binary, BinaryFunction
from ..backend.isa import MachineBlock, MachineInstruction, instruction_category
from ..utils import stable_hash

EMBEDDING_DIM = 64


# -- token streams -----------------------------------------------------------------------


def operand_shape(operand: str) -> str:
    """Normalise an operand to its shape (register / immediate / memory / label)."""
    if operand.startswith("$"):
        return "imm"
    if operand.startswith("["):
        return "mem"
    if operand.startswith("xmm"):
        return "freg"
    return "reg"


def instruction_tokens(inst: MachineInstruction) -> List[str]:
    """Tokens for one instruction.

    The semantic tools (Asm2Vec, SAFE, DeepBinDiff) are known to be robust
    against local instruction substitution — an ``add`` rewritten as two
    ``sub``s still embeds close to the original.  To model that robustness the
    token stream is dominated by the instruction *category* and operand
    shapes; the raw opcode contributes a single lower-signal token.
    """
    category = instruction_category(inst.opcode)
    tokens = [category, f"op.{inst.opcode}"]
    tokens.extend(f"{category}.{operand_shape(op)}" for op in inst.operands)
    if inst.call_target is not None:
        tokens.append("call.direct")
    return tokens


def block_tokens(block: MachineBlock) -> List[str]:
    tokens: List[str] = []
    for inst in block.instructions:
        tokens.extend(instruction_tokens(inst))
    return tokens


def function_tokens(function: BinaryFunction) -> List[str]:
    tokens: List[str] = []
    for block in function.blocks:
        tokens.extend(block_tokens(block))
    return tokens


# -- hashed embeddings --------------------------------------------------------------------


def token_vector(token: str, dim: int = EMBEDDING_DIM) -> List[float]:
    """A deterministic pseudo-random unit-ish vector for a token."""
    vector = []
    for i in range(dim):
        h = stable_hash("tok", token, i, bits=16)
        vector.append((h / float(1 << 16)) * 2.0 - 1.0)
    return vector


_TOKEN_CACHE: Dict[Tuple[str, int], List[float]] = {}


def cached_token_vector(token: str, dim: int = EMBEDDING_DIM) -> List[float]:
    key = (token, dim)
    cached = _TOKEN_CACHE.get(key)
    if cached is None:
        cached = token_vector(token, dim)
        _TOKEN_CACHE[key] = cached
    return cached


def embed_tokens(tokens: Sequence[str], dim: int = EMBEDDING_DIM,
                 weights: Optional[Sequence[float]] = None) -> List[float]:
    """Weighted bag-of-tokens embedding.

    Summed column-wise over the transposed token vectors so the per-component
    accumulation runs inside ``sum()`` rather than a Python-level loop; the
    additions happen in the same (token) order, so the result is bit-identical
    to naive accumulation into a zero vector.
    """
    if not tokens:
        return [0.0] * dim
    if weights is None:
        vectors = [cached_token_vector(token, dim) for token in tokens]
    else:
        vectors = [[weight * x for x in cached_token_vector(token, dim)]
                   for weight, token in zip(weights, tokens)]
    return [sum(components) for components in zip(*vectors)]


def add_scaled(target: List[float], source: Sequence[float], scale: float) -> None:
    if len(target) != len(source):
        # zip/map would silently stop at the shorter operand and shrink the
        # target; a dimension mismatch must fail loudly instead
        raise ValueError(f"dimension mismatch: {len(target)} vs {len(source)}")
    if scale == 1.0:
        # t + 1.0 * s == t + s bitwise; map(add, ...) runs at C speed
        target[:] = map(add, target, source)
    else:
        target[:] = [t + scale * s for t, s in zip(target, source)]


_INSTRUCTION_BAG_CACHE: Dict[Tuple, Tuple[float, ...]] = {}


def instruction_bag(inst: MachineInstruction,
                    dim: int = EMBEDDING_DIM) -> Tuple[float, ...]:
    """The bag-of-tokens embedding of one instruction, cached by shape.

    :func:`instruction_tokens` depends only on the opcode, the operand
    *shapes* and whether the instruction is a direct call — so the cache is
    keyed on shapes, not operand text ("$5" and "$7" share one entry), and a
    handful of distinct shapes cover a whole binary.  Values are immutable
    tuples, like the token-vector cache above.
    """
    key = (inst.opcode, tuple(operand_shape(op) for op in inst.operands),
           inst.call_target is not None, dim)
    bag = _INSTRUCTION_BAG_CACHE.get(key)
    if bag is None:
        bag = tuple(embed_tokens(instruction_tokens(inst), dim))
        _INSTRUCTION_BAG_CACHE[key] = bag
    return bag


def embed_block(block: MachineBlock, dim: int = EMBEDDING_DIM) -> List[float]:
    """Bag-of-tokens embedding of a block, summed from instruction bags."""
    bags = [instruction_bag(inst, dim) for inst in block.instructions]
    if not bags:
        return [0.0] * dim
    return [sum(components) for components in zip(*bags)]


def cosine(a: Sequence[float], b: Sequence[float]) -> float:
    dot = sum(x * y for x, y in zip(a, b))
    norm_a = math.sqrt(sum(x * x for x in a))
    norm_b = math.sqrt(sum(y * y for y in b))
    if norm_a == 0.0 or norm_b == 0.0:
        return 1.0 if norm_a == norm_b else 0.0
    return dot / (norm_a * norm_b)


def normalised_similarity(a: Sequence[float], b: Sequence[float]) -> float:
    """Cosine similarity squashed into [0, 1]."""
    return (cosine(a, b) + 1.0) / 2.0


class NormalizedVector:
    """An embedding stored pre-normalized, so cosine is a single dot product.

    The norm is computed once at construction and divided out of the stored
    ``array('d')`` components; :func:`vector_similarity` then needs neither
    the two extra passes nor the per-pair ``sqrt`` of :func:`cosine`.  A zero
    vector keeps its (all-zero) components and ``norm == 0.0`` so the
    degenerate cases of :func:`cosine` are preserved exactly.
    """

    __slots__ = ("values", "norm")

    def __init__(self, values: Sequence[float]):
        norm = math.sqrt(sum(x * x for x in values))
        self.norm = norm
        if norm == 0.0:
            self.values = array("d", values)
        else:
            self.values = array("d", [x / norm for x in values])

    def __len__(self) -> int:
        return len(self.values)

    def __reduce__(self):
        # Rebuild from the already-normalized components: the constructor
        # re-derives norm 1.0 (or 0.0), keeping the unpickled copy identical.
        return (_rebuild_normalized, (self.values.tobytes(), self.norm))


def _rebuild_normalized(raw: bytes, norm: float) -> "NormalizedVector":
    vector = NormalizedVector.__new__(NormalizedVector)
    values = array("d")
    values.frombytes(raw)
    vector.values = values
    vector.norm = norm
    return vector


def vector_similarity(a: NormalizedVector, b: NormalizedVector) -> float:
    """:func:`normalised_similarity` over pre-normalized vectors (0..1)."""
    if a.norm == 0.0 or b.norm == 0.0:
        return 1.0 if a.norm == b.norm else 0.5
    return (sum(map(mul, a.values, b.values)) + 1.0) / 2.0


# -- numeric block / function features -------------------------------------------------------

BLOCK_FEATURE_NAMES = (
    "instructions", "arithmetic", "transfer", "call", "move", "stack",
    "compare", "other", "immediates", "memory_refs",
)


def block_numeric_features(block: MachineBlock) -> List[float]:
    counts = {name: 0.0 for name in BLOCK_FEATURE_NAMES}
    counts["instructions"] = float(len(block.instructions))
    for inst in block.instructions:
        category = instruction_category(inst.opcode)
        if category in counts:
            counts[category] += 1.0
        else:
            counts["other"] += 1.0
        counts["immediates"] += sum(1.0 for op in inst.operands
                                    if op.startswith("$"))
        counts["memory_refs"] += sum(1.0 for op in inst.operands
                                     if op.startswith("["))
    return [counts[name] for name in BLOCK_FEATURE_NAMES]


def function_numeric_features(function: BinaryFunction) -> List[float]:
    """BinDiff-style structural statistics of one function."""
    return [
        float(function.block_count),
        float(function.edge_count),
        float(function.call_count),
        float(function.instruction_count),
        float(function.size),
    ]


def structural_similarity_features(fa: Sequence[float],
                                   fb: Sequence[float]) -> float:
    """Structural similarity over already-extracted feature vectors (0..1)."""
    score = 0.0
    for x, y in zip(fa, fb):
        hi = max(x, y)
        score += 1.0 if hi == 0 else min(x, y) / hi
    return score / len(fa)


def structural_similarity(a: BinaryFunction, b: BinaryFunction) -> float:
    """Similarity of two functions from their structural statistics (0..1)."""
    return structural_similarity_features(function_numeric_features(a),
                                          function_numeric_features(b))


# -- graph-context aggregation ----------------------------------------------------------------


def propagate_over_cfg(function: BinaryFunction,
                       block_vectors: Dict[str, List[float]],
                       iterations: int = 2, damping: float = 0.5) -> Dict[str, List[float]]:
    """structure2vec-style neighbour aggregation of per-block vectors."""
    current = {label: list(vector) for label, vector in block_vectors.items()}
    predecessors: Dict[str, List[str]] = {b.label: [] for b in function.blocks}
    for block in function.blocks:
        for successor in block.successors:
            predecessors.setdefault(successor, []).append(block.label)

    for _ in range(iterations):
        updated: Dict[str, List[float]] = {}
        for block in function.blocks:
            base = list(block_vectors[block.label])
            neighbours = list(block.successors) + predecessors.get(block.label, [])
            for neighbour in neighbours:
                if neighbour in current:
                    add_scaled(base, current[neighbour], damping / max(1, len(neighbours)))
            updated[block.label] = base
        current = updated
    return current


def aggregate(vectors: Iterable[Sequence[float]], dim: int) -> List[float]:
    total = [0.0] * dim
    for vector in vectors:
        add_scaled(total, vector, 1.0)
    return total
