"""A DeepBinDiff-style differ.

DeepBinDiff (Duan et al., NDSS 2020) works at *basic-block* granularity: it
embeds every block with token features plus program-wide context from an
inter-procedural CFG (which couples the control-flow and call graphs) and then
matches blocks across the two binaries.  Its feature vectors therefore encode
both the CFG and the call graph — Table 1 lists it as the only block-level
tool and one of the two call-graph-aware tools — and the paper notes it needs
a lot of memory, which is why only programs under 40k lines are used with it.

Function-level accuracy is derived with the paper's relaxed rule: a block
match is counted for a function pairing if the two blocks' owning functions
are paired, so the result surface here is block-vote-based function ranking.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from ..backend.binary import Binary, BinaryFunction
from .base import BinaryDiffer, DiffResult, ToolInfo
from .features import (EMBEDDING_DIM, add_scaled, block_tokens, embed_tokens,
                       normalised_similarity, propagate_over_cfg)


class DeepBinDiff(BinaryDiffer):
    info = ToolInfo(name="DeepBinDiff", granularity="basic block",
                    symbol_relying=False, time_consuming=True,
                    memory_consuming=True, callgraph_lacking=False)

    def __init__(self, dim: int = EMBEDDING_DIM, max_block_candidates: int = 3,
                 vote_sharpness: int = 3):
        self.dim = dim
        self.max_block_candidates = max_block_candidates
        self.vote_sharpness = vote_sharpness

    # -- embeddings -----------------------------------------------------------------

    def _block_embeddings(self, binary: Binary) -> Dict[Tuple[str, str], List[float]]:
        """Embed every block with token + CFG + call-graph context."""
        entry_vectors: Dict[str, List[float]] = {}
        per_function: Dict[str, Dict[str, List[float]]] = {}

        for function in binary.functions:
            raw = {block.label: embed_tokens(block_tokens(block), self.dim)
                   for block in function.blocks}
            propagated = propagate_over_cfg(function, raw, iterations=2) if raw else {}
            per_function[function.name] = propagated
            if function.blocks:
                entry_vectors[function.name] = propagated[function.blocks[0].label]

        # call-graph context: a block containing a direct call mixes in the
        # callee's entry-block embedding (the inter-procedural CFG edge)
        result: Dict[Tuple[str, str], List[float]] = {}
        for function in binary.functions:
            vectors = per_function[function.name]
            for block in function.blocks:
                vector = list(vectors.get(block.label, [0.0] * self.dim))
                for inst in block.instructions:
                    if inst.call_target and inst.call_target in entry_vectors:
                        add_scaled(vector, entry_vectors[inst.call_target], 0.5)
                result[(function.name, block.label)] = vector
        return result

    # -- diffing --------------------------------------------------------------------

    def diff(self, original: Binary, obfuscated: Binary) -> DiffResult:
        original_blocks = self._block_embeddings(original)
        obfuscated_blocks = self._block_embeddings(obfuscated)

        # per original function, let its blocks vote for obfuscated functions
        votes: Dict[str, Dict[str, float]] = {f.name: {} for f in original.functions}
        obfuscated_items = list(obfuscated_blocks.items())
        for (source_function, source_label), source_vector in original_blocks.items():
            best: List[Tuple[float, str]] = []
            for (target_function, _target_label), target_vector in obfuscated_items:
                score = normalised_similarity(source_vector, target_vector)
                best.append((score, target_function))
            best.sort(key=lambda item: -item[0])
            for score, target_function in best[:self.max_block_candidates]:
                bucket = votes[source_function]
                # sharpen the vote so a block's best match dominates, which is
                # what DeepBinDiff's explicit block matching achieves
                bucket[target_function] = (bucket.get(target_function, 0.0)
                                           + score ** self.vote_sharpness)

        matches: Dict[str, List[Tuple[str, float]]] = {}
        for function in original.functions:
            bucket = votes.get(function.name, {})
            total = sum(bucket.values()) or 1.0
            ranked = sorted(((name, score / total) for name, score in bucket.items()),
                            key=lambda pair: (-pair[1], pair[0]))
            matches[function.name] = ranked[:50]

        score = self.whole_binary_score(matches, original, obfuscated)
        return DiffResult(tool=self.name, original=original.name,
                          obfuscated=obfuscated.name, matches=matches,
                          similarity_score=score)
