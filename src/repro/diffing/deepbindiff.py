"""A DeepBinDiff-style differ.

DeepBinDiff (Duan et al., NDSS 2020) works at *basic-block* granularity: it
embeds every block with token features plus program-wide context from an
inter-procedural CFG (which couples the control-flow and call graphs) and then
matches blocks across the two binaries.  Its feature vectors therefore encode
both the CFG and the call graph — Table 1 lists it as the only block-level
tool and one of the two call-graph-aware tools — and the paper notes it needs
a lot of memory, which is why only programs under 40k lines are used with it.

Function-level accuracy is derived with the paper's relaxed rule: a block
match is counted for a function pairing if the two blocks' owning functions
are paired, so the result surface here is block-vote-based function ranking.

The per-binary block embedding map (raw bag embeddings — shared with Asm2Vec
— propagated over the CFG, mixed with callee entry blocks, then normalized)
is memoised on each binary's :class:`~repro.diffing.index.FeatureIndex`;
without an index it is rebuilt per diff — the legacy reference path.  The
block-vote scan selects each source block's top candidates with a bounded
heap instead of sorting every (source, target) score list.
"""

from __future__ import annotations

import heapq
from operator import itemgetter
from typing import Dict, List, Optional, Tuple

from ..backend.binary import Binary
from .base import BinaryDiffer, DiffResult, ToolInfo
from .features import (EMBEDDING_DIM, NormalizedVector, add_scaled,
                       embed_block, propagate_over_cfg, vector_similarity)
from .index import FeatureIndex


class DeepBinDiff(BinaryDiffer):
    info = ToolInfo(name="DeepBinDiff", granularity="basic block",
                    symbol_relying=False, time_consuming=True,
                    memory_consuming=True, callgraph_lacking=False)

    #: DeepBinDiff matches *basic blocks*; a function's candidate ranking
    #: emerges from cross-granularity block votes rather than from a
    #: per-function-pair similarity, so the diff sharding falls back to
    #: whole binary pairs for it (the only non-pairwise-decomposable tool).
    shard_granularity = "binary"

    def __init__(self, dim: int = EMBEDDING_DIM, max_block_candidates: int = 3,
                 vote_sharpness: int = 3):
        self.dim = dim
        self.max_block_candidates = max_block_candidates
        self.vote_sharpness = vote_sharpness

    def cache_key(self) -> tuple:
        return ("deepbindiff", self.dim, self.max_block_candidates,
                self.vote_sharpness)

    # -- embeddings -----------------------------------------------------------------

    def _build_block_embeddings(
            self, binary: Binary, index: Optional[FeatureIndex]
            ) -> Dict[Tuple[str, str], NormalizedVector]:
        """Embed every block with token + CFG + call-graph context."""
        entry_vectors: Dict[str, List[float]] = {}
        per_function: Dict[str, Dict[str, List[float]]] = {}

        for function in binary.functions:
            if index is not None:
                raw = index.block_bag_embeddings(function, self.dim)
            else:
                raw = {block.label: embed_block(block, self.dim)
                       for block in function.blocks}
            propagated = propagate_over_cfg(function, raw, iterations=2) if raw else {}
            per_function[function.name] = propagated
            if function.blocks:
                entry_vectors[function.name] = propagated[function.blocks[0].label]

        # call-graph context: a block containing a direct call mixes in the
        # callee's entry-block embedding (the inter-procedural CFG edge)
        result: Dict[Tuple[str, str], NormalizedVector] = {}
        for function in binary.functions:
            vectors = per_function[function.name]
            for block in function.blocks:
                vector = list(vectors.get(block.label, [0.0] * self.dim))
                for inst in block.instructions:
                    if inst.call_target and inst.call_target in entry_vectors:
                        add_scaled(vector, entry_vectors[inst.call_target], 0.5)
                result[(function.name, block.label)] = NormalizedVector(vector)
        return result

    def _block_embeddings(
            self, binary: Binary, index: Optional[FeatureIndex]
            ) -> Dict[Tuple[str, str], NormalizedVector]:
        if index is not None:
            return index.memo(("deepbindiff", self.dim),
                              lambda: self._build_block_embeddings(binary, index))
        return self._build_block_embeddings(binary, None)

    # -- diffing --------------------------------------------------------------------

    def _diff(self, original: Binary, obfuscated: Binary,
              original_index: Optional[FeatureIndex],
              obfuscated_index: Optional[FeatureIndex]) -> DiffResult:
        original_blocks = self._block_embeddings(original, original_index)
        obfuscated_blocks = self._block_embeddings(obfuscated, obfuscated_index)

        # per original function, let its blocks vote for obfuscated functions
        votes: Dict[str, Dict[str, float]] = {f.name: {} for f in original.functions}
        obfuscated_items = list(obfuscated_blocks.items())
        score_key = itemgetter(0)
        for (source_function, _source_label), source_vector in original_blocks.items():
            # nlargest(key=score) == sorted(key=score, reverse=True)[:k]: both
            # stable, so ties keep obfuscated_items order like the former
            # full sort on -score did
            best = heapq.nlargest(
                self.max_block_candidates,
                ((vector_similarity(source_vector, target_vector), target_function)
                 for (target_function, _target_label), target_vector
                 in obfuscated_items),
                key=score_key)
            for score, target_function in best:
                bucket = votes[source_function]
                # sharpen the vote so a block's best match dominates, which is
                # what DeepBinDiff's explicit block matching achieves
                bucket[target_function] = (bucket.get(target_function, 0.0)
                                           + score ** self.vote_sharpness)

        matches: Dict[str, List[Tuple[str, float]]] = {}
        for function in original.functions:
            bucket = votes.get(function.name, {})
            total = sum(bucket.values()) or 1.0
            ranked = sorted(((name, score / total) for name, score in bucket.items()),
                            key=lambda pair: (-pair[1], pair[0]))
            matches[function.name] = ranked[:50]

        score = self.whole_binary_score(matches, original, obfuscated)
        return DiffResult(tool=self.name, original=original.name,
                          obfuscated=obfuscated.name, matches=matches,
                          similarity_score=score)
