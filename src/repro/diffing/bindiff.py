"""A BinDiff-style differ.

Google BinDiff is the industry-standard graph-matching differ.  The paper
notes that "since BinDiff takes the advantage of function names, its result is
much higher than others" — the binaries compared are un-stripped.  The
re-implementation mirrors that behaviour: exact symbol matches rank first, and
the remaining candidates are ranked by structural similarity of the
function-level statistics BinDiff's initial matching uses (basic blocks,
control-flow edges, calls) plus a call-graph neighbourhood term (BinDiff is
one of the two tools in Table 1 that does use the call graph).

The per-function statistics and call-graph edges come from each binary's
:class:`~repro.diffing.index.FeatureIndex` (extracted once per binary); when
no index is given the tool re-extracts per diff — the legacy reference path.
"""

from __future__ import annotations

from typing import Optional

from ..backend.binary import Binary, BinaryFunction
from .base import MATCH_CHANNEL, BinaryDiffer, ToolInfo
from .features import function_numeric_features, structural_similarity_features
from .index import FeatureIndex


class BinDiff(BinaryDiffer):
    info = ToolInfo(name="BinDiff", granularity="function",
                    symbol_relying=True, time_consuming=False,
                    memory_consuming=False, callgraph_lacking=False)

    def __init__(self, name_weight: float = 0.6, callgraph_weight: float = 0.15):
        self.name_weight = name_weight
        self.callgraph_weight = callgraph_weight

    @staticmethod
    def _features_of(binary: Binary, index: Optional[FeatureIndex]):
        if index is not None:
            return index.structural_features(), index.callees()
        structural = {f.name: function_numeric_features(f)
                      for f in binary.functions}
        callees = {f.name: binary.callees_of(f.name) for f in binary.functions}
        return structural, callees

    def cache_key(self) -> tuple:
        return ("bindiff", self.name_weight, self.callgraph_weight)

    def _pair_scorers(self, original: Binary, obfuscated: Binary,
                      original_index: Optional[FeatureIndex],
                      obfuscated_index: Optional[FeatureIndex]):
        original_struct, original_callees = self._features_of(original,
                                                              original_index)
        obfuscated_struct, obfuscated_callees = self._features_of(
            obfuscated, obfuscated_index)

        def callgraph_similarity(a: BinaryFunction, b: BinaryFunction) -> float:
            callees_a = original_callees.get(a.name, set())
            callees_b = obfuscated_callees.get(b.name, set())
            if not callees_a and not callees_b:
                return 1.0
            union = callees_a | callees_b
            if not union:
                return 1.0
            return len(callees_a & callees_b) / len(union)

        def structural_similarity(a: BinaryFunction, b: BinaryFunction) -> float:
            return structural_similarity_features(original_struct[a.name],
                                                  obfuscated_struct[b.name])

        def similarity(a: BinaryFunction, b: BinaryFunction) -> float:
            structural = structural_similarity(a, b)
            graph = callgraph_similarity(a, b)
            score = ((1.0 - self.name_weight - self.callgraph_weight) * structural
                     + self.callgraph_weight * graph)
            if not obfuscated.stripped and a.name == b.name:
                score += self.name_weight
            else:
                # name mismatch: the structural part alone decides
                score += self.name_weight * structural * 0.5
            return min(1.0, score)

        def structural_only(a: BinaryFunction, b: BinaryFunction) -> float:
            return (0.85 * structural_similarity(a, b)
                    + 0.15 * callgraph_similarity(a, b))

        return {MATCH_CHANNEL: similarity, "structural": structural_only}

    def _finalize_score(self, matches, channels, original_functions,
                        obfuscated_functions) -> float:
        # the whole-binary score follows BinDiff's per-pair similarity, which
        # is structural; symbol names only steer the matching itself
        return self.assignment_score(channels["structural"],
                                     original_functions, obfuscated_functions)
