"""A VulSeeker-style differ.

VulSeeker (Gao et al., ASE 2018) builds a *labelled semantic flow graph* per
function: every basic block is summarised by a small vector of numeric
features (instruction class counts), the vectors are propagated over the
control/data-flow structure with a structure2vec-like aggregation, and the
function embedding is their sum.  Matching is cosine similarity between
function embeddings.  Per Table 1 the tool is time- and memory-hungry and
does not use the call graph or symbols.
"""

from __future__ import annotations

from typing import Dict, List

from ..backend.binary import Binary, BinaryFunction
from .base import BinaryDiffer, DiffResult, ToolInfo
from .features import (aggregate, block_numeric_features, normalised_similarity,
                       propagate_over_cfg, BLOCK_FEATURE_NAMES)


class VulSeeker(BinaryDiffer):
    info = ToolInfo(name="VulSeeker", granularity="function",
                    symbol_relying=False, time_consuming=True,
                    memory_consuming=True, callgraph_lacking=True)

    def __init__(self, iterations: int = 2):
        self.iterations = iterations

    def _function_embedding(self, function: BinaryFunction) -> List[float]:
        block_vectors: Dict[str, List[float]] = {
            block.label: block_numeric_features(block)
            for block in function.blocks}
        if not block_vectors:
            return [0.0] * len(BLOCK_FEATURE_NAMES)
        propagated = propagate_over_cfg(function, block_vectors,
                                        iterations=self.iterations)
        return aggregate(propagated.values(), len(BLOCK_FEATURE_NAMES))

    def diff(self, original: Binary, obfuscated: Binary) -> DiffResult:
        original_embeddings = {f.name: self._function_embedding(f)
                               for f in original.functions}
        obfuscated_embeddings = {f.name: self._function_embedding(f)
                                 for f in obfuscated.functions}

        def similarity(a: BinaryFunction, b: BinaryFunction) -> float:
            return normalised_similarity(original_embeddings[a.name],
                                         obfuscated_embeddings[b.name])

        matches = self.rank_by_similarity(original, obfuscated, similarity)
        score = self.whole_binary_score(matches, original, obfuscated)
        return DiffResult(tool=self.name, original=original.name,
                          obfuscated=obfuscated.name, matches=matches,
                          similarity_score=score)
