"""A VulSeeker-style differ.

VulSeeker (Gao et al., ASE 2018) builds a *labelled semantic flow graph* per
function: every basic block is summarised by a small vector of numeric
features (instruction class counts), the vectors are propagated over the
control/data-flow structure with a structure2vec-like aggregation, and the
function embedding is their sum.  Matching is cosine similarity between
function embeddings.  Per Table 1 the tool is time- and memory-hungry and
does not use the call graph or symbols.

Per-function embeddings are pre-normalized and memoised on each binary's
:class:`~repro.diffing.index.FeatureIndex` (numeric block features and the
CFG propagation are cached there); without an index every embedding is
re-extracted per diff — the legacy reference path.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..backend.binary import Binary, BinaryFunction
from .base import MATCH_CHANNEL, BinaryDiffer, ToolInfo
from .features import (BLOCK_FEATURE_NAMES, NormalizedVector, aggregate,
                       block_numeric_features, propagate_over_cfg,
                       vector_similarity)
from .index import FeatureIndex


class VulSeeker(BinaryDiffer):
    info = ToolInfo(name="VulSeeker", granularity="function",
                    symbol_relying=False, time_consuming=True,
                    memory_consuming=True, callgraph_lacking=True)

    def __init__(self, iterations: int = 2):
        self.iterations = iterations

    def _function_embedding(self, function: BinaryFunction,
                            index: Optional[FeatureIndex]) -> List[float]:
        if index is not None:
            propagated = index.propagated_numeric_features(function,
                                                           self.iterations)
            if not propagated:
                return [0.0] * len(BLOCK_FEATURE_NAMES)
            return aggregate(propagated.values(), len(BLOCK_FEATURE_NAMES))
        block_vectors: Dict[str, List[float]] = {
            block.label: block_numeric_features(block)
            for block in function.blocks}
        if not block_vectors:
            return [0.0] * len(BLOCK_FEATURE_NAMES)
        propagated = propagate_over_cfg(function, block_vectors,
                                        iterations=self.iterations)
        return aggregate(propagated.values(), len(BLOCK_FEATURE_NAMES))

    def _embeddings(self, binary: Binary,
                    index: Optional[FeatureIndex]) -> Dict[str, NormalizedVector]:
        if index is not None:
            return index.function_embeddings(
                ("vulseeker", self.iterations),
                lambda f: self._function_embedding(f, index))
        return {f.name: NormalizedVector(self._function_embedding(f, None))
                for f in binary.functions}

    def cache_key(self) -> tuple:
        return ("vulseeker", self.iterations)

    def _pair_scorers(self, original: Binary, obfuscated: Binary,
                      original_index: Optional[FeatureIndex],
                      obfuscated_index: Optional[FeatureIndex]):
        original_embeddings = self._embeddings(original, original_index)
        obfuscated_embeddings = self._embeddings(obfuscated, obfuscated_index)

        def similarity(a: BinaryFunction, b: BinaryFunction) -> float:
            return vector_similarity(original_embeddings[a.name],
                                     obfuscated_embeddings[b.name])

        return {MATCH_CHANNEL: similarity}
