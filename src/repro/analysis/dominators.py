"""Dominator-tree analysis (Cooper/Harvey/Kennedy iterative algorithm).

The fission primitive partitions a function along dominator trees: "as long as
a code region is a dominator tree on the control flow graph, it can be
extracted into a sepFunc" (Khaos, section 3.2.1).  :class:`DominatorTree`
exposes the immediate-dominator relation, dominance queries and the *dominated
region* of every block (the candidate regions of Algorithm 1).
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..ir.basicblock import BasicBlock
from ..ir.function import Function
from .cfg import ControlFlowGraph


class DominatorTree:
    def __init__(self, function: Function, cfg: Optional[ControlFlowGraph] = None):
        self.function = function
        self.cfg = cfg or ControlFlowGraph(function)
        self.idom: Dict[BasicBlock, Optional[BasicBlock]] = {}
        self.children: Dict[BasicBlock, List[BasicBlock]] = {}
        self._compute()

    def _compute(self) -> None:
        rpo = self.cfg.reverse_post_order()
        index = {b: i for i, b in enumerate(rpo)}
        entry = self.cfg.entry
        idom: Dict[BasicBlock, BasicBlock] = {entry: entry}

        def intersect(b1: BasicBlock, b2: BasicBlock) -> BasicBlock:
            finger1, finger2 = b1, b2
            while finger1 is not finger2:
                while index[finger1] > index[finger2]:
                    finger1 = idom[finger1]
                while index[finger2] > index[finger1]:
                    finger2 = idom[finger2]
            return finger1

        changed = True
        while changed:
            changed = False
            for block in rpo:
                if block is entry:
                    continue
                preds = [p for p in self.cfg.predecessors.get(block, [])
                         if p in index]
                processed = [p for p in preds if p in idom]
                if not processed:
                    continue
                new_idom = processed[0]
                for p in processed[1:]:
                    new_idom = intersect(p, new_idom)
                if idom.get(block) is not new_idom:
                    idom[block] = new_idom
                    changed = True

        self.idom = {}
        self.children = {b: [] for b in rpo}
        for block in rpo:
            if block is entry:
                self.idom[block] = None
                continue
            dominator = idom.get(block)
            self.idom[block] = dominator
            if dominator is not None:
                self.children.setdefault(dominator, []).append(block)
        self._rpo = rpo

    # -- queries ------------------------------------------------------------------

    def blocks(self) -> List[BasicBlock]:
        """Reachable blocks in reverse post-order."""
        return list(self._rpo)

    def immediate_dominator(self, block: BasicBlock) -> Optional[BasicBlock]:
        return self.idom.get(block)

    def dominates(self, a: BasicBlock, b: BasicBlock) -> bool:
        """True if ``a`` dominates ``b`` (reflexively)."""
        current: Optional[BasicBlock] = b
        while current is not None:
            if current is a:
                return True
            current = self.idom.get(current)
        return False

    def dominated_region(self, root: BasicBlock) -> List[BasicBlock]:
        """All blocks dominated by ``root`` (the dominator subtree), preorder."""
        region: List[BasicBlock] = []
        stack = [root]
        while stack:
            block = stack.pop()
            region.append(block)
            stack.extend(reversed(self.children.get(block, [])))
        return region

    def subtrees(self) -> Dict[BasicBlock, List[BasicBlock]]:
        """Map every reachable block to its dominator subtree."""
        return {b: self.dominated_region(b) for b in self._rpo}
