"""Static block-frequency estimation.

A lightweight stand-in for LLVM's BlockFrequency analysis: the entry block has
frequency 1.0, conditional branches split their frequency evenly among
successors, and loop bodies are scaled by the loop's static trip count.  The
fission region-identification algorithm (Algorithm 1) uses these frequencies
as the cut *cost* to steer separation toward cold code.
"""

from __future__ import annotations

from typing import Dict, Optional

from ..ir.basicblock import BasicBlock
from ..ir.function import Function
from .cfg import ControlFlowGraph
from .loops import LoopInfo


class BlockFrequency:
    def __init__(self, function: Function,
                 cfg: Optional[ControlFlowGraph] = None,
                 loops: Optional[LoopInfo] = None):
        self.function = function
        self.cfg = cfg or ControlFlowGraph(function)
        self.loops = loops or LoopInfo(function, self.cfg)
        self.frequency: Dict[BasicBlock, float] = {}
        self._compute()

    def _compute(self) -> None:
        # Propagate frequencies along the acyclic condensation in reverse
        # post-order; back edges are ignored and replaced by multiplying each
        # block by trip_count ** loop_depth afterwards.
        rpo = self.cfg.reverse_post_order()
        order_index = {b: i for i, b in enumerate(rpo)}
        freq: Dict[BasicBlock, float] = {b: 0.0 for b in rpo}
        freq[self.cfg.entry] = 1.0

        for block in rpo:
            out = freq[block]
            succs = self.cfg.successors.get(block, [])
            forward = [s for s in succs
                       if order_index.get(s, -1) > order_index[block]]
            if not forward:
                continue
            share = out / len(succs) if succs else 0.0
            for succ in forward:
                freq[succ] = freq.get(succ, 0.0) + share

        for block in rpo:
            loop = self.loops.innermost_loop(block)
            multiplier = 1.0
            while loop is not None:
                multiplier *= loop.trip_count
                loop = loop.parent
            self.frequency[block] = max(freq.get(block, 0.0), 1e-6) * multiplier

        # blocks unreachable from the entry get a tiny non-zero frequency so
        # ratios remain well defined
        for block in self.function.blocks:
            self.frequency.setdefault(block, 1e-6)

    def get(self, block: BasicBlock) -> float:
        return self.frequency.get(block, 1e-6)

    def is_cold(self, block: BasicBlock, threshold: float = 0.5) -> bool:
        """Heuristically cold: executed less often than ``threshold`` per call."""
        return self.get(block) < threshold
