"""Control-flow graph utilities over :class:`~repro.ir.function.Function`."""

from __future__ import annotations

from typing import Dict, List, Set

from ..ir.basicblock import BasicBlock
from ..ir.function import Function


class ControlFlowGraph:
    """Successor/predecessor maps plus common traversals for one function."""

    def __init__(self, function: Function):
        self.function = function
        self.successors: Dict[BasicBlock, List[BasicBlock]] = {}
        self.predecessors: Dict[BasicBlock, List[BasicBlock]] = {}
        for block in function.blocks:
            self.successors[block] = list(block.successors())
            self.predecessors.setdefault(block, [])
        for block in function.blocks:
            for succ in self.successors[block]:
                self.predecessors.setdefault(succ, []).append(block)

    @property
    def entry(self) -> BasicBlock:
        return self.function.entry_block

    def reachable_blocks(self) -> List[BasicBlock]:
        """Blocks reachable from the entry, in depth-first preorder."""
        seen: Set[BasicBlock] = set()
        order: List[BasicBlock] = []
        stack = [self.entry]
        while stack:
            block = stack.pop()
            if block in seen:
                continue
            seen.add(block)
            order.append(block)
            for succ in reversed(self.successors.get(block, [])):
                if succ not in seen:
                    stack.append(succ)
        return order

    def unreachable_blocks(self) -> List[BasicBlock]:
        reachable = set(self.reachable_blocks())
        return [b for b in self.function.blocks if b not in reachable]

    def reverse_post_order(self) -> List[BasicBlock]:
        seen: Set[BasicBlock] = set()
        post: List[BasicBlock] = []

        def visit(block: BasicBlock) -> None:
            stack = [(block, iter(self.successors.get(block, [])))]
            seen.add(block)
            while stack:
                current, it = stack[-1]
                advanced = False
                for succ in it:
                    if succ not in seen:
                        seen.add(succ)
                        stack.append((succ, iter(self.successors.get(succ, []))))
                        advanced = True
                        break
                if not advanced:
                    post.append(current)
                    stack.pop()

        visit(self.entry)
        return list(reversed(post))

    def edge_count(self) -> int:
        return sum(len(s) for s in self.successors.values())

    def exit_blocks(self) -> List[BasicBlock]:
        """Blocks whose terminator leaves the function (ret / unreachable)."""
        return [b for b in self.function.blocks if not self.successors.get(b)]
