"""Caching analysis manager.

Every pass in the obfuscate→optimize→measure pipeline used to rebuild its
analyses (:class:`ControlFlowGraph`, :class:`DominatorTree`, :class:`DefUse`,
:class:`LoopInfo`, :class:`BlockFrequency`, :class:`CallGraph`) from scratch
at every query site.  :class:`AnalysisManager` makes construction explicit and
shared: consumers *fetch* analyses, passes *invalidate* what they clobber and
*declare* what they preserve (see :attr:`repro.opt.pass_manager.Pass.preserves`).

Invalidation is explicit and per-function:

* ``invalidate(function)`` drops every cached analysis of ``function``;
* ``invalidate(function, preserve=("cfg", "domtree"))`` keeps the named
  analyses (used by passes that mutate instructions but not the block graph);
* ``invalidate_module(module)`` drops the module's call graph plus every
  cached analysis of the module's functions;
* ``invalidate_all()`` empties the cache.

A manager constructed with ``verify_invalidation=True`` snapshots a structural
fingerprint of the function when an analysis is first built and re-checks it
on every cache hit; a pass that mutated the function without invalidating is
then caught immediately with :class:`StaleAnalysisError` instead of silently
computing on stale data.  The fingerprint covers the block list, per-block
instruction counts, terminators and successor edges — in-place operand rewrites
that leave the instruction list intact are intentionally out of scope (they do
not affect any of the structural analyses cached here except ``defuse``, whose
consumers invalidate on any change).
"""

from __future__ import annotations

import weakref

from typing import Dict, Iterable, List, Optional, Tuple, Union

from ..ir.function import Function
from ..ir.module import Module
from .block_frequency import BlockFrequency
from .callgraph import CallGraph
from .cfg import ControlFlowGraph
from .defuse import DefUse
from .dominators import DominatorTree
from .loops import LoopInfo

#: Names accepted by ``invalidate(..., preserve=...)`` and ``Pass.preserves``.
ANALYSIS_NAMES = ("cfg", "domtree", "defuse", "loops", "block_frequency")

#: Sentinel for passes that preserve every analysis (pure queries).
PRESERVE_ALL = "all"


class StaleAnalysisError(RuntimeError):
    """A cached analysis was fetched after its function changed underneath it."""


class AnalysisManager:
    """Per-function analysis cache with explicit invalidation."""

    def __init__(self, verify_invalidation: bool = False):
        self.verify_invalidation = verify_invalidation
        self._functions: Dict[Function, Dict[str, object]] = {}
        self._fingerprints: Dict[Function, Tuple] = {}
        self._callgraphs: Dict[Module, CallGraph] = {}
        self._listeners: List[weakref.ref] = []
        self.hits = 0
        self.misses = 0
        self.invalidations = 0

    # -- invalidation listeners ---------------------------------------------------

    def add_invalidation_listener(self, listener) -> None:
        """Register an execution-side cache to be dropped with the analyses.

        ``listener.invalidate_compiled(function)`` is called whenever this
        manager invalidates ``function``'s analyses (``None`` for whole-cache
        invalidation), keeping interpreter state — compiled blocks, fused
        superblock traces — in sync with the passes that mutate the IR.
        Listeners are held weakly: a discarded interpreter never keeps
        itself alive through the manager, and dead references are pruned on
        the next notification.
        """
        for ref in self._listeners:
            if ref() is listener:
                return
        self._listeners.append(weakref.ref(listener))

    def _notify_listeners(self, function: Optional[Function]) -> None:
        if not self._listeners:
            return
        live = []
        for ref in self._listeners:
            listener = ref()
            if listener is not None:
                live.append(ref)
                listener.invalidate_compiled(function)
        self._listeners = live

    # -- fetchers -----------------------------------------------------------------

    def cfg(self, function: Function) -> ControlFlowGraph:
        return self._get(function, "cfg",
                         lambda: ControlFlowGraph(function))

    def domtree(self, function: Function) -> DominatorTree:
        return self._get(function, "domtree",
                         lambda: DominatorTree(function, self.cfg(function)))

    def defuse(self, function: Function) -> DefUse:
        return self._get(function, "defuse", lambda: DefUse(function))

    def loops(self, function: Function) -> LoopInfo:
        return self._get(function, "loops",
                         lambda: LoopInfo(function, self.cfg(function),
                                          self.domtree(function)))

    def block_frequency(self, function: Function) -> BlockFrequency:
        return self._get(function, "block_frequency",
                         lambda: BlockFrequency(function, self.cfg(function),
                                                self.loops(function)))

    def cached(self, function: Function, name: str, builder):
        """Public per-function cache slot for non-core artifacts.

        The static verifier parks its per-tier results here under
        ``verify:<tier>`` pseudo-names, giving warm re-verification
        dictionary-hit cost.  Entries share the invalidation lifecycle of
        the real analyses: any ``invalidate(function, ...)`` drops them
        unless the caller's ``preserve`` names them explicitly (passes
        never do), and the ``verify_invalidation`` fingerprint check
        applies on hits.  ``builder`` takes no arguments and must not
        return ``None`` (``None`` is the cache-miss sentinel).
        """
        return self._get(function, name, builder)

    def callgraph(self, module: Module) -> CallGraph:
        graph = self._callgraphs.get(module)
        if graph is None:
            self.misses += 1
            graph = CallGraph(module)
            self._callgraphs[module] = graph
        else:
            self.hits += 1
        return graph

    # -- invalidation -------------------------------------------------------------

    def invalidate(self, function: Function,
                   preserve: Union[str, Iterable[str]] = ()) -> None:
        """Drop ``function``'s cached analyses, keeping those in ``preserve``."""
        self.invalidations += 1
        if preserve == PRESERVE_ALL:
            # "everything is still valid" implies the structure did not
            # change, so the recorded fingerprint intentionally stays: a pass
            # that restructures a function while claiming PRESERVE_ALL is
            # caught by the verify mode instead of silently trusted
            return
        kept = set(preserve)
        entry = self._functions.get(function)
        if entry is not None:
            if kept:
                for name in list(entry):
                    if name not in kept:
                        del entry[name]
                if not entry:
                    del self._functions[function]
            else:
                del self._functions[function]
        self._refingerprint(function)
        self._notify_listeners(function)

    def invalidate_module(self, module: Module,
                          preserve: Union[str, Iterable[str]] = ()) -> None:
        """Drop the module's call graph plus all of its functions' analyses.

        Functions already detached from their module (``module is None`` —
        e.g. removed by dead-function elimination or fusion just before this
        call) are purged too, so their cached analyses cannot leak.
        """
        self._callgraphs.pop(module, None)
        for function in list(self._functions):
            if function.module is module or function.module is None:
                self.invalidate(function, preserve=preserve)
        # module passes may have mutated functions this manager never cached
        # (the loop above cannot see them), so listeners are flushed fully
        self._notify_listeners(None)

    def invalidate_all(self) -> None:
        self._functions.clear()
        self._fingerprints.clear()
        self._callgraphs.clear()
        self.invalidations += 1
        self._notify_listeners(None)

    # -- internals ----------------------------------------------------------------

    def _get(self, function: Function, name: str, builder):
        entry = self._functions.get(function)
        if entry is None:
            entry = {}
            self._functions[function] = entry
        analysis = entry.get(name)
        if analysis is not None:
            self.hits += 1
            if self.verify_invalidation:
                self._check_fingerprint(function)
            return analysis
        self.misses += 1
        if self.verify_invalidation and entry:
            # other analyses of this function are cached: the structure they
            # were computed against must still be current
            self._check_fingerprint(function)
        analysis = builder()
        # nested fetches inside builder() may have replaced the entry dict
        entry = self._functions.setdefault(function, entry)
        entry[name] = analysis
        if self.verify_invalidation and function not in self._fingerprints:
            self._fingerprints[function] = self._fingerprint(function)
        return analysis

    def _refingerprint(self, function: Function) -> None:
        if not self.verify_invalidation:
            return
        if function in self._functions:
            self._fingerprints[function] = self._fingerprint(function)
        else:
            self._fingerprints.pop(function, None)

    def _check_fingerprint(self, function: Function) -> None:
        recorded = self._fingerprints.get(function)
        if recorded is not None and recorded != self._fingerprint(function):
            raise StaleAnalysisError(
                f"function @{function.name} changed since its analyses were "
                f"cached; the mutating pass must call invalidate()")

    @staticmethod
    def _fingerprint(function: Function) -> Tuple:
        return tuple(
            (block, len(block.instructions), block.terminator,
             tuple(block.successors()))
            for block in function.blocks)
