"""Def-use information and region input/output analysis.

The fission data-flow rebuild needs to know, for a candidate region, which
values defined outside are used inside (region *inputs*) and which allocas are
only ever touched inside the region (candidates for the paper's lazy-allocation
data-flow reduction).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Set

from ..ir.basicblock import BasicBlock
from ..ir.function import Function
from ..ir.instructions import Alloca, Instruction
from ..ir.values import Argument, Constant, GlobalVariable, UndefValue, Value


class DefUse:
    """Map every instruction/argument to the instructions that use it."""

    def __init__(self, function: Function):
        self.function = function
        self.users: Dict[int, List[Instruction]] = {}
        self._values: Dict[int, Value] = {}
        for inst in function.instructions():
            for op in inst.operands:
                if isinstance(op, (Instruction, Argument)):
                    self.users.setdefault(id(op), []).append(inst)
                    self._values[id(op)] = op

    def uses_of(self, value: Value) -> List[Instruction]:
        return list(self.users.get(id(value), []))

    def is_used(self, value: Value) -> bool:
        return bool(self.users.get(id(value)))


def region_inputs(region: Iterable[BasicBlock]) -> List[Value]:
    """Values defined outside the region but used inside it.

    Constants, globals and function references are free to rematerialise and
    are not counted as inputs; arguments and instructions defined outside the
    region are.
    """
    defined_inside: Set[int] = set()
    for block in region:
        for inst in block.instructions:
            defined_inside.add(id(inst))

    inputs: List[Value] = []
    seen: Set[int] = set()
    for block in region:
        for inst in block.instructions:
            for op in inst.operands:
                if isinstance(op, (Constant, GlobalVariable, UndefValue)):
                    continue
                if isinstance(op, Instruction):
                    if id(op) in defined_inside:
                        continue
                elif not isinstance(op, Argument):
                    continue
                if id(op) not in seen:
                    seen.add(id(op))
                    inputs.append(op)
    return inputs


def region_outputs(function: Function, region: Iterable[BasicBlock]) -> List[Instruction]:
    """Instructions defined inside the region with uses outside of it."""
    region_blocks = {id(b) for b in region}
    defined_inside = {}
    for block in region:
        for inst in block.instructions:
            defined_inside[id(inst)] = inst

    outputs: List[Instruction] = []
    seen: Set[int] = set()
    for block in function.blocks:
        if id(block) in region_blocks:
            continue
        for inst in block.instructions:
            for op in inst.operands:
                if id(op) in defined_inside and id(op) not in seen:
                    seen.add(id(op))
                    outputs.append(defined_inside[id(op)])
    return outputs


def allocas_only_used_in(function: Function,
                         region: Iterable[BasicBlock],
                         defuse: "DefUse" = None) -> List[Alloca]:
    """Entry-block allocas whose every use lies inside ``region``.

    These are the locals that the fission's lazy-allocation optimisation can
    move into the sepFunc instead of passing a pointer parameter.  Pass a
    cached ``defuse`` (e.g. from an
    :class:`~repro.analysis.manager.AnalysisManager`) to avoid recomputing it.
    """
    region_blocks = set(region)
    if defuse is None:
        defuse = DefUse(function)
    result: List[Alloca] = []
    for inst in function.entry_block.instructions:
        if not isinstance(inst, Alloca):
            continue
        if inst.parent in region_blocks:
            continue
        uses = defuse.uses_of(inst)
        if uses and all(u.parent in region_blocks for u in uses):
            result.append(inst)
    return result
