"""Static analyses: CFG, dominators, loops, block frequency, def-use, call graph,
and the memory-effect (innocuous block) analysis used by deep fusion."""

from .cfg import ControlFlowGraph
from .dominators import DominatorTree
from .loops import Loop, LoopInfo, DEFAULT_TRIP_COUNT
from .block_frequency import BlockFrequency
from .defuse import DefUse, allocas_only_used_in, region_inputs, region_outputs
from .callgraph import CallGraph, program_call_graph
from .manager import (ANALYSIS_NAMES, AnalysisManager, PRESERVE_ALL,
                      StaleAnalysisError)
from .memory_effects import (count_innocuous_blocks, innocuous_blocks,
                             is_innocuous_block, is_innocuous_instruction,
                             trace_pointer_base)

__all__ = [
    "ControlFlowGraph", "DominatorTree", "Loop", "LoopInfo",
    "DEFAULT_TRIP_COUNT", "BlockFrequency", "DefUse", "allocas_only_used_in",
    "region_inputs", "region_outputs", "CallGraph", "program_call_graph",
    "ANALYSIS_NAMES", "AnalysisManager", "PRESERVE_ALL", "StaleAnalysisError",
    "count_innocuous_blocks", "innocuous_blocks", "is_innocuous_block",
    "is_innocuous_instruction", "trace_pointer_base",
]
