"""Call-graph construction over a module or program.

Used by the fusion pass (functions with a direct calling relationship are not
aggregated), by the inliner, and by the diffing tools that extract call-graph
features (BinDiff, VulSeeker, DeepBinDiff — see Table 1 of the paper).
"""

from __future__ import annotations

from typing import Dict, List, Set, Tuple

from ..ir.function import Function
from ..ir.instructions import Call
from ..ir.module import Module, Program


class CallGraph:
    def __init__(self, module: Module):
        self.module = module
        self.callees: Dict[str, Set[str]] = {}
        self.callers: Dict[str, Set[str]] = {}
        self.direct_call_counts: Dict[str, int] = {}
        self.indirect_call_counts: Dict[str, int] = {}
        self.address_taken: Set[str] = set()
        self._compute()

    def _compute(self) -> None:
        for function in self.module.functions.values():
            name = function.name
            self.callees.setdefault(name, set())
            self.callers.setdefault(name, set())
            self.direct_call_counts[name] = 0
            self.indirect_call_counts[name] = 0
            if function.is_declaration:
                continue
            for inst in function.instructions():
                if isinstance(inst, Call):
                    callee = inst.callee
                    if isinstance(callee, Function):
                        self.direct_call_counts[name] += 1
                        self.callees[name].add(callee.name)
                        self.callers.setdefault(callee.name, set()).add(name)
                    else:
                        self.indirect_call_counts[name] += 1
                # any non-call use of a function value means its address escapes
                for op in (inst.operands if not isinstance(inst, Call)
                           else inst.operands[1:]):
                    if isinstance(op, Function):
                        self.address_taken.add(op.name)

    # -- queries ------------------------------------------------------------------

    def calls(self, caller: str, callee: str) -> bool:
        return callee in self.callees.get(caller, set())

    def directly_related(self, a: str, b: str) -> bool:
        """True if either function directly calls the other."""
        return self.calls(a, b) or self.calls(b, a)

    def callee_names(self, name: str) -> Set[str]:
        return set(self.callees.get(name, set()))

    def caller_names(self, name: str) -> Set[str]:
        return set(self.callers.get(name, set()))

    def is_address_taken(self, name: str) -> bool:
        return name in self.address_taken

    def out_degree(self, name: str) -> int:
        return len(self.callees.get(name, set()))

    def in_degree(self, name: str) -> int:
        return len(self.callers.get(name, set()))

    def edges(self) -> List[Tuple[str, str]]:
        return [(caller, callee)
                for caller, callees in self.callees.items()
                for callee in sorted(callees)]


def program_call_graph(program: Program) -> CallGraph:
    """Call graph of a (linked) program; convenience for single-module programs."""
    linked = program if len(program.modules) == 1 else program.link()
    return CallGraph(linked.modules[0])
