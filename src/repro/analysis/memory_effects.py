"""Memory-effect analysis used by deep fusion.

The deep fusion step aggregates *innocuous* basic blocks from the two fused
functions: blocks whose execution "does not affect the global memory state"
(Khaos, section 3.3.4).  The analysis here is deliberately conservative, in
the same way the paper describes:

* a store through a pointer that cannot be proven to target a local alloca of
  the enclosing function makes the block non-innocuous;
* a call to an external or unknown function makes the block non-innocuous
  (known pure intrinsics are allowed);
* everything else (arithmetic, loads, local stores) is innocuous.
"""

from __future__ import annotations

from typing import List, Optional, Set

from ..ir.basicblock import BasicBlock
from ..ir.function import Function
from ..ir.instructions import (Alloca, Call, GetElementPtr, Instruction, Store,
                               Cast)
from ..ir.values import Value

# Intrinsics and libc-style helpers that the VM models as side-effect free.
PURE_INTRINSICS = {
    "abs", "labs", "min", "max", "strlen_model", "llvm.ctpop",
}

# Intrinsics with side effects that are still *local* to the caller's frame.
FRAME_LOCAL_INTRINSICS: Set[str] = set()


def trace_pointer_base(value: Value) -> Optional[Value]:
    """Follow GEP/cast chains back to the underlying allocation, if obvious."""
    current = value
    while True:
        if isinstance(current, GetElementPtr):
            current = current.pointer
        elif isinstance(current, Cast):
            current = current.value
        else:
            return current


def store_targets_local(function: Function, store: Store) -> bool:
    """True if the store provably writes an alloca belonging to ``function``."""
    base = trace_pointer_base(store.pointer)
    if isinstance(base, Alloca):
        return base.parent is not None and base.parent.parent is function
    return False


def is_innocuous_instruction(function: Function, inst: Instruction) -> bool:
    if isinstance(inst, Store):
        return store_targets_local(function, inst)
    if isinstance(inst, Call):
        callee = inst.callee
        callee_name = getattr(callee, "name", None)
        if callee_name in PURE_INTRINSICS:
            return True
        return False
    # loads, arithmetic, comparisons, casts, allocas and terminators neither
    # write global memory nor transfer control outside the function
    return True


def is_innocuous_block(function: Function, block: BasicBlock) -> bool:
    """A block is innocuous if re-executing it cannot change global state."""
    return all(is_innocuous_instruction(function, inst)
               for inst in block.non_terminator_instructions())


def innocuous_blocks(function: Function) -> List[BasicBlock]:
    if function.is_declaration:
        return []
    return [b for b in function.blocks if is_innocuous_block(function, b)]


def count_innocuous_blocks(function: Function) -> int:
    return len(innocuous_blocks(function))
