"""Natural-loop detection from back edges of the dominator tree.

Algorithm 1 of the paper weights the cut cost of a candidate region by the
trip count of the innermost loop containing it; :class:`LoopInfo` provides the
loops, their nesting depth and a static trip-count estimate.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set

from ..ir.basicblock import BasicBlock
from ..ir.function import Function
from .cfg import ControlFlowGraph
from .dominators import DominatorTree

# Static trip-count guess for loops whose bound is not a literal constant;
# LLVM's BlockFrequency uses a similar default weight for loop back edges.
DEFAULT_TRIP_COUNT = 10


class Loop:
    def __init__(self, header: BasicBlock, blocks: Set[BasicBlock]):
        self.header = header
        self.blocks = blocks
        self.parent: Optional["Loop"] = None
        self.children: List["Loop"] = []
        self.trip_count = DEFAULT_TRIP_COUNT

    @property
    def depth(self) -> int:
        depth = 1
        parent = self.parent
        while parent is not None:
            depth += 1
            parent = parent.parent
        return depth

    def contains(self, block: BasicBlock) -> bool:
        return block in self.blocks

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Loop header={self.header.name} blocks={len(self.blocks)}>"


class LoopInfo:
    def __init__(self, function: Function,
                 cfg: Optional[ControlFlowGraph] = None,
                 domtree: Optional[DominatorTree] = None):
        self.function = function
        self.cfg = cfg or ControlFlowGraph(function)
        self.domtree = domtree or DominatorTree(function, self.cfg)
        self.loops: List[Loop] = []
        self._block_to_loops: Dict[BasicBlock, List[Loop]] = {}
        self._compute()

    def _compute(self) -> None:
        back_edges = []
        for block in self.domtree.blocks():
            for succ in self.cfg.successors.get(block, []):
                if self.domtree.dominates(succ, block):
                    back_edges.append((block, succ))

        by_header: Dict[BasicBlock, Set[BasicBlock]] = {}
        for tail, header in back_edges:
            body = by_header.setdefault(header, {header})
            # walk predecessors backwards from the latch until the header
            stack = [tail]
            while stack:
                block = stack.pop()
                if block in body:
                    continue
                body.add(block)
                stack.extend(self.cfg.predecessors.get(block, []))

        self.loops = [Loop(header, blocks) for header, blocks in by_header.items()]

        # establish nesting: loop A is a child of the smallest loop strictly
        # containing its header (other than itself)
        for loop in self.loops:
            candidates = [other for other in self.loops
                          if other is not loop and loop.header in other.blocks
                          and loop.blocks <= other.blocks]
            if candidates:
                parent = min(candidates, key=lambda l: len(l.blocks))
                loop.parent = parent
                parent.children.append(loop)

        for loop in self.loops:
            for block in loop.blocks:
                self._block_to_loops.setdefault(block, []).append(loop)

    # -- queries ------------------------------------------------------------------

    def innermost_loop(self, block: BasicBlock) -> Optional[Loop]:
        loops = self._block_to_loops.get(block)
        if not loops:
            return None
        return min(loops, key=lambda l: len(l.blocks))

    def loop_depth(self, block: BasicBlock) -> int:
        loop = self.innermost_loop(block)
        return loop.depth if loop is not None else 0

    def in_loop(self, block: BasicBlock) -> bool:
        return bool(self._block_to_loops.get(block))

    def top_level_loops(self) -> List[Loop]:
        return [l for l in self.loops if l.parent is None]
