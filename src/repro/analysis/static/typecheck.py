"""Type checking of IR instructions (the ``typed`` verify tier).

Every instruction's operand and result types are validated against the
:mod:`repro.ir.types` rules, call sites against the callee's declared
signature, and global/constant values against their declared types.

The checker is exact where the IR is exact and deliberately lenient where
the Khaos passes legitimately bend types:

* pointers are treated *opaquely* (any pointer type is assignable to any
  other pointer type) — fusion merges parameter and return slots into
  ``i8*`` and bitcasts derived pointers freely;
* ``add``/``sub`` keep the interpreter's pointer-arithmetic escape hatch
  (pointer left operand, integer right operand);
* :class:`~repro.ir.values.UndefValue` operands are wildcards (fusion pads
  unused merged parameters with them).
"""

from __future__ import annotations

from typing import List, Optional

from ...ir.function import Function
from ...ir.instructions import (BinaryOp, Call, Cast, Compare, CondBranch,
                                FCMP_PREDICATES, GetElementPtr,
                                INT_BINARY_OPS, Load, Ret, Select, Store,
                                Switch)
from ...ir.module import Module
from ...ir.types import (ArrayType, FloatType, FunctionType, IntType,
                         PointerType, Type, I1)
from ...ir.values import Constant, GlobalVariable, NullPointer, UndefValue, Value
from .diagnostics import Diagnostic, error

#: Codes this module can emit (each has a failing-input test).
TYPECHECK_CODES = (
    "binop-type",
    "compare-type",
    "cond-type",
    "select-type",
    "load-type",
    "store-type",
    "gep-type",
    "cast-type",
    "callee-type",
    "call-arg-type",
    "call-result-type",
    "ret-type",
    "switch-type",
    "global-init",
    "constant-value",
)


def _assignable(src: Type, dst: Type) -> bool:
    """Value of type ``src`` may flow into a slot of type ``dst``."""
    if src == dst:
        return True
    # opaque-pointer rule: fusion rewrites pointer slots to i8* and keeps
    # passing concretely-typed pointers through them (and vice versa)
    return src.is_pointer and dst.is_pointer


def _is_wildcard(value: Value) -> bool:
    return isinstance(value, UndefValue)


def check_function(function: Function) -> List[Diagnostic]:
    diagnostics: List[Diagnostic] = []
    if function.is_declaration:
        return diagnostics
    for block in function.blocks:
        for inst in block.instructions:
            checker = _CHECKERS.get(type(inst))
            if checker is not None:
                checker(function, block, inst, diagnostics)
            for op in inst.operands:
                if isinstance(op, Constant):
                    _check_constant(function, block, op, diagnostics)
    return diagnostics


def check_module(module: Module) -> List[Diagnostic]:
    diagnostics: List[Diagnostic] = []
    for variable in module.globals.values():
        _check_global(variable, diagnostics)
    for function in module.functions.values():
        diagnostics.extend(check_function(function))
    return diagnostics


# -- per-instruction checks --------------------------------------------------------


def _check_binop(function, block, inst: BinaryOp, out) -> None:
    lhs, rhs = inst.lhs, inst.rhs
    if _is_wildcard(lhs) or _is_wildcard(rhs):
        return
    if inst.op in INT_BINARY_OPS:
        if lhs.type.is_pointer and inst.op in ("add", "sub"):
            # the interpreter's pointer-arithmetic escape hatch
            if not rhs.type.is_integer or not _assignable(lhs.type, inst.type):
                out.append(error(
                    "binop-type",
                    f"pointer {inst.op} needs an integer right operand and a "
                    f"pointer result, got {rhs.type} -> {inst.type}",
                    function.name, block.name))
            return
        if not lhs.type.is_integer or lhs.type != rhs.type:
            out.append(error(
                "binop-type",
                f"integer {inst.op} on {lhs.type}, {rhs.type}",
                function.name, block.name))
        elif inst.type != lhs.type:
            out.append(error(
                "binop-type",
                f"{inst.op} result type {inst.type} != operand type {lhs.type}",
                function.name, block.name))
        return
    # float ops
    if not lhs.type.is_float or lhs.type != rhs.type:
        out.append(error(
            "binop-type", f"float {inst.op} on {lhs.type}, {rhs.type}",
            function.name, block.name))
    elif inst.type != lhs.type:
        out.append(error(
            "binop-type",
            f"{inst.op} result type {inst.type} != operand type {lhs.type}",
            function.name, block.name))


def _check_compare(function, block, inst: Compare, out) -> None:
    lhs, rhs = inst.lhs, inst.rhs
    if inst.type != I1:
        out.append(error("compare-type",
                         f"compare result type {inst.type} is not i1",
                         function.name, block.name))
    if _is_wildcard(lhs) or _is_wildcard(rhs):
        return
    if inst.predicate in FCMP_PREDICATES:
        if not lhs.type.is_float or lhs.type != rhs.type:
            out.append(error(
                "compare-type",
                f"fcmp {inst.predicate} on {lhs.type}, {rhs.type}",
                function.name, block.name))
        return
    if lhs.type.is_pointer and rhs.type.is_pointer:
        return
    if not lhs.type.is_integer or lhs.type != rhs.type:
        out.append(error(
            "compare-type",
            f"icmp {inst.predicate} on {lhs.type}, {rhs.type}",
            function.name, block.name))


def _check_load(function, block, inst: Load, out) -> None:
    pointer = inst.pointer
    if _is_wildcard(pointer):
        return
    if not pointer.type.is_pointer:
        out.append(error("load-type",
                         f"load from non-pointer type {pointer.type}",
                         function.name, block.name))
        return
    pointee = pointer.type.pointee
    if isinstance(pointee, ArrayType):
        pointee = pointee.element
    if not (_assignable(pointee, inst.type) or _opaque_slot(pointee)):
        out.append(error(
            "load-type",
            f"load of {inst.type} through pointer to {pointer.type.pointee}",
            function.name, block.name))


def _check_store(function, block, inst: Store, out) -> None:
    value, pointer = inst.value, inst.pointer
    if _is_wildcard(value) or _is_wildcard(pointer):
        return
    if not pointer.type.is_pointer:
        out.append(error("store-type",
                         f"store to non-pointer type {pointer.type}",
                         function.name, block.name))
        return
    pointee = pointer.type.pointee
    if isinstance(pointee, ArrayType):
        pointee = pointee.element
    if not (_assignable(value.type, pointee) or _opaque_slot(pointee)):
        out.append(error(
            "store-type",
            f"store of {value.type} through pointer to "
            f"{pointer.type.pointee}", function.name, block.name))


def _opaque_slot(pointee: Type) -> bool:
    """i8 slots act as opaque byte storage (fusion's merged pointer slots)."""
    return isinstance(pointee, IntType) and pointee.bits == 8


def _check_gep(function, block, inst: GetElementPtr, out) -> None:
    pointer, index = inst.pointer, inst.index
    if not _is_wildcard(pointer) and not pointer.type.is_pointer:
        out.append(error("gep-type",
                         f"gep on non-pointer type {pointer.type}",
                         function.name, block.name))
    if not _is_wildcard(index) and not index.type.is_integer:
        out.append(error("gep-type",
                         f"gep index of non-integer type {index.type}",
                         function.name, block.name))
    if not inst.type.is_pointer:
        out.append(error("gep-type",
                         f"gep result type {inst.type} is not a pointer",
                         function.name, block.name))


def _check_cast(function, block, inst: Cast, out) -> None:
    if _is_wildcard(inst.value):
        return
    src, dst = inst.value.type, inst.type
    kind = inst.kind
    ok = True
    if kind == "trunc":
        ok = src.is_integer and dst.is_integer and src.bits >= dst.bits
    elif kind in ("zext", "sext"):
        ok = src.is_integer and dst.is_integer and src.bits <= dst.bits
    elif kind == "fptrunc":
        ok = src.is_float and dst.is_float and src.bits >= dst.bits
    elif kind == "fpext":
        ok = src.is_float and dst.is_float and src.bits <= dst.bits
    elif kind == "fptosi":
        ok = src.is_float and dst.is_integer
    elif kind == "sitofp":
        ok = src.is_integer and dst.is_float
    elif kind == "ptrtoint":
        ok = src.is_pointer and dst.is_integer
    elif kind == "inttoptr":
        ok = src.is_integer and dst.is_pointer
    elif kind == "bitcast":
        ok = ((src.is_pointer and dst.is_pointer) or src == dst
              or (_scalar_bits(src) is not None
                  and _scalar_bits(src) == _scalar_bits(dst)))
    if not ok:
        out.append(error("cast-type", f"invalid {kind} from {src} to {dst}",
                         function.name, block.name))


def _scalar_bits(type_: Type) -> Optional[int]:
    if isinstance(type_, (IntType, FloatType)):
        return type_.bits
    return None


def _check_select(function, block, inst: Select, out) -> None:
    cond = inst.condition
    if not _is_wildcard(cond) and cond.type != I1:
        out.append(error("cond-type",
                         f"select condition type {cond.type} is not i1",
                         function.name, block.name))
    tv, fv = inst.true_value, inst.false_value
    if _is_wildcard(tv) or _is_wildcard(fv):
        return
    if not _assignable(tv.type, fv.type) and not _assignable(fv.type, tv.type):
        out.append(error("select-type",
                         f"select arms of types {tv.type}, {fv.type}",
                         function.name, block.name))
    elif not _assignable(tv.type, inst.type):
        out.append(error(
            "select-type",
            f"select result type {inst.type} != arm type {tv.type}",
            function.name, block.name))


def _check_cond_branch(function, block, inst: CondBranch, out) -> None:
    cond = inst.condition
    if not _is_wildcard(cond) and cond.type != I1:
        out.append(error("cond-type",
                         f"condbr condition type {cond.type} is not i1",
                         function.name, block.name))


def _check_switch(function, block, inst: Switch, out) -> None:
    value = inst.value
    if not _is_wildcard(value) and not value.type.is_integer:
        out.append(error("switch-type",
                         f"switch on non-integer type {value.type}",
                         function.name, block.name))
    for constant, _target in inst.cases:
        if not isinstance(constant, Constant) or not constant.type.is_integer:
            out.append(error(
                "switch-type",
                f"switch case constant of type "
                f"{getattr(constant, 'type', None)}",
                function.name, block.name))


def _check_call(function, block, inst: Call, out) -> None:
    callee = inst.callee
    ftype = _callee_function_type(callee)
    if ftype is None:
        out.append(error(
            "callee-type",
            f"call target has non-function type {callee.type}",
            function.name, block.name))
        return
    for index, (arg, param) in enumerate(zip(inst.args, ftype.param_types)):
        if _is_wildcard(arg):
            continue
        if not _assignable(arg.type, param):
            out.append(error(
                "call-arg-type",
                f"argument {index} of type {arg.type} passed to parameter "
                f"of type {param}", function.name, block.name))
    want = ftype.return_type
    if want.is_void:
        if not inst.type.is_void:
            out.append(error(
                "call-result-type",
                f"call result type {inst.type} for void callee",
                function.name, block.name))
    elif inst.type.is_void or not _assignable(want, inst.type):
        out.append(error(
            "call-result-type",
            f"call result type {inst.type} != callee return type {want}",
            function.name, block.name))


def _callee_function_type(callee: Value) -> Optional[FunctionType]:
    type_ = callee.type
    if isinstance(type_, FunctionType):
        return type_
    if isinstance(type_, PointerType) and isinstance(type_.pointee,
                                                     FunctionType):
        return type_.pointee
    return None


def _check_ret(function, block, inst: Ret, out) -> None:
    value = inst.value
    want = function.return_type
    # void/value agreement is a structural check (ret-mismatch); here only
    # the type of a present value is validated
    if value is None or want.is_void or _is_wildcard(value):
        return
    if not _assignable(value.type, want):
        out.append(error(
            "ret-type",
            f"ret of {value.type} in function returning {want}",
            function.name, block.name))


_CHECKERS = {
    BinaryOp: _check_binop,
    Compare: _check_compare,
    Load: _check_load,
    Store: _check_store,
    GetElementPtr: _check_gep,
    Cast: _check_cast,
    Select: _check_select,
    CondBranch: _check_cond_branch,
    Switch: _check_switch,
    Call: _check_call,
    Ret: _check_ret,
}


# -- constants and globals ---------------------------------------------------------


def _check_constant(function, block, constant: Constant, out) -> None:
    type_ = constant.type
    value = constant.value
    if isinstance(constant, NullPointer):
        if not type_.is_pointer:
            out.append(error(
                "constant-value",
                f"null pointer constant of non-pointer type {type_}",
                function.name, block.name))
        return
    if isinstance(type_, IntType):
        if not isinstance(value, int) or not (type_.min_value <= value
                                              <= type_.max_value):
            out.append(error(
                "constant-value",
                f"integer constant {value!r} out of range for {type_}",
                function.name, block.name))
    elif isinstance(type_, FloatType):
        if not isinstance(value, float):
            out.append(error(
                "constant-value",
                f"float constant {value!r} is not a float",
                function.name, block.name))
    elif type_.is_pointer:
        if value != 0:
            out.append(error(
                "constant-value",
                f"pointer constant with non-null value {value!r}",
                function.name, block.name))


def _check_global(variable: GlobalVariable, out) -> None:
    init = variable.initializer
    if init is None:
        return
    value_type = variable.value_type
    location = f"@{variable.name}"
    if isinstance(value_type, ArrayType):
        if not isinstance(init, (list, tuple)):
            out.append(error(
                "global-init",
                f"array global {location} initialised with {type(init).__name__}"))
        elif len(init) > max(1, value_type.count):
            out.append(error(
                "global-init",
                f"array global {location} initialiser has {len(init)} "
                f"elements for {value_type}"))
        return
    if isinstance(value_type, IntType) and not isinstance(init, (int, bool)):
        out.append(error(
            "global-init",
            f"integer global {location} initialised with {init!r}"))
    elif isinstance(value_type, FloatType) and not isinstance(init,
                                                              (int, float)):
        out.append(error(
            "global-init",
            f"float global {location} initialised with {init!r}"))
