"""Deep static analysis of the IR: typed verification, dominance checks,
dataflow lints, cost-model consistency and generated-trace AST linting.

Public surface:

* :func:`~repro.analysis.static.verify.verify` /
  :func:`~repro.analysis.static.verify.verification_errors` — tiered
  verification (``structural`` / ``typed`` / ``full``) of a function,
  module or program;
* :class:`~repro.analysis.static.diagnostics.Diagnostic` and the baseline
  suppression helpers;
* :func:`~repro.analysis.static.costcheck.check_program` — cost-model
  consistency of compiled/superblock totals;
* :func:`~repro.analysis.static.ast_lint.lint_trace_source` /
  :func:`~repro.analysis.static.ast_lint.verify_trace_source` — the
  generated-code lint the TraceCompiler runs before accepting codegen.

``repro.ir.verifier`` remains the compatibility façade used across the
code base (``assert_valid``, string-valued ``verify_*``); it delegates
here.
"""

from .ast_lint import (TRACE_CODES, TraceLintError, lint_trace_source,
                       verify_trace_source)
from .costcheck import COST_CODES, check_interpreter, check_program
from .diagnostics import (Diagnostic, SEVERITY_ERROR, SEVERITY_WARNING,
                          apply_baseline, diagnostics_to_json, errors_only,
                          load_baseline, render_all, write_baseline)
from .dominance import DOMINANCE_CODES
from .lints import LINT_CODES
from .structural import STRUCTURAL_CODES
from .typecheck import TYPECHECK_CODES
from .verify import (DEFAULT_TIER, ENV_VAR, TIERS, resolve_tier,
                     verification_errors, verify, verify_function,
                     verify_module, verify_program)

#: Every diagnostic code the subsystem can emit.
ALL_CODES = (STRUCTURAL_CODES + TYPECHECK_CODES + DOMINANCE_CODES
             + LINT_CODES + COST_CODES + TRACE_CODES)

__all__ = [
    "ALL_CODES", "COST_CODES", "DEFAULT_TIER", "DOMINANCE_CODES",
    "Diagnostic", "ENV_VAR", "LINT_CODES", "SEVERITY_ERROR",
    "SEVERITY_WARNING", "STRUCTURAL_CODES", "TIERS", "TRACE_CODES",
    "TYPECHECK_CODES", "TraceLintError", "apply_baseline",
    "check_interpreter", "check_program", "diagnostics_to_json",
    "errors_only", "lint_trace_source", "load_baseline", "render_all",
    "resolve_tier", "verification_errors", "verify", "verify_function",
    "verify_module", "verify_program", "verify_trace_source",
    "write_baseline",
]
