"""Dataflow-powered lint passes (warnings; part of the ``full`` tier).

Built on the generic engine in :mod:`repro.analysis.static.dataflow` and the
pointer-base tracing of :mod:`repro.analysis.memory_effects`:

* ``unreachable-block`` — blocks the entry cannot reach;
* ``load-uninit`` — a load of a non-escaping local alloca that *no* path has
  stored to yet (defined behaviour — allocations are zero-initialised — but
  almost always a pass bug);
* ``dead-store`` — a store to a non-escaping local alloca that no later load
  can observe (bogus-CFG junk blocks trip this by design, which is exactly
  why it is a warning);
* ``undef-operand`` — an :class:`~repro.ir.values.UndefValue` flowing into
  anything other than a call argument (fusion's padded arguments are the
  only sanctioned use).
"""

from __future__ import annotations

from typing import List, Optional, Set

from ...ir.function import Function
from ...ir.instructions import (Alloca, Call, Cast, GetElementPtr, Load,
                                Store)
from ...ir.values import UndefValue, Value
from ..cfg import ControlFlowGraph
from ..manager import AnalysisManager
from ..memory_effects import trace_pointer_base
from .dataflow import solve_backward, solve_forward
from .diagnostics import Diagnostic, warning

#: Codes this module can emit (each has a failing-input test).
LINT_CODES = (
    "unreachable-block",
    "load-uninit",
    "dead-store",
    "undef-operand",
)


def check_function(function: Function,
                   analyses: Optional[AnalysisManager] = None
                   ) -> List[Diagnostic]:
    diagnostics: List[Diagnostic] = []
    if function.is_declaration:
        return diagnostics
    analyses = analyses if analyses is not None else AnalysisManager()
    cfg = analyses.cfg(function)

    for block in cfg.unreachable_blocks():
        diagnostics.append(warning("unreachable-block", "unreachable block",
                                   function.name, block.name))
    diagnostics.extend(_check_undef_operands(function))

    tracked = _tracked_allocas(function)
    if tracked:
        diagnostics.extend(_check_uninitialised_loads(function, cfg, tracked))
        diagnostics.extend(_check_dead_stores(function, cfg, tracked))
    return diagnostics


# -- undef flow --------------------------------------------------------------------


def _check_undef_operands(function: Function) -> List[Diagnostic]:
    diagnostics: List[Diagnostic] = []
    for block in function.blocks:
        for inst in block.instructions:
            for index, op in enumerate(inst.operands):
                if not isinstance(op, UndefValue):
                    continue
                if isinstance(inst, Call) and index >= 1:
                    continue  # padded fusion argument
                diagnostics.append(warning(
                    "undef-operand",
                    f"undef value flows into {inst.opcode}",
                    function.name, block.name))
    return diagnostics


# -- local alloca tracking ---------------------------------------------------------


def _tracked_allocas(function: Function) -> Set[Alloca]:
    """Non-escaping allocas of ``function`` — the ones the memory lints can
    reason about soundly.

    An alloca escapes when its address (or any GEP/cast-derived pointer)
    reaches anything other than a load, the pointer slot of a store, or
    further pointer arithmetic.
    """
    allocas: Set[Alloca] = set()
    for block in function.blocks:
        for inst in block.instructions:
            if isinstance(inst, Alloca):
                allocas.add(inst)
    if not allocas:
        return allocas

    escaped: Set[Alloca] = set()
    for block in function.blocks:
        for inst in block.instructions:
            for index, op in enumerate(inst.operands):
                base = trace_pointer_base(op)
                if not isinstance(base, Alloca) or base not in allocas:
                    continue
                if isinstance(inst, Load):
                    continue
                if isinstance(inst, Store) and index == 1:
                    continue
                if isinstance(inst, (GetElementPtr, Cast)) and index == 0:
                    continue
                escaped.add(base)
    return allocas - escaped


def _base_of(value: Value, tracked: Set[Alloca]) -> Optional[Alloca]:
    base = trace_pointer_base(value)
    if isinstance(base, Alloca) and base in tracked:
        return base
    return None


# -- definitely-uninitialised loads ------------------------------------------------


def _check_uninitialised_loads(function: Function, cfg: ControlFlowGraph,
                               tracked: Set[Alloca]) -> List[Diagnostic]:
    """Forward may-stored analysis: warn on loads no store can have reached."""

    def transfer(block, stored):
        out = set(stored)
        for inst in block.instructions:
            if isinstance(inst, Store):
                base = _base_of(inst.pointer, tracked)
                if base is not None:
                    out.add(base)
            if inst.is_terminator:
                break
        return frozenset(out)

    states = solve_forward(cfg, transfer)
    diagnostics: List[Diagnostic] = []
    for block, (in_state, _out) in states.items():
        stored = set(in_state)
        for inst in block.instructions:
            if isinstance(inst, Load):
                base = _base_of(inst.pointer, tracked)
                if base is not None and base not in stored:
                    diagnostics.append(warning(
                        "load-uninit",
                        f"load of %{base.name} before any store reaches it",
                        function.name, block.name))
            elif isinstance(inst, Store):
                base = _base_of(inst.pointer, tracked)
                if base is not None:
                    stored.add(base)
            if inst.is_terminator:
                break
    return diagnostics


# -- dead stores -------------------------------------------------------------------


def _check_dead_stores(function: Function, cfg: ControlFlowGraph,
                       tracked: Set[Alloca]) -> List[Diagnostic]:
    """Backward may-live analysis: warn on stores no later load can observe.

    Only whole-slot stores (the pointer operand is the alloca itself) are
    killed and reported; stores through derived pointers neither kill nor
    warn — they may target any element of the allocation.
    """

    def executed(block):
        out = []
        for inst in block.instructions:
            out.append(inst)
            if inst.is_terminator:
                break
        return out

    def transfer(block, live_after):
        live = set(live_after)
        for inst in reversed(executed(block)):
            if isinstance(inst, Load):
                base = _base_of(inst.pointer, tracked)
                if base is not None:
                    live.add(base)
            elif isinstance(inst, Store):
                base = _base_of(inst.pointer, tracked)
                if base is not None and inst.pointer is base:
                    live.discard(base)
        return frozenset(live)

    states = solve_backward(cfg, transfer)
    diagnostics: List[Diagnostic] = []
    for block, (live_after, _before) in states.items():
        live = set(live_after)
        for inst in reversed(executed(block)):
            if isinstance(inst, Load):
                base = _base_of(inst.pointer, tracked)
                if base is not None:
                    live.add(base)
            elif isinstance(inst, Store):
                base = _base_of(inst.pointer, tracked)
                if base is not None and inst.pointer is base:
                    if base not in live:
                        diagnostics.append(warning(
                            "dead-store",
                            f"store to %{base.name} is never observed",
                            function.name, block.name))
                    live.discard(base)
    return diagnostics
