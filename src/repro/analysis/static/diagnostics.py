"""Structured diagnostics for the IR static-analysis subsystem.

Every check in :mod:`repro.analysis.static` reports :class:`Diagnostic`
records instead of bare strings: a severity (``error`` aborts verification,
``warning`` is advisory lint output), a stable machine-readable code, a
human message and an IR location (function / block).  The records serialise
to JSON for tooling (``scripts/lint_ir.py --json``) and support a
*suppression baseline*: a JSON file of known-finding signatures that the CLI
subtracts from fresh runs, so a lint can be landed before every legacy
finding is fixed.
"""

from __future__ import annotations

import json

from dataclasses import dataclass
from typing import Dict, Iterable, List, Sequence, Tuple

SEVERITY_ERROR = "error"
SEVERITY_WARNING = "warning"


@dataclass(frozen=True)
class Diagnostic:
    """One finding: ``severity`` + stable ``code`` + message + IR location."""

    severity: str
    code: str
    message: str
    function: str = ""
    block: str = ""

    def signature(self) -> str:
        """Stable identity used by the suppression baseline.

        The message is deliberately excluded: wording changes must not
        un-suppress a known finding.
        """
        return f"{self.code}@{self.function}:{self.block}"

    def render(self) -> str:
        location = self.function
        if self.block:
            location = f"{location}:{self.block}"
        prefix = f"{location}: " if location else ""
        return f"{prefix}{self.message} [{self.code}]"

    def to_json(self) -> Dict[str, str]:
        return {
            "severity": self.severity,
            "code": self.code,
            "message": self.message,
            "function": self.function,
            "block": self.block,
        }

    @property
    def is_error(self) -> bool:
        return self.severity == SEVERITY_ERROR


def error(code: str, message: str, function: str = "",
          block: str = "") -> Diagnostic:
    return Diagnostic(SEVERITY_ERROR, code, message, function, block)


def warning(code: str, message: str, function: str = "",
            block: str = "") -> Diagnostic:
    return Diagnostic(SEVERITY_WARNING, code, message, function, block)


def errors_only(diagnostics: Iterable[Diagnostic]) -> List[Diagnostic]:
    return [d for d in diagnostics if d.is_error]


def render_all(diagnostics: Iterable[Diagnostic]) -> List[str]:
    return [d.render() for d in diagnostics]


def diagnostics_to_json(diagnostics: Sequence[Diagnostic]) -> str:
    return json.dumps([d.to_json() for d in diagnostics], indent=2,
                      sort_keys=True)


# -- suppression baseline ----------------------------------------------------------

BASELINE_SCHEMA = 1


def write_baseline(path, diagnostics: Sequence[Diagnostic]) -> None:
    """Persist the signatures of ``diagnostics`` as a suppression baseline."""
    payload = {
        "schema": BASELINE_SCHEMA,
        "suppressions": sorted({d.signature() for d in diagnostics}),
    }
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")


def load_baseline(path) -> frozenset:
    """Load a baseline file written by :func:`write_baseline`."""
    with open(path, "r", encoding="utf-8") as handle:
        payload = json.load(handle)
    if payload.get("schema") != BASELINE_SCHEMA:
        raise ValueError(
            f"unsupported baseline schema {payload.get('schema')!r} in {path}")
    return frozenset(payload.get("suppressions", ()))


def apply_baseline(diagnostics: Sequence[Diagnostic],
                   suppressions: Iterable[str]
                   ) -> Tuple[List[Diagnostic], List[Diagnostic]]:
    """Split ``diagnostics`` into ``(kept, suppressed)`` by signature."""
    suppressed_set = set(suppressions)
    kept: List[Diagnostic] = []
    suppressed: List[Diagnostic] = []
    for diagnostic in diagnostics:
        if diagnostic.signature() in suppressed_set:
            suppressed.append(diagnostic)
        else:
            kept.append(diagnostic)
    return kept, suppressed
