"""Tiered IR verification entry points.

Three tiers, selected per call or via ``REPRO_VERIFY_IR``:

* ``structural`` (default) — the classic shape checks: terminators, block
  membership, operand ownership, call arity (:mod:`.structural`);
* ``typed`` — structural plus full instruction/call/global type checking
  (:mod:`.typecheck`);
* ``full`` — typed plus dominance-based def-before-use (:mod:`.dominance`)
  and the dataflow lints (:mod:`.lints`; lints are warnings and never fail
  verification).

Deeper tiers only run when the structural tier is clean: type and dominance
checking assume blocks are well-formed (a dangling branch target or a null
operand would crash them, and the structural diagnostic is the actionable
one anyway).

Per-function results are cached through
:meth:`repro.analysis.manager.AnalysisManager.cached` under the pseudo-name
``verify:<tier>`` when a manager is supplied, so warm re-verification after
unrelated passes is a dictionary hit; any invalidation of the function
drops the entry (passes never list ``verify:*`` in ``preserves``).

The cost-model consistency lint (:mod:`.costcheck`) and the generated-trace
AST lint (:mod:`.ast_lint`) live outside these tiers: they check VM
execution state and generated Python rather than IR, and are wired into
``scripts/lint_ir.py`` and the TraceCompiler respectively.
"""

from __future__ import annotations

import os

from typing import List, Optional, Union

from ...ir.function import Function
from ...ir.module import Module, Program
from ...obs import metrics as obs_metrics
from ...obs import tracing as obs_tracing
from ..manager import AnalysisManager
from . import dominance, lints, structural, typecheck
from .diagnostics import Diagnostic, errors_only

TIERS = ("structural", "typed", "full")
DEFAULT_TIER = "structural"
ENV_VAR = "REPRO_VERIFY_IR"


def resolve_tier(tier: Union[None, bool, str] = None) -> str:
    """Resolve an explicit tier, ``True`` or ``None`` against the env var."""
    if tier is None or tier is True:
        tier = os.environ.get(ENV_VAR) or DEFAULT_TIER
    if tier not in TIERS:
        raise ValueError(
            f"unknown verify tier {tier!r}; expected one of {TIERS}")
    return tier


def verify_function(function: Function, tier: Union[None, bool, str] = None,
                    analyses: Optional[AnalysisManager] = None
                    ) -> List[Diagnostic]:
    """All diagnostics (errors and warnings) of ``function`` at ``tier``."""
    tier = resolve_tier(tier)
    obs_metrics.counter(f"verify.calls.{tier}")
    if analyses is None:
        return _verify_function_uncached(function, tier, None)
    return analyses.cached(
        function, f"verify:{tier}",
        lambda: _verify_function_uncached(function, tier, analyses))


def _verify_function_uncached(function: Function, tier: str,
                              analyses: Optional[AnalysisManager]
                              ) -> List[Diagnostic]:
    with obs_tracing.span("verify.function", cat="verify",
                          function=function.name, tier=tier):
        return _verify_tiers(function, tier, analyses)


def _verify_tiers(function: Function, tier: str,
                  analyses: Optional[AnalysisManager]) -> List[Diagnostic]:
    diagnostics = structural.check_function(function)
    if tier == "structural" or any(d.is_error for d in diagnostics):
        return diagnostics
    diagnostics.extend(typecheck.check_function(function))
    if tier == "typed" or any(d.is_error for d in diagnostics):
        return diagnostics
    local = analyses if analyses is not None else AnalysisManager()
    diagnostics.extend(dominance.check_function(function, local))
    diagnostics.extend(lints.check_function(function, local))
    return diagnostics


def verify_module(module: Module, tier: Union[None, bool, str] = None,
                  analyses: Optional[AnalysisManager] = None
                  ) -> List[Diagnostic]:
    tier = resolve_tier(tier)
    diagnostics: List[Diagnostic] = []
    if tier in ("typed", "full"):
        for variable in module.globals.values():
            typecheck._check_global(variable, diagnostics)
    for function in module.functions.values():
        diagnostics.extend(verify_function(function, tier, analyses))
    return diagnostics


def verify_program(program: Program, tier: Union[None, bool, str] = None,
                   analyses: Optional[AnalysisManager] = None
                   ) -> List[Diagnostic]:
    tier = resolve_tier(tier)
    diagnostics: List[Diagnostic] = []
    for module in program.modules:
        diagnostics.extend(verify_module(module, tier, analyses))
    return diagnostics


def verify(obj, tier: Union[None, bool, str] = None,
           analyses: Optional[AnalysisManager] = None) -> List[Diagnostic]:
    """Verify a Function, Module or Program; return all diagnostics."""
    if isinstance(obj, Function):
        return verify_function(obj, tier, analyses)
    if isinstance(obj, Module):
        return verify_module(obj, tier, analyses)
    if isinstance(obj, Program):
        return verify_program(obj, tier, analyses)
    raise TypeError(f"cannot verify {type(obj)!r}")


def verification_errors(obj, tier: Union[None, bool, str] = None,
                        analyses: Optional[AnalysisManager] = None
                        ) -> List[Diagnostic]:
    """Error-severity diagnostics only (what ``assert_valid`` raises on)."""
    return errors_only(verify(obj, tier, analyses))
