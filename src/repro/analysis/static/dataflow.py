"""A small generic forward/backward dataflow engine over the cached CFG.

The lint passes in :mod:`repro.analysis.static.lints` are all instances of
the classic iterative worklist scheme: per-block transfer functions over a
lattice of sets, merged at control-flow joins until a fixed point.  The
engine is deliberately tiny — facts are frozensets, merge is union (may
analyses) or intersection (must analyses) — which covers every lint shipped
here while staying obviously correct.
"""

from __future__ import annotations

from typing import Callable, Dict, FrozenSet, Tuple

from ...ir.basicblock import BasicBlock
from ..cfg import ControlFlowGraph

State = FrozenSet
#: transfer(block, in_state) -> out_state
Transfer = Callable[[BasicBlock, State], State]

MAY = "may"      # union at joins (something *may* hold on some path)
MUST = "must"    # intersection at joins (something holds on *every* path)


def solve_forward(cfg: ControlFlowGraph, transfer: Transfer,
                  entry_state: State = frozenset(),
                  merge: str = MAY) -> Dict[BasicBlock, Tuple[State, State]]:
    """Iterate ``transfer`` forward to a fixed point over reachable blocks.

    Returns ``{block: (in_state, out_state)}``.
    """
    return _solve(cfg, transfer, entry_state, merge, forward=True)


def solve_backward(cfg: ControlFlowGraph, transfer: Transfer,
                   exit_state: State = frozenset(),
                   merge: str = MAY) -> Dict[BasicBlock, Tuple[State, State]]:
    """Iterate ``transfer`` backward to a fixed point over reachable blocks.

    For a backward problem the "in" state of the returned pair is the state
    *after* the block (facts flowing in from its successors) and the "out"
    state is the state before it.
    """
    return _solve(cfg, transfer, exit_state, merge, forward=False)


def _solve(cfg: ControlFlowGraph, transfer: Transfer, boundary: State,
           merge: str, forward: bool) -> Dict[BasicBlock, Tuple[State, State]]:
    if merge not in (MAY, MUST):
        raise ValueError(f"unknown merge mode {merge!r}")
    blocks = cfg.reverse_post_order()
    if not forward:
        blocks = list(reversed(blocks))
    block_set = set(blocks)
    if forward:
        edges_in = {b: [p for p in cfg.predecessors.get(b, ())
                        if p in block_set] for b in blocks}
    else:
        edges_in = {b: [s for s in cfg.successors.get(b, ())
                        if s in block_set] for b in blocks}

    in_states: Dict[BasicBlock, State] = {}
    out_states: Dict[BasicBlock, State] = {}

    changed = True
    while changed:
        changed = False
        for block in blocks:
            sources = edges_in[block]
            computed = [out_states[s] for s in sources if s in out_states]
            if not sources:
                state = boundary
            elif not computed:
                # no processed source yet: start from the identity of the
                # merge (empty for may-union; for must-intersection wait for
                # the first processed source next sweep)
                state = in_states.get(block, frozenset())
            elif merge == MAY:
                state = frozenset().union(*computed)
            else:
                state = frozenset.intersection(*computed)
            out = transfer(block, state)
            if in_states.get(block) != state or out_states.get(block) != out:
                in_states[block] = state
                out_states[block] = out
                changed = True
    return {b: (in_states.get(b, frozenset()),
                out_states.get(b, frozenset())) for b in blocks}
