"""Dominance-based def-before-use verification (part of the ``full`` tier).

LLVM-verifier style: every use of an instruction result must be dominated by
its definition.  Within one block that means the definition appears earlier
in the instruction list; across blocks the defining block must dominate the
using block on the cached :class:`~repro.analysis.dominators.DominatorTree`.

Uses inside unreachable blocks are skipped (LLVM does the same — dominance
is undefined off the reachable CFG), but a *reachable* use of a value
defined only in an unreachable block is an error.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ...ir.function import Function
from ...ir.instructions import Instruction
from ..manager import AnalysisManager
from .diagnostics import Diagnostic, error

#: Codes this module can emit (each has a failing-input test).
DOMINANCE_CODES = (
    "use-before-def",
    "dominance",
    "unreachable-def",
)


def check_function(function: Function,
                   analyses: Optional[AnalysisManager] = None
                   ) -> List[Diagnostic]:
    diagnostics: List[Diagnostic] = []
    if function.is_declaration:
        return diagnostics
    analyses = analyses if analyses is not None else AnalysisManager()
    domtree = analyses.domtree(function)
    reachable = set(domtree.blocks())

    # instruction index within its block, for the same-block ordering check
    position: Dict[Instruction, int] = {}
    for block in function.blocks:
        for index, inst in enumerate(block.instructions):
            position[inst] = index

    fname = function.name
    for block in function.blocks:
        if block not in reachable:
            continue
        for inst in block.instructions:
            for op in inst.operands:
                if not isinstance(op, Instruction):
                    continue
                def_block = op.parent
                if def_block is None or def_block.parent is not function:
                    continue  # structural foreign-instruction covers this
                if def_block is block:
                    if position[op] >= position[inst]:
                        diagnostics.append(error(
                            "use-before-def",
                            f"%{op.name} used by {inst.opcode} before its "
                            f"definition", fname, block.name))
                    continue
                if def_block not in reachable:
                    diagnostics.append(error(
                        "unreachable-def",
                        f"%{op.name} is defined in unreachable block "
                        f"{def_block.name} but used reachably", fname,
                        block.name))
                    continue
                if not domtree.dominates(def_block, block):
                    diagnostics.append(error(
                        "dominance",
                        f"definition of %{op.name} in {def_block.name} does "
                        f"not dominate its use in {block.name}", fname,
                        block.name))
    return diagnostics
