"""Structural IR checks (the ``structural`` verify tier).

These are the original ``ir/verifier.py`` invariants — block shape,
terminator placement, branch-target and operand ownership, call arity,
return/void agreement — re-expressed as :class:`Diagnostic` records.  Blocks
and instructions hash by identity, so membership tests use direct object
sets (the historical ``id()``-keyed indirection is gone).
"""

from __future__ import annotations

from typing import List, Set

from ...ir.function import Function
from ...ir.instructions import Call, Instruction, Ret
from ...ir.values import Argument, Constant, GlobalVariable, UndefValue, Value
from .diagnostics import Diagnostic, error

#: Codes this module can emit (each has a failing-input test).
STRUCTURAL_CODES = (
    "empty-block",
    "missing-terminator",
    "multiple-terminators",
    "terminator-not-last",
    "foreign-branch-target",
    "null-operand",
    "foreign-argument",
    "foreign-instruction",
    "call-arity",
    "ret-mismatch",
)


def check_function(function: Function) -> List[Diagnostic]:
    diagnostics: List[Diagnostic] = []
    if function.is_declaration:
        return diagnostics

    blocks: Set[object] = set(function.blocks)
    defined: Set[Value] = set(function.args)
    for block in function.blocks:
        defined.update(block.instructions)

    fname = function.name
    for block in function.blocks:
        bname = block.name
        if not block.instructions:
            diagnostics.append(error("empty-block", "empty block",
                                     fname, bname))
            continue
        terminators = [i for i in block.instructions if i.is_terminator]
        if not terminators:
            diagnostics.append(error("missing-terminator",
                                     "missing terminator", fname, bname))
        elif len(terminators) > 1:
            diagnostics.append(error("multiple-terminators",
                                     "multiple terminators", fname, bname))
        elif not block.instructions[-1].is_terminator:
            diagnostics.append(error(
                "terminator-not-last",
                "terminator is not the last instruction", fname, bname))

        for inst in block.instructions:
            for succ in inst.successors():
                if succ not in blocks:
                    diagnostics.append(error(
                        "foreign-branch-target",
                        f"branch to block {getattr(succ, 'name', succ)!r} "
                        f"not in function", fname, bname))
            for op in inst.operands:
                if op is None:
                    diagnostics.append(error(
                        "null-operand",
                        f"null operand in {inst.opcode}", fname, bname))
                    continue
                if isinstance(op, (Constant, GlobalVariable, Function,
                                   UndefValue)):
                    continue
                if isinstance(op, Argument):
                    if op.function is not None and op.function is not function:
                        diagnostics.append(error(
                            "foreign-argument",
                            f"argument %{op.name} belongs to "
                            f"@{op.function.name}", fname, bname))
                    continue
                if isinstance(op, Instruction) and op not in defined:
                    diagnostics.append(error(
                        "foreign-instruction",
                        f"operand %{op.name} of {inst.opcode} is defined "
                        f"in another function", fname, bname))

            if isinstance(inst, Call):
                diagnostics.extend(_check_call_arity(function, block, inst))

            if isinstance(inst, Ret):
                want_void = function.return_type.is_void
                if want_void and inst.value is not None:
                    diagnostics.append(error(
                        "ret-mismatch", "ret with value in void function",
                        fname, bname))
                if not want_void and inst.value is None:
                    diagnostics.append(error(
                        "ret-mismatch", "ret void in non-void function",
                        fname, bname))
    return diagnostics


def _check_call_arity(function: Function, block, inst: Call) -> List[Diagnostic]:
    callee = inst.callee
    if not isinstance(callee, Function):
        return []
    expected = len(callee.ftype.param_types)
    got = len(inst.args)
    if callee.ftype.variadic:
        if got < expected:
            return [error(
                "call-arity",
                f"call to variadic @{callee.name} with too few args "
                f"({got} < {expected})", function.name, block.name)]
        return []
    if expected != got:
        return [error(
            "call-arity",
            f"call to @{callee.name} with {got} args, expected {expected}",
            function.name, block.name)]
    return []
