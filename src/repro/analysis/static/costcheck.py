"""Cost-model consistency lint.

The compiled dispatch tier precomputes a ``(count, total_cost)`` pair per
basic block (:meth:`repro.vm.compiler.BlockCompiler.compile_block`) and the
superblock tier sums those pairs into per-trace totals that are charged in
one batch.  A drift between those baked-in totals and the cost model —
a compile routine charging the wrong field, a trace built from stale
blocks — would silently corrupt every Figure 6/7 overhead measurement.

This lint statically recomputes each block's step count and cycle total
straight from :mod:`repro.vm.costs` and cross-checks:

* every block the interpreter has compiled (``cost-block``);
* every fused superblock trace against the sum of its member blocks
  (``cost-trace``).

Calls and ``unreachable`` contribute zero to a block's *precomputed* total
by design: calls charge their (static) cost mid-step to keep the legacy
cycle ordering around recursion, and the legacy path raises on
``unreachable`` before charging.  The static recomputation mirrors that.
"""

from __future__ import annotations

from typing import List, Tuple

from ...ir.basicblock import BasicBlock
from ...ir.instructions import (Alloca, BinaryOp, Branch, Call, Cast, Compare,
                                CondBranch, GetElementPtr, Instruction, Load,
                                Ret, Select, Store, Switch, Unreachable)
from ...vm.costs import CostModel
from .diagnostics import Diagnostic, error

#: Codes this module can emit (each has a failing-input test).
COST_CODES = (
    "cost-block",
    "cost-trace",
)


def static_instruction_cost(inst: Instruction, cost_model: CostModel) -> int:
    """The cycles ``inst`` contributes to its block's precomputed total."""
    if isinstance(inst, BinaryOp):
        return cost_model.arithmetic
    if isinstance(inst, Compare):
        return cost_model.compare
    if isinstance(inst, Alloca):
        return cost_model.alloca
    if isinstance(inst, Load):
        return cost_model.load
    if isinstance(inst, Store):
        return cost_model.store
    if isinstance(inst, GetElementPtr):
        return cost_model.gep
    if isinstance(inst, Cast):
        return cost_model.cast
    if isinstance(inst, Select):
        return cost_model.select
    if isinstance(inst, Call):
        return 0  # charged mid-step by the call closure itself
    if isinstance(inst, Ret):
        return cost_model.ret
    if isinstance(inst, Branch):
        return cost_model.branch
    if isinstance(inst, CondBranch):
        return cost_model.cond_branch
    if isinstance(inst, Switch):
        return cost_model.switch
    if isinstance(inst, Unreachable):
        return 0  # the legacy path raises before charging
    return 0


def static_block_cost(block: BasicBlock,
                      cost_model: CostModel) -> Tuple[int, int]:
    """``(step count, cycle total)`` of one run of ``block`` — execution
    stops at the first terminator, exactly like ``compile_block``."""
    count = 0
    cycles = 0
    for inst in block.instructions:
        count += 1
        cycles += static_instruction_cost(inst, cost_model)
        if inst.is_terminator:
            break
    return count, cycles


def check_interpreter(interpreter) -> List[Diagnostic]:
    """Cross-check every compiled block and trace cached on ``interpreter``."""
    diagnostics: List[Diagnostic] = []
    cost_model = interpreter.cost_model
    compiled_blocks = interpreter._compiled_blocks

    for block, compiled in compiled_blocks.items():
        count, cycles = static_block_cost(block, cost_model)
        baked_count, baked_cost = compiled[2], compiled[3]
        if (count, cycles) != (baked_count, baked_cost):
            function = block.parent
            diagnostics.append(error(
                "cost-block",
                f"compiled block totals ({baked_count} steps, {baked_cost} "
                f"cycles) != static recomputation ({count} steps, {cycles} "
                f"cycles)", function.name if function is not None else "",
                block.name))

    for head, trace in getattr(interpreter, "_traces", {}).items():
        count = 0
        cycles = 0
        for block in trace.blocks:
            block_count, block_cycles = static_block_cost(block, cost_model)
            count += block_count
            cycles += block_cycles
        if (count, cycles) != (trace.count, trace.total_cost):
            function = head.parent
            diagnostics.append(error(
                "cost-trace",
                f"superblock totals ({trace.count} steps, {trace.total_cost} "
                f"cycles) != sum of member blocks ({count} steps, {cycles} "
                f"cycles)", function.name if function is not None else "",
                head.name))
    return diagnostics


def check_program(program, cost_model=None) -> List[Diagnostic]:
    """Compile every block of ``program`` fresh and cross-check the totals.

    Builds a throwaway compiled-dispatch interpreter, forces compilation of
    every basic block, then delegates to :func:`check_interpreter` — the
    entry point ``scripts/lint_ir.py`` uses.
    """
    from ...vm.machine import Interpreter
    interpreter = Interpreter(program, cost_model=cost_model,
                              dispatch="compiled")
    from ...vm.compiler import BlockCompiler
    compiler = BlockCompiler(interpreter)
    for function in program.defined_functions():
        for block in function.blocks:
            if block not in interpreter._compiled_blocks:
                interpreter._compiled_blocks[block] = \
                    compiler.compile_block(function, block)
    return check_interpreter(interpreter)
