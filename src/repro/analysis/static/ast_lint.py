"""AST lint of TraceCompiler-generated Python source.

The superblock tier generates one Python function per fused trace
(:meth:`repro.vm.compiler.TraceCompiler._codegen`).  Its correctness
contract is narrow and purely syntactic, so it can be enforced on the
generated source *before* the code object is accepted:

* exactly one top-level ``def _trace(env):`` whose single parameter is the
  call environment — the **single-env invariant** (no other state flows in);
* straight-line code only: no loops, comprehensions, nested functions,
  imports or ``global``/``nonlocal`` — the **no-inter-block-dispatch
  invariant** (a trace replays one fused path and *returns* its outcome;
  it never loops back to dispatch another block itself);
* every name is from the known namespace: ``env``, the scratch locals the
  emitters use, bound objects (``_t<n>`` jump targets, ``_f<n>`` fallback
  closures, ``_g<n>`` immediates), the runtime helpers and a whitelist of
  builtins;
* ``env`` is only ever subscripted with an integer key or passed whole to a
  fallback closure — never aliased, attributed or leaked elsewhere;
* attribute access is limited to the runtime-object surface the emitters
  use (``allocation``/``cells``/``offset``, ``dict.get``, ``__class__``).

Violations are :class:`Diagnostic` errors; ``verify_trace_source`` raises,
which is how the TraceCompiler hook rejects bad codegen up front.
"""

from __future__ import annotations

import ast
import re

from typing import List

from .diagnostics import Diagnostic, error

#: Codes this module can emit (each has a failing-input test).
TRACE_CODES = (
    "trace-structure",
    "trace-banned-construct",
    "trace-unknown-name",
    "trace-env-misuse",
    "trace-attr",
    "trace-call",
)

#: scratch locals the emitters assign inside the trace body
_SCRATCH = {"_c", "_p", "_o", "_v", "_i", "_b"}
#: runtime helpers bound into every generated namespace
_HELPERS = {"_Pointer", "_Allocation", "_Return", "_tdiv"}
#: builtins the emitters may call
_BUILTINS = {"int", "float", "len"}
#: exception types the ``try``-guarded attempts catch before falling back
_EXCEPTIONS = {"KeyError", "TypeError", "AttributeError", "ValueError"}
#: bound-object names: _t<n> jump targets, _f<n> fallbacks, _g<n> immediates
_BOUND = re.compile(r"^_[tfg]\d+$")
#: attributes of runtime values the emitters touch
_ATTRS = {"allocation", "cells", "offset", "get", "__class__"}

_BANNED_NODES = (
    ast.For, ast.AsyncFor, ast.While, ast.With, ast.AsyncWith,
    ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef, ast.Lambda,
    ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp,
    ast.Import, ast.ImportFrom, ast.Global, ast.Nonlocal,
    ast.Yield, ast.YieldFrom, ast.Await, ast.Starred, ast.Delete,
    ast.Raise, ast.Assert, ast.Match,
)


class TraceLintError(Exception):
    """Generated trace source violated the codegen contract."""

    def __init__(self, diagnostics: List[Diagnostic]):
        super().__init__("\n".join(d.render() for d in diagnostics))
        self.diagnostics = diagnostics


def lint_trace_source(source: str, where: str = "") -> List[Diagnostic]:
    """Lint one generated trace source; returns diagnostics (errors only)."""
    out: List[Diagnostic] = []
    try:
        module = ast.parse(source)
    except SyntaxError as exc:
        return [error("trace-structure",
                      f"generated source does not parse: {exc}", where)]

    if (len(module.body) != 1
            or not isinstance(module.body[0], ast.FunctionDef)
            or module.body[0].name != "_trace"):
        out.append(error(
            "trace-structure",
            "generated module must be exactly one 'def _trace'", where))
        return out
    func = module.body[0]
    _annotate_parents(func)
    args = func.args
    if (len(args.args) != 1 or args.args[0].arg != "env"
            or args.posonlyargs or args.kwonlyargs or args.vararg
            or args.kwarg or args.defaults or args.kw_defaults
            or func.decorator_list):
        out.append(error(
            "trace-structure",
            "_trace must take exactly one parameter, 'env'", where))

    for node in ast.walk(func):
        if isinstance(node, _BANNED_NODES) and node is not func:
            out.append(error(
                "trace-banned-construct",
                f"{type(node).__name__} is not allowed in generated traces",
                where))
        elif isinstance(node, ast.Name):
            _check_name(node, where, out)
        elif isinstance(node, ast.Attribute):
            if node.attr not in _ATTRS:
                out.append(error(
                    "trace-attr",
                    f"attribute .{node.attr} is outside the runtime surface",
                    where))
        elif isinstance(node, ast.Call):
            _check_call(node, where, out)
    return out


def _is_env(node: ast.AST) -> bool:
    return isinstance(node, ast.Name) and node.id == "env"


def _check_name(node: ast.Name, where: str, out: List[Diagnostic]) -> None:
    name = node.id
    if (name in _SCRATCH or name in _HELPERS or name in _BUILTINS
            or _BOUND.match(name)):
        return
    if name in _EXCEPTIONS and _in_except_clause(node):
        return
    if name == "env":
        _check_env_use(node, where, out)
        return
    out.append(error("trace-unknown-name",
                     f"unknown name {name!r} in generated trace", where))


def _in_except_clause(node: ast.Name) -> bool:
    """True when ``node`` is (part of) an ``except <types>:`` clause."""
    parent = getattr(node, "_lint_parent", None)
    if isinstance(parent, ast.Tuple):
        parent = getattr(parent, "_lint_parent", None)
    return isinstance(parent, ast.ExceptHandler)


def _check_env_use(node: ast.Name, where: str,
                   out: List[Diagnostic]) -> None:
    parent = getattr(node, "_lint_parent", None)
    if isinstance(node.ctx, ast.Store):
        out.append(error("trace-env-misuse",
                         "env must never be rebound", where))
        return
    if isinstance(parent, ast.Subscript) and parent.value is node:
        index = parent.slice
        if not (isinstance(index, ast.Constant)
                and isinstance(index.value, int)):
            out.append(error(
                "trace-env-misuse",
                "env may only be subscripted with integer constants", where))
        return
    if isinstance(parent, ast.Call) and node in parent.args:
        func = parent.func
        if (isinstance(func, ast.Name) and func.id.startswith("_f")
                and _BOUND.match(func.id) and len(parent.args) == 1):
            return  # the whole env handed to a fallback closure
        out.append(error(
            "trace-env-misuse",
            "env may only be passed whole to a fallback closure", where))
        return
    out.append(error("trace-env-misuse",
                     "env used outside subscript/fallback positions", where))


def _check_call(node: ast.Call, where: str, out: List[Diagnostic]) -> None:
    if node.keywords:
        out.append(error("trace-call",
                         "keyword arguments are not emitted by codegen",
                         where))
    func = node.func
    if isinstance(func, ast.Name):
        name = func.id
        if name in _HELPERS or name in _BUILTINS or _BOUND.match(name):
            return
        out.append(error("trace-call",
                         f"call to unexpected target {name!r}", where))
        return
    if isinstance(func, ast.Attribute) and func.attr == "get":
        return  # switch tables: _g<n>.get(_v, _t<n>)
    out.append(error("trace-call",
                     "call target must be a bound name or a table .get",
                     where))


def _annotate_parents(func: ast.FunctionDef) -> None:
    for parent in ast.walk(func):
        for child in ast.iter_child_nodes(parent):
            child._lint_parent = parent


def verify_trace_source(source: str, where: str = "") -> None:
    """Raise :class:`TraceLintError` if ``source`` violates the contract."""
    diagnostics = lint_trace_source(source, where)
    if diagnostics:
        raise TraceLintError(diagnostics)
