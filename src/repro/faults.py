"""Seeded, deterministic fault injection (``REPRO_FAULTS``).

The fault-tolerance layer — the supervised executor's retries and pool
respawn, the store's corrupt-object quarantine, checkpoint/resume — is only
trustworthy if it can be exercised under *reproducible* chaos.  This module
injects three classes of fault at well-defined points:

* ``worker_crash`` — the worker process hard-exits (``os._exit``) at task
  entry, breaking the whole process pool exactly like a segfaulting or
  OOM-killed worker would;
* ``task_hang`` — the worker sleeps at task entry (default far longer than
  any sane ``REPRO_TASK_TIMEOUT``), exercising hung-worker kill + retry;
* ``task_error`` — the task raises :class:`FaultInjected` at entry,
  exercising the bounded-retry path without killing the worker;
* ``store_corrupt`` — the bytes of a store object are damaged as they are
  written (:meth:`FaultInjector.corrupt_payload`), exercising the store's
  read-path corruption detection, quarantine and rebuild;
* ``remote_fault`` — a remote-store HTTP request fails at the wire
  (:meth:`FaultInjector.maybe_remote_fault` raises a
  :class:`ConnectionResetError`), exercising the
  :class:`~repro.store.backend.RemoteBackend` retry/backoff loop.  Retries
  pass a fresh ``attempt`` and re-roll, so a bounded retry budget converges
  for any ``p < 1``.

The spec grammar (``REPRO_FAULTS``) is ``;``-separated rules::

    worker_crash:p=0.2,seed=7;store_corrupt:p=0.1,seed=7;task_hang:p=0.05

Each rule names a fault kind and gives ``p`` (firing probability), an
optional ``seed`` (default 0) and, for ``task_hang``, ``seconds`` (default
300).  **Decisions are not random draws**: whether a fault fires at a given
site is a pure function of ``(kind, seed, token, attempt)`` hashed through
SHA-256 and compared against ``p`` — the same spec over the same task matrix
injects the same faults no matter how processes are scheduled, which is what
makes every chaos test re-runnable.

Worker faults (``worker_crash``/``task_hang``/``task_error``) are applied
only by the supervised executor's *worker-side* task wrapper — the serial
in-process path stays the untouched differential reference even with
``REPRO_FAULTS`` exported.  ``store_corrupt`` applies wherever a store
writes objects, but fires at most **once per object per process**
(:attr:`FaultInjector._fired`), so the rebuild that follows a quarantined
read persists a clean copy instead of corrupting forever.
"""

from __future__ import annotations

import hashlib
import os
import time
from dataclasses import dataclass
from typing import Dict, Optional, Set, Tuple

from .obs import metrics as obs_metrics
from .obs import tracing as obs_tracing

#: The recognised fault kinds, in spec order.
FAULT_KINDS = ("worker_crash", "task_hang", "task_error", "store_corrupt",
               "remote_fault")

#: Exit status of an injected worker crash (distinguishable in pool logs
#: from a Python-level failure, which would raise instead of exiting).
CRASH_EXIT_CODE = 113

#: Default sleep of an injected hang — far beyond any sane task timeout, so
#: an unconfigured supervisor visibly stalls instead of silently passing.
DEFAULT_HANG_SECONDS = 300.0


class FaultInjected(RuntimeError):
    """An injected task failure (the ``task_error`` fault kind)."""


@dataclass(frozen=True)
class FaultRule:
    """One parsed rule of a ``REPRO_FAULTS`` spec."""

    kind: str
    probability: float
    seed: int = 0
    seconds: float = DEFAULT_HANG_SECONDS

    def fires(self, token: str, attempt: int = 0) -> bool:
        """Deterministic firing decision for one injection site.

        A pure function of the rule and ``(token, attempt)``: the first 8
        bytes of ``sha256(kind:seed:token:attempt)`` interpreted as a
        fraction of 2**64 and compared against ``p``.  Retries pass a fresh
        ``attempt`` and re-roll — a crashing task does not crash forever.
        """
        if self.probability <= 0.0:
            return False
        if self.probability >= 1.0:
            return True
        text = f"{self.kind}:{self.seed}:{token}:{attempt}"
        digest = hashlib.sha256(text.encode("utf-8")).digest()
        draw = int.from_bytes(digest[:8], "big") / float(1 << 64)
        return draw < self.probability


def parse_faults(spec: str) -> Dict[str, FaultRule]:
    """Parse a ``REPRO_FAULTS`` spec into rules keyed by fault kind.

    Raises :class:`ValueError` on anything malformed — an operator typo must
    surface at startup, not silently disable the chaos they asked for.
    """
    rules: Dict[str, FaultRule] = {}
    for part in spec.split(";"):
        part = part.strip()
        if not part:
            continue
        kind, _, params = part.partition(":")
        kind = kind.strip()
        if kind not in FAULT_KINDS:
            raise ValueError(
                f"REPRO_FAULTS: unknown fault kind {kind!r} "
                f"(expected one of {', '.join(FAULT_KINDS)})")
        if kind in rules:
            raise ValueError(f"REPRO_FAULTS: duplicate rule for {kind!r}")
        probability: Optional[float] = None
        seed = 0
        seconds = DEFAULT_HANG_SECONDS
        for item in params.split(","):
            item = item.strip()
            if not item:
                continue
            name, sep, raw = item.partition("=")
            if not sep:
                raise ValueError(
                    f"REPRO_FAULTS: malformed parameter {item!r} in {part!r}")
            name = name.strip()
            raw = raw.strip()
            try:
                if name == "p":
                    probability = float(raw)
                elif name == "seed":
                    seed = int(raw)
                elif name == "seconds":
                    seconds = float(raw)
                else:
                    raise ValueError(
                        f"REPRO_FAULTS: unknown parameter {name!r} in {part!r}")
            except ValueError as error:
                if "REPRO_FAULTS" in str(error):
                    raise
                raise ValueError(
                    f"REPRO_FAULTS: invalid value {raw!r} for {name!r} "
                    f"in {part!r}")
        if probability is None:
            raise ValueError(f"REPRO_FAULTS: rule {part!r} is missing p=")
        if not 0.0 <= probability <= 1.0:
            raise ValueError(
                f"REPRO_FAULTS: p must be within [0, 1], got {probability}")
        if seconds <= 0:
            raise ValueError(
                f"REPRO_FAULTS: seconds must be positive, got {seconds}")
        rules[kind] = FaultRule(kind=kind, probability=probability,
                                seed=seed, seconds=seconds)
    return rules


class FaultInjector:
    """Applies a parsed fault plan at the pipeline's injection points.

    One instance per process (see :func:`active_injector`); the ``fired``
    counters let tests and chaos harnesses assert that the plan actually
    exercised something instead of vacuously passing.
    """

    def __init__(self, rules: Dict[str, FaultRule]):
        self.rules = dict(rules)
        self.fired: Dict[str, int] = {kind: 0 for kind in self.rules}
        #: (kind, token) pairs that already fired in this process — used by
        #: fire-once faults (``store_corrupt``) so self-healing converges.
        self._fired: Set[Tuple[str, str]] = set()

    def _decide(self, kind: str, token: str, attempt: int) -> bool:
        rule = self.rules.get(kind)
        if rule is None or not rule.fires(token, attempt):
            return False
        self.fired[kind] += 1
        # mirror into telemetry so merged chaos traces show injections;
        # a worker_crash event is lost with the process (never flushed),
        # but the coordinator's pool_respawn event still marks it
        obs_metrics.counter(f"faults.injected.{kind}")
        obs_tracing.event("fault.injected", cat="task", kind=kind,
                          token=token, attempt=attempt)
        return True

    # -- worker-side faults (applied by the supervised executor wrapper) ----------

    def maybe_crash(self, token: str, attempt: int = 0) -> None:
        """Hard-exit the process, like a segfault or the OOM killer would."""
        if self._decide("worker_crash", token, attempt):
            os._exit(CRASH_EXIT_CODE)

    def maybe_hang(self, token: str, attempt: int = 0) -> None:
        """Stall the task long enough to trip any configured timeout."""
        if self._decide("task_hang", token, attempt):
            time.sleep(self.rules["task_hang"].seconds)

    def maybe_error(self, token: str, attempt: int = 0) -> None:
        """Raise a retryable task failure."""
        if self._decide("task_error", token, attempt):
            raise FaultInjected(
                f"injected task_error at {token!r} (attempt {attempt})")

    # -- store-side faults --------------------------------------------------------

    def maybe_remote_fault(self, token: str, attempt: int = 0) -> None:
        """Fail a remote-store request like a dropped connection would.

        Raises :class:`ConnectionResetError` (an ``OSError``), which the
        remote backend's retry loop treats exactly like a real network
        failure: counted per-cause, retried with backoff, re-rolled per
        attempt.
        """
        if self._decide("remote_fault", token, attempt):
            raise ConnectionResetError(
                f"injected remote_fault at {token!r} (attempt {attempt})")

    def corrupt_payload(self, token: str, data: bytes) -> bytes:
        """Damage an object's bytes on their way to disk — at most once per
        ``token`` per process, so the post-quarantine rebuild writes clean."""
        if ("store_corrupt", token) in self._fired:
            return data
        if not self._decide("store_corrupt", token, 0):
            return data
        self._fired.add(("store_corrupt", token))
        # truncate and append garbage: fails unpickling without tripping any
        # short-read special case
        return data[:max(1, len(data) // 2)] + b"\xde\xad\xbe\xef"


_INJECTOR: Optional[FaultInjector] = None
_INJECTOR_SPEC: Optional[str] = None


def active_injector(environ=os.environ) -> Optional[FaultInjector]:
    """The process-wide injector for the current ``REPRO_FAULTS`` spec.

    ``None`` when no spec is set — the common case, and the reason every
    injection point guards with one cheap env read.  The injector is rebuilt
    whenever the spec string changes (tests monkeypatch it per scenario);
    its fire-once state intentionally resets with it.
    """
    global _INJECTOR, _INJECTOR_SPEC
    spec = environ.get("REPRO_FAULTS", "").strip()
    if not spec:
        _INJECTOR = None
        _INJECTOR_SPEC = None
        return None
    if _INJECTOR is None or _INJECTOR_SPEC != spec:
        _INJECTOR = FaultInjector(parse_faults(spec))
        _INJECTOR_SPEC = spec
    return _INJECTOR


def reset_injector() -> None:
    """Drop the cached injector (tests use this to isolate scenarios)."""
    global _INJECTOR, _INJECTOR_SPEC
    _INJECTOR = None
    _INJECTOR_SPEC = None
