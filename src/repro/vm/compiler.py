"""Compiled-dispatch fast path for the interpreter.

The baseline interpreter walks a long ``isinstance`` ladder for every executed
instruction and re-resolves every operand through a second ``isinstance``
ladder (:meth:`Interpreter._value`).  For the overhead experiments (Figures 6
and 7) each workload executes tens of thousands of steps, so this per-step
dispatch dominates the whole measurement loop.

:class:`BlockCompiler` removes the per-step work:

* a **per-instruction-class dispatch table** (:attr:`BlockCompiler._COMPILERS`)
  maps each concrete instruction class to a compile routine, resolved once per
  static instruction instead of once per executed step;
* each compile routine emits a **step closure** with pre-resolved operand
  slots: constants are captured as raw Python values, globals as their
  interpreter :class:`Pointer`, function references as :class:`FuncPointer`
  objects, and SSA values as captured ``id()`` keys into the per-call
  environment dict — fetched inline (``env[key]``) in the hot instruction
  classes, exactly mirroring :meth:`Interpreter._value`;
* per-instruction cycle costs are fully static (including the direct/indirect
  call surcharge), so the interpreter charges a precomputed **block total**
  once per executed call-free block instead of chasing cost-model attributes
  per step; blocks containing calls are charged per step, in legacy order.

The compiled form of a block is the tuple
``(body, last, count, total_cost, per_step, has_call)``: ``body`` holds the
closures before the terminator (their return values are ignored), ``last`` is
the terminator closure (the only one whose outcome is inspected), and
``per_step`` pairs every closure with its individual cost for the exact-
accounting slow path (step limit in reach, or a call in the block).

Compiled blocks are built lazily the first time a block executes and cached on
the interpreter; :meth:`Interpreter.invalidate_compiled` drops the cache for a
function whose IR changed.  Semantics — observable output, cycle counts, step
counts, error behaviour — are identical to the legacy path on every program
that runs to completion (including ``exit()``), which is differential-tested
in ``tests/test_vm_compiled.py``.  The single permitted divergence: when a
program *aborts* with an :class:`ExecutionError` mid-block, the partially-
charged counters on the (discarded) interpreter may differ from legacy.
"""

from __future__ import annotations

import operator

from typing import Callable, Dict, List, Optional, Tuple

from ..ir.basicblock import BasicBlock
from ..ir.function import Function
from ..ir.instructions import (Alloca, BinaryOp, Branch, Call, Cast, Compare,
                               CondBranch, GetElementPtr, Instruction, Load,
                               Ret, Select, Store, Switch, Unreachable)
from ..ir.types import IntType
from ..ir.values import (Constant, GlobalVariable, NullPointer, UndefValue,
                         Value)

#: A compiled step: executes one instruction against the environment and
#: returns ``None`` (fall through), a :class:`BasicBlock` (jump) or a
#: ``_Return`` marker.
Step = Callable[[dict], object]

#: ``(body, last, count, total_cost, per_step, has_call)`` — see module docs.
CompiledBlock = Tuple[Tuple[Step, ...], Optional[Step], int, int,
                      Tuple[Tuple[Step, int], ...], bool]

_ORDERED_PREDICATES = {
    "eq": operator.eq, "ne": operator.ne,
    "slt": operator.lt, "sle": operator.le,
    "sgt": operator.gt, "sge": operator.ge,
    "oeq": operator.eq, "one": operator.ne,
    "olt": operator.lt, "ole": operator.le,
    "ogt": operator.gt, "oge": operator.ge,
}


class BlockCompiler:
    """Compiles basic blocks of one :class:`Interpreter` into step closures."""

    def __init__(self, interpreter):
        # the import is deferred to avoid a circular import at module load
        from .machine import (Allocation, ExecutionError, FuncPointer,
                              NULL_SENTINEL, Pointer, _Return, _truncated_div)
        self._interp = interpreter
        self._Allocation = Allocation
        self._ExecutionError = ExecutionError
        self._FuncPointer = FuncPointer
        self._Pointer = Pointer
        self._Return = _Return
        self._null = NULL_SENTINEL
        self._truncated_div = _truncated_div

    # -- operand pre-resolution ---------------------------------------------------

    def _slot(self, value: Optional[Value]):
        """Pre-resolve one operand.

        Returns ``(key, name, None)`` for SSA values living in the call
        environment, or ``(None, None, resolved)`` for operands whose runtime
        value is fixed at compile time — mirroring ``Interpreter._value`` with
        the type ladder hoisted out of the loop.
        """
        if value is None:
            return None, None, None
        if isinstance(value, NullPointer):
            return None, None, self._null
        if isinstance(value, Constant):
            return None, None, value.value
        if isinstance(value, UndefValue):
            return None, None, 0
        if isinstance(value, GlobalVariable):
            return None, None, self._interp.globals[value.name]
        if isinstance(value, Function):
            return None, None, self._FuncPointer(value, 0)
        return id(value), value.name, None

    def _operand(self, value: Optional[Value]) -> Step:
        """A getter closure for operand positions that stay generic."""
        key, name, imm = self._slot(value)
        if key is None:
            return lambda env: imm
        error = self._ExecutionError

        def get(env):
            try:
                return env[key]
            except KeyError:
                raise error(f"use of undefined value %{name}") from None
        return get

    def _undef(self, name: str):
        return self._ExecutionError(f"use of undefined value %{name}")

    # -- per-class compile routines -----------------------------------------------
    #
    # Every routine returns ``(step, cost)``.  Step closures are *bare*: they
    # do not touch the interpreter's counters (the block driver charges steps,
    # instructions and cycles) — except calls, which charge their own cycles
    # mid-step to keep the legacy ordering around recursion, and therefore
    # report a cost of 0.

    def _compile_binop(self, function: Function, inst: BinaryOp):
        cost = self._interp.cost_model.arithmetic
        key = id(inst)
        lk, ln, lv = self._slot(inst.lhs)
        rk, rn, rv = self._slot(inst.rhs)
        op = inst.op
        error = self._ExecutionError

        if op[0] == "f":
            if op == "fadd":
                apply = lambda a, b: float(a) + float(b)
            elif op == "fsub":
                apply = lambda a, b: float(a) - float(b)
            elif op == "fmul":
                apply = lambda a, b: float(a) * float(b)
            elif op == "fdiv":
                apply = lambda a, b: (float(a) / float(b)
                                      if float(b) != 0.0 else 0.0)
            else:
                raise error(f"unknown float op {op}")
        else:
            apply = self._int_binop(inst, op)

        if lk is not None and rk is not None:
            def step(env):
                try:
                    a = env[lk]
                except KeyError:
                    raise error(f"use of undefined value %{ln}") from None
                try:
                    b = env[rk]
                except KeyError:
                    raise error(f"use of undefined value %{rn}") from None
                env[key] = apply(a, b)
        elif lk is not None:
            def step(env):
                try:
                    a = env[lk]
                except KeyError:
                    raise error(f"use of undefined value %{ln}") from None
                env[key] = apply(a, rv)
        elif rk is not None:
            def step(env):
                try:
                    b = env[rk]
                except KeyError:
                    raise error(f"use of undefined value %{rn}") from None
                env[key] = apply(lv, b)
        else:
            def step(env):
                env[key] = apply(lv, rv)
        return step, cost

    def _int_binop(self, inst: BinaryOp, op: str):
        """An ``apply(lhs, rhs)`` for one integer binop, wrap folded in.

        The 64-bit forms — the overwhelming majority of executed arithmetic —
        are written out flat (one closure, branchless two's-complement wrap)
        so a binop step performs exactly one nested call.  ``add``/``sub``
        keep the legacy pointer-arithmetic escape hatch inline.
        """
        Pointer = self._Pointer
        trunc_div = self._truncated_div
        if isinstance(inst.type, IntType):
            bits = inst.type.bits
        else:
            bits = 0  # no wrapping (pointer-typed add/sub and the like)
        if bits > 1:
            half = 1 << (bits - 1)
            mask = (1 << bits) - 1
            # ((v + half) & mask) - half == IntType.wrap(v) for bits > 1
            if op == "add":
                def apply(a, b):
                    # int(Pointer) raises TypeError, so the pointer-arithmetic
                    # escape hatch costs nothing on the integer fast path
                    try:
                        return ((int(a) + int(b) + half) & mask) - half
                    except TypeError:
                        if isinstance(a, Pointer):
                            return a.moved(int(b))
                        raise
            elif op == "sub":
                def apply(a, b):
                    try:
                        return ((int(a) - int(b) + half) & mask) - half
                    except TypeError:
                        if isinstance(a, Pointer):
                            return a.moved(-int(b))
                        raise
            elif op == "mul":
                apply = lambda a, b: ((int(a) * int(b) + half) & mask) - half
            elif op == "sdiv":
                apply = lambda a, b: ((trunc_div(int(a), int(b)) + half)
                                      & mask) - half
            elif op == "srem":
                def apply(a, b):
                    a, b = int(a), int(b)
                    r = a - trunc_div(a, b) * b if b != 0 else 0
                    return ((r + half) & mask) - half
            elif op == "and":
                apply = lambda a, b: ((int(a) & int(b)) + half & mask) - half
            elif op == "or":
                apply = lambda a, b: ((int(a) | int(b)) + half & mask) - half
            elif op == "xor":
                apply = lambda a, b: ((int(a) ^ int(b)) + half & mask) - half
            elif op == "shl":
                apply = lambda a, b: ((int(a) << (int(b) & 63)) + half
                                      & mask) - half
            elif op == "ashr":
                apply = lambda a, b: ((int(a) >> (int(b) & 63)) + half
                                      & mask) - half
            else:
                raise self._ExecutionError(f"unknown integer op {op}")
            return apply

        if bits == 1:
            fix = lambda v: v & 1
        else:
            fix = lambda v: v
        if op == "add":
            def apply(a, b):
                if isinstance(a, Pointer):
                    return a.moved(int(b))
                return fix(int(a) + int(b))
        elif op == "sub":
            def apply(a, b):
                if isinstance(a, Pointer):
                    return a.moved(-int(b))
                return fix(int(a) - int(b))
        elif op == "mul":
            apply = lambda a, b: fix(int(a) * int(b))
        elif op == "sdiv":
            apply = lambda a, b: fix(trunc_div(int(a), int(b)))
        elif op == "srem":
            def apply(a, b):
                a, b = int(a), int(b)
                return fix(a - trunc_div(a, b) * b if b != 0 else 0)
        elif op == "and":
            apply = lambda a, b: fix(int(a) & int(b))
        elif op == "or":
            apply = lambda a, b: fix(int(a) | int(b))
        elif op == "xor":
            apply = lambda a, b: fix(int(a) ^ int(b))
        elif op == "shl":
            apply = lambda a, b: fix(int(a) << (int(b) & 63))
        elif op == "ashr":
            apply = lambda a, b: fix(int(a) >> (int(b) & 63))
        else:
            raise self._ExecutionError(f"unknown integer op {op}")
        return apply

    def _compile_compare(self, function: Function, inst: Compare):
        cost = self._interp.cost_model.compare
        key = id(inst)
        lk, ln, lv = self._slot(inst.lhs)
        rk, rn, rv = self._slot(inst.rhs)
        pred = inst.predicate
        cmp = _ORDERED_PREDICATES[pred]
        slow = self._interp._compare_values
        error = self._ExecutionError
        equality = pred in ("eq", "ne", "oeq", "one")

        # Equality predicates need no pointer special-casing at all: Pointer
        # and FuncPointer implement identity-shaped __eq__, which is exactly
        # what the legacy pointer branch computes.  Ordered predicates raise
        # TypeError on pointers, so the legacy identity-key comparison only
        # runs on that (cold) fallback.
        if lk is not None and rk is not None:
            if equality:
                def step(env):
                    try:
                        a = env[lk]
                        b = env[rk]
                    except KeyError:
                        name = ln if lk not in env else rn
                        raise error(f"use of undefined value %{name}") \
                            from None
                    env[key] = 1 if cmp(a, b) else 0
            else:
                def step(env):
                    try:
                        a = env[lk]
                        b = env[rk]
                    except KeyError:
                        name = ln if lk not in env else rn
                        raise error(f"use of undefined value %{name}") \
                            from None
                    try:
                        env[key] = 1 if cmp(a, b) else 0
                    except TypeError:
                        env[key] = slow(pred, a, b)
        elif lk is not None:
            if equality:
                def step(env):
                    try:
                        a = env[lk]
                    except KeyError:
                        raise error(f"use of undefined value %{ln}") from None
                    env[key] = 1 if cmp(a, rv) else 0
            else:
                def step(env):
                    try:
                        a = env[lk]
                    except KeyError:
                        raise error(f"use of undefined value %{ln}") from None
                    try:
                        env[key] = 1 if cmp(a, rv) else 0
                    except TypeError:
                        env[key] = slow(pred, a, rv)
        elif rk is not None:
            if equality:
                def step(env):
                    try:
                        b = env[rk]
                    except KeyError:
                        raise error(f"use of undefined value %{rn}") from None
                    env[key] = 1 if cmp(lv, b) else 0
            else:
                def step(env):
                    try:
                        b = env[rk]
                    except KeyError:
                        raise error(f"use of undefined value %{rn}") from None
                    try:
                        env[key] = 1 if cmp(lv, b) else 0
                    except TypeError:
                        env[key] = slow(pred, lv, b)
        else:
            def step(env):
                env[key] = slow(pred, lv, rv)
        return step, cost

    def _compile_alloca(self, function: Function, inst: Alloca):
        cost = self._interp.cost_model.alloca
        key = id(inst)
        size = max(1, inst.allocated_type.size_in_slots() * max(1, inst.count))
        label = f"%{inst.name}"
        Allocation = self._Allocation
        Pointer = self._Pointer

        def step(env):
            env[key] = Pointer(Allocation([0] * size, label=label), 0)
        return step, cost

    def _compile_load(self, function: Function, inst: Load):
        cost = self._interp.cost_model.load
        key = id(inst)
        pk, pn, pv = self._slot(inst.pointer)
        Pointer = self._Pointer
        error = self._ExecutionError

        if pk is not None:
            # only Pointer carries .allocation, so the AttributeError fallback
            # replaces an isinstance check on the hot path for free
            def step(env):
                try:
                    ptr = env[pk]
                except KeyError:
                    raise error(f"use of undefined value %{pn}") from None
                try:
                    cells = ptr.allocation.cells
                except AttributeError:
                    raise error(f"load from non-pointer value {ptr!r}") \
                        from None
                offset = ptr.offset
                if 0 <= offset < len(cells):
                    env[key] = cells[offset]
                else:
                    raise error(f"out-of-bounds load at "
                                f"{ptr.allocation.label}+{offset}")
        else:
            def step(env):
                ptr = pv
                if not isinstance(ptr, Pointer):
                    raise error(f"load from non-pointer value {ptr!r}")
                cells = ptr.allocation.cells
                offset = ptr.offset
                if 0 <= offset < len(cells):
                    env[key] = cells[offset]
                else:
                    raise error(f"out-of-bounds load at "
                                f"{ptr.allocation.label}+{offset}")
        return step, cost

    def _compile_store(self, function: Function, inst: Store):
        cost = self._interp.cost_model.store
        vk, vn, vv = self._slot(inst.value)
        pk, pn, pv = self._slot(inst.pointer)
        Pointer = self._Pointer
        error = self._ExecutionError

        if vk is not None and pk is not None:
            def step(env):
                try:
                    value = env[vk]
                except KeyError:
                    raise error(f"use of undefined value %{vn}") from None
                try:
                    ptr = env[pk]
                except KeyError:
                    raise error(f"use of undefined value %{pn}") from None
                try:
                    cells = ptr.allocation.cells
                except AttributeError:
                    raise error(f"store to non-pointer value {ptr!r}") \
                        from None
                offset = ptr.offset
                if 0 <= offset < len(cells):
                    cells[offset] = value
                else:
                    raise error(f"out-of-bounds store at "
                                f"{ptr.allocation.label}+{offset}")
        else:
            value_get = self._operand(inst.value)
            ptr_get = self._operand(inst.pointer)

            def step(env):
                value = value_get(env)
                ptr = ptr_get(env)
                if not isinstance(ptr, Pointer):
                    raise error(f"store to non-pointer value {ptr!r}")
                cells = ptr.allocation.cells
                offset = ptr.offset
                if 0 <= offset < len(cells):
                    cells[offset] = value
                else:
                    raise error(f"out-of-bounds store at "
                                f"{ptr.allocation.label}+{offset}")
        return step, cost

    def _compile_gep(self, function: Function, inst: GetElementPtr):
        cost = self._interp.cost_model.gep
        key = id(inst)
        ptr_get = self._operand(inst.pointer)
        ik, iname, iv = self._slot(inst.index)
        Pointer = self._Pointer
        error = self._ExecutionError
        fname = function.name

        if ik is not None:
            def step(env):
                ptr = ptr_get(env)
                try:
                    index = int(env[ik])
                except KeyError:
                    raise error(f"use of undefined value %{iname}") from None
                try:
                    env[key] = Pointer(ptr.allocation, ptr.offset + index)
                except AttributeError:
                    raise error(f"gep on non-pointer value in @{fname}") \
                        from None
        else:
            index = int(iv)

            def step(env):
                ptr = ptr_get(env)
                try:
                    env[key] = Pointer(ptr.allocation, ptr.offset + index)
                except AttributeError:
                    raise error(f"gep on non-pointer value in @{fname}") \
                        from None
        return step, cost

    def _compile_cast(self, function: Function, inst: Cast):
        cost = self._interp.cost_model.cast
        key = id(inst)
        value_get = self._operand(inst.value)
        kind = inst.kind
        to_type = inst.type
        error = self._ExecutionError

        if kind in ("bitcast", "inttoptr", "ptrtoint"):
            apply = lambda v: v
        elif kind in ("trunc", "zext", "sext"):
            if isinstance(to_type, IntType):
                wrap = to_type.wrap
                apply = lambda v: wrap(int(v))
            else:
                apply = lambda v: int(v)
        elif kind == "fptosi":
            apply = lambda v: int(v)
        elif kind in ("sitofp", "fpext", "fptrunc"):
            apply = lambda v: float(v)
        else:
            raise error(f"unknown cast kind {kind}")

        def step(env):
            env[key] = apply(value_get(env))
        return step, cost

    def _compile_select(self, function: Function, inst: Select):
        cost = self._interp.cost_model.select
        key = id(inst)
        cond_get = self._operand(inst.condition)
        true_get = self._operand(inst.true_value)
        false_get = self._operand(inst.false_value)

        # plain truth testing matches Interpreter._truthy for every runtime
        # value: Pointer/FuncPointer define no __bool__/__len__ and are truthy
        def step(env):
            chosen = true_get if cond_get(env) else false_get
            env[key] = chosen(env)
        return step, cost

    def _compile_call(self, function: Function, inst: Call):
        interp = self._interp
        key = id(inst)
        arg_gets = [self._operand(a) for a in inst.args]
        has_result = inst.has_result
        # the direct/indirect distinction is static: it depends on the callee
        # *operand*, not on the runtime value flowing through it
        indirect = not isinstance(inst.callee, Function)
        cost = interp.cost_model.call_cost(len(arg_gets), indirect=indirect)
        call_function = interp.call_function
        FuncPointer = self._FuncPointer
        error = self._ExecutionError
        fname = function.name

        if not indirect:
            target = inst.callee

            def step(env):
                args = [g(env) for g in arg_gets]
                interp.cycles += cost
                result = call_function(target, args)
                if has_result:
                    env[key] = result if result is not None else 0
            return step, 0

        callee_get = self._operand(inst.callee)
        # matches the legacy defensive branch: a raw Function value flowing
        # through an indirect callee is charged as a direct call
        direct_cost = interp.cost_model.call_cost(len(arg_gets), indirect=False)

        def step(env):
            callee = callee_get(env)
            args = [g(env) for g in arg_gets]
            if isinstance(callee, FuncPointer):
                target = callee.function
                interp.cycles += cost
            elif isinstance(callee, Function):  # pragma: no cover - defensive
                target = callee
                interp.cycles += direct_cost
            else:
                raise error(
                    f"indirect call through non-function value in @{fname}")
            result = call_function(target, args)
            if has_result:
                env[key] = result if result is not None else 0
        return step, 0

    # -- terminators --------------------------------------------------------------

    def _compile_ret(self, function: Function, inst: Ret):
        cost = self._interp.cost_model.ret
        Return = self._Return
        if inst.value is None:
            return (lambda env: Return(None)), cost
        value_get = self._operand(inst.value)
        return (lambda env: Return(value_get(env))), cost

    def _compile_branch(self, function: Function, inst: Branch):
        cost = self._interp.cost_model.branch
        target = inst.target
        return (lambda env: target), cost

    def _compile_cond_branch(self, function: Function, inst: CondBranch):
        cost = self._interp.cost_model.cond_branch
        ck, cn, cv = self._slot(inst.condition)
        true_target = inst.true_target
        false_target = inst.false_target
        error = self._ExecutionError

        if ck is not None:
            # plain truth testing matches Interpreter._truthy (see select)
            def step(env):
                try:
                    cond = env[ck]
                except KeyError:
                    raise error(f"use of undefined value %{cn}") from None
                return true_target if cond else false_target
        else:
            fixed = true_target if self._interp._truthy(cv) else false_target

            def step(env):
                return fixed
        return step, cost

    def _compile_switch(self, function: Function, inst: Switch):
        cost = self._interp.cost_model.switch
        value_get = self._operand(inst.value)
        table: Dict[int, BasicBlock] = {}
        # first matching case wins, exactly like the legacy linear scan
        for constant, target in inst.cases:
            table.setdefault(int(constant.value), target)
        default = inst.default_target
        get_target = table.get

        def step(env):
            return get_target(int(value_get(env)), default)
        return step, cost

    def _compile_unreachable(self, function: Function, inst: Unreachable):
        error = self._ExecutionError
        fname = function.name

        def step(env):
            raise error(f"reached unreachable in @{fname}")
        # the legacy path raises before charging any cycles
        return step, 0

    _COMPILERS = {
        BinaryOp: _compile_binop,
        Compare: _compile_compare,
        Alloca: _compile_alloca,
        Load: _compile_load,
        Store: _compile_store,
        GetElementPtr: _compile_gep,
        Cast: _compile_cast,
        Select: _compile_select,
        Call: _compile_call,
        Ret: _compile_ret,
        Branch: _compile_branch,
        CondBranch: _compile_cond_branch,
        Switch: _compile_switch,
        Unreachable: _compile_unreachable,
    }

    # -- block compilation ---------------------------------------------------------

    def compile_block(self, function: Function,
                      block: BasicBlock) -> CompiledBlock:
        """Compile ``block`` up to (and including) its first terminator.

        The legacy path never executes anything past the first terminator, so
        neither does the compiled form.
        """
        per_step: List[Tuple[Step, int]] = []
        has_call = False
        for inst in block.instructions:
            compiler = self._lookup(type(inst))
            if compiler is None:
                opcode = inst.opcode
                error = self._ExecutionError

                def step(env, _opcode=opcode, _error=error):
                    raise _error(f"unknown instruction {_opcode}")
                per_step.append((step, 0))
            else:
                if isinstance(inst, Call):
                    has_call = True
                per_step.append(compiler(self, function, inst))
            if inst.is_terminator:
                break
        steps = tuple(s for s, _ in per_step)
        total_cost = sum(c for _, c in per_step)
        body = steps[:-1] if steps else ()
        last = steps[-1] if steps else None
        return (body, last, len(steps), total_cost, tuple(per_step), has_call)

    @classmethod
    def _lookup(cls, inst_class):
        """Resolve a compile routine, honouring instruction subclasses."""
        for klass in inst_class.__mro__:
            compiler = cls._COMPILERS.get(klass)
            if compiler is not None:
                return compiler
        return None
