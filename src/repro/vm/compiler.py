"""Compiled-dispatch fast paths for the interpreter.

The baseline interpreter walks a long ``isinstance`` ladder for every executed
instruction and re-resolves every operand through a second ``isinstance``
ladder (:meth:`Interpreter._value`).  For the overhead experiments (Figures 6
and 7) each workload executes tens of thousands of steps, so this per-step
dispatch dominates the whole measurement loop.

Two tiers live here:

* :class:`BlockCompiler` — the per-block closure tier (``compiled`` dispatch);
* :class:`TraceCompiler` — the superblock tier (``superblock`` dispatch),
  which fuses hot chains of blocks — following unconditional branches and
  the hot arm of conditional ones, with guarded side exits for the cold
  arm — into one generated Python function per trace and falls back to the
  closures per instruction whenever an operand strays off the inlined fast
  path.

:class:`BlockCompiler` removes the per-step work:

* a **per-instruction-class dispatch table** (:attr:`BlockCompiler._COMPILERS`)
  maps each concrete instruction class to a compile routine, resolved once per
  static instruction instead of once per executed step;
* each compile routine emits a **step closure** with pre-resolved operand
  slots: constants are captured as raw Python values, globals as their
  interpreter :class:`Pointer`, function references as :class:`FuncPointer`
  objects, and SSA values as captured ``id()`` keys into the per-call
  environment dict — fetched inline (``env[key]``) in the hot instruction
  classes, exactly mirroring :meth:`Interpreter._value`;
* per-instruction cycle costs are fully static (including the direct/indirect
  call surcharge), so the interpreter charges a precomputed **block total**
  once per executed call-free block instead of chasing cost-model attributes
  per step; blocks containing calls are charged per step, in legacy order.

The compiled form of a block is the tuple
``(body, last, count, total_cost, per_step, has_call)``: ``body`` holds the
closures before the terminator (their return values are ignored), ``last`` is
the terminator closure (the only one whose outcome is inspected), and
``per_step`` pairs every closure with its individual cost for the exact-
accounting slow path (step limit in reach, or a call in the block).

Compiled blocks are built lazily the first time a block executes and cached on
the interpreter; :meth:`Interpreter.invalidate_compiled` drops the cache for a
function whose IR changed.  Semantics — observable output, cycle counts, step
counts, error behaviour — are identical to the legacy path on every program
that runs to completion (including ``exit()``), which is differential-tested
in ``tests/test_vm_compiled.py``.  The single permitted divergence: when a
program *aborts* with an :class:`ExecutionError` mid-block, the partially-
charged counters on the (discarded) interpreter may differ from legacy.
"""

from __future__ import annotations

import operator
import os

from typing import Callable, Dict, List, Optional, Tuple

from ..ir.basicblock import BasicBlock
from ..ir.function import Function
from ..ir.instructions import (Alloca, BinaryOp, Branch, Call, Cast, Compare,
                               CondBranch, GetElementPtr, Instruction, Load,
                               Ret, Select, Store, Switch, Unreachable)
from ..ir.types import IntType
from ..ir.values import (Constant, GlobalVariable, NullPointer, UndefValue,
                         Value)

#: A compiled step: executes one instruction against the environment and
#: returns ``None`` (fall through), a :class:`BasicBlock` (jump) or a
#: ``_Return`` marker.
Step = Callable[[dict], object]

#: ``(body, last, count, total_cost, per_step, has_call)`` — see module docs.
CompiledBlock = Tuple[Tuple[Step, ...], Optional[Step], int, int,
                      Tuple[Tuple[Step, int], ...], bool]

_ORDERED_PREDICATES = {
    "eq": operator.eq, "ne": operator.ne,
    "slt": operator.lt, "sle": operator.le,
    "sgt": operator.gt, "sge": operator.ge,
    "oeq": operator.eq, "one": operator.ne,
    "olt": operator.lt, "ole": operator.le,
    "ogt": operator.gt, "oge": operator.ge,
}


class BlockCompiler:
    """Compiles basic blocks of one :class:`Interpreter` into step closures."""

    def __init__(self, interpreter):
        # the import is deferred to avoid a circular import at module load
        from .machine import (Allocation, ExecutionError, FuncPointer,
                              NULL_SENTINEL, Pointer, _Return, _truncated_div)
        self._interp = interpreter
        self._Allocation = Allocation
        self._ExecutionError = ExecutionError
        self._FuncPointer = FuncPointer
        self._Pointer = Pointer
        self._Return = _Return
        self._null = NULL_SENTINEL
        self._truncated_div = _truncated_div

    # -- operand pre-resolution ---------------------------------------------------

    def _slot(self, value: Optional[Value]):
        """Pre-resolve one operand.

        Returns ``(key, name, None)`` for SSA values living in the call
        environment, or ``(None, None, resolved)`` for operands whose runtime
        value is fixed at compile time — mirroring ``Interpreter._value`` with
        the type ladder hoisted out of the loop.
        """
        if value is None:
            return None, None, None
        if isinstance(value, NullPointer):
            return None, None, self._null
        if isinstance(value, Constant):
            return None, None, value.value
        if isinstance(value, UndefValue):
            return None, None, 0
        if isinstance(value, GlobalVariable):
            return None, None, self._interp.globals[value.name]
        if isinstance(value, Function):
            return None, None, self._FuncPointer(value, 0)
        return id(value), value.name, None

    def _operand(self, value: Optional[Value]) -> Step:
        """A getter closure for operand positions that stay generic."""
        key, name, imm = self._slot(value)
        if key is None:
            return lambda env: imm
        error = self._ExecutionError

        def get(env):
            try:
                return env[key]
            except KeyError:
                raise error(f"use of undefined value %{name}") from None
        return get

    def _undef(self, name: str):
        return self._ExecutionError(f"use of undefined value %{name}")

    # -- per-class compile routines -----------------------------------------------
    #
    # Every routine returns ``(step, cost)``.  Step closures are *bare*: they
    # do not touch the interpreter's counters (the block driver charges steps,
    # instructions and cycles) — except calls, which charge their own cycles
    # mid-step to keep the legacy ordering around recursion, and therefore
    # report a cost of 0.

    def _compile_binop(self, function: Function, inst: BinaryOp):
        cost = self._interp.cost_model.arithmetic
        key = id(inst)
        lk, ln, lv = self._slot(inst.lhs)
        rk, rn, rv = self._slot(inst.rhs)
        op = inst.op
        error = self._ExecutionError

        if op[0] == "f":
            if op == "fadd":
                apply = lambda a, b: float(a) + float(b)
            elif op == "fsub":
                apply = lambda a, b: float(a) - float(b)
            elif op == "fmul":
                apply = lambda a, b: float(a) * float(b)
            elif op == "fdiv":
                apply = lambda a, b: (float(a) / float(b)
                                      if float(b) != 0.0 else 0.0)
            else:
                raise error(f"unknown float op {op}")
        else:
            apply = self._int_binop(inst, op)

        if lk is not None and rk is not None:
            def step(env):
                try:
                    a = env[lk]
                except KeyError:
                    raise error(f"use of undefined value %{ln}") from None
                try:
                    b = env[rk]
                except KeyError:
                    raise error(f"use of undefined value %{rn}") from None
                env[key] = apply(a, b)
        elif lk is not None:
            def step(env):
                try:
                    a = env[lk]
                except KeyError:
                    raise error(f"use of undefined value %{ln}") from None
                env[key] = apply(a, rv)
        elif rk is not None:
            def step(env):
                try:
                    b = env[rk]
                except KeyError:
                    raise error(f"use of undefined value %{rn}") from None
                env[key] = apply(lv, b)
        else:
            def step(env):
                env[key] = apply(lv, rv)
        return step, cost

    def _int_binop(self, inst: BinaryOp, op: str):
        """An ``apply(lhs, rhs)`` for one integer binop, wrap folded in.

        The 64-bit forms — the overwhelming majority of executed arithmetic —
        are written out flat (one closure, branchless two's-complement wrap)
        so a binop step performs exactly one nested call.  ``add``/``sub``
        keep the legacy pointer-arithmetic escape hatch inline.
        """
        Pointer = self._Pointer
        trunc_div = self._truncated_div
        if isinstance(inst.type, IntType):
            bits = inst.type.bits
        else:
            bits = 0  # no wrapping (pointer-typed add/sub and the like)
        if bits > 1:
            half = 1 << (bits - 1)
            mask = (1 << bits) - 1
            # ((v + half) & mask) - half == IntType.wrap(v) for bits > 1
            if op == "add":
                def apply(a, b):
                    # int(Pointer) raises TypeError, so the pointer-arithmetic
                    # escape hatch costs nothing on the integer fast path
                    try:
                        return ((int(a) + int(b) + half) & mask) - half
                    except TypeError:
                        if isinstance(a, Pointer):
                            return a.moved(int(b))
                        raise
            elif op == "sub":
                def apply(a, b):
                    try:
                        return ((int(a) - int(b) + half) & mask) - half
                    except TypeError:
                        if isinstance(a, Pointer):
                            return a.moved(-int(b))
                        raise
            elif op == "mul":
                apply = lambda a, b: ((int(a) * int(b) + half) & mask) - half
            elif op == "sdiv":
                apply = lambda a, b: ((trunc_div(int(a), int(b)) + half)
                                      & mask) - half
            elif op == "srem":
                def apply(a, b):
                    a, b = int(a), int(b)
                    r = a - trunc_div(a, b) * b if b != 0 else 0
                    return ((r + half) & mask) - half
            elif op == "and":
                apply = lambda a, b: ((int(a) & int(b)) + half & mask) - half
            elif op == "or":
                apply = lambda a, b: ((int(a) | int(b)) + half & mask) - half
            elif op == "xor":
                apply = lambda a, b: ((int(a) ^ int(b)) + half & mask) - half
            elif op == "shl":
                apply = lambda a, b: ((int(a) << (int(b) & 63)) + half
                                      & mask) - half
            elif op == "ashr":
                apply = lambda a, b: ((int(a) >> (int(b) & 63)) + half
                                      & mask) - half
            else:
                raise self._ExecutionError(f"unknown integer op {op}")
            return apply

        if bits == 1:
            fix = lambda v: v & 1
        else:
            fix = lambda v: v
        if op == "add":
            def apply(a, b):
                if isinstance(a, Pointer):
                    return a.moved(int(b))
                return fix(int(a) + int(b))
        elif op == "sub":
            def apply(a, b):
                if isinstance(a, Pointer):
                    return a.moved(-int(b))
                return fix(int(a) - int(b))
        elif op == "mul":
            apply = lambda a, b: fix(int(a) * int(b))
        elif op == "sdiv":
            apply = lambda a, b: fix(trunc_div(int(a), int(b)))
        elif op == "srem":
            def apply(a, b):
                a, b = int(a), int(b)
                return fix(a - trunc_div(a, b) * b if b != 0 else 0)
        elif op == "and":
            apply = lambda a, b: fix(int(a) & int(b))
        elif op == "or":
            apply = lambda a, b: fix(int(a) | int(b))
        elif op == "xor":
            apply = lambda a, b: fix(int(a) ^ int(b))
        elif op == "shl":
            apply = lambda a, b: fix(int(a) << (int(b) & 63))
        elif op == "ashr":
            apply = lambda a, b: fix(int(a) >> (int(b) & 63))
        else:
            raise self._ExecutionError(f"unknown integer op {op}")
        return apply

    def _compile_compare(self, function: Function, inst: Compare):
        cost = self._interp.cost_model.compare
        key = id(inst)
        lk, ln, lv = self._slot(inst.lhs)
        rk, rn, rv = self._slot(inst.rhs)
        pred = inst.predicate
        cmp = _ORDERED_PREDICATES[pred]
        slow = self._interp._compare_values
        error = self._ExecutionError
        equality = pred in ("eq", "ne", "oeq", "one")

        # Equality predicates need no pointer special-casing at all: Pointer
        # and FuncPointer implement identity-shaped __eq__, which is exactly
        # what the legacy pointer branch computes.  Ordered predicates raise
        # TypeError on pointers, so the legacy identity-key comparison only
        # runs on that (cold) fallback.
        if lk is not None and rk is not None:
            if equality:
                def step(env):
                    try:
                        a = env[lk]
                        b = env[rk]
                    except KeyError:
                        name = ln if lk not in env else rn
                        raise error(f"use of undefined value %{name}") \
                            from None
                    env[key] = 1 if cmp(a, b) else 0
            else:
                def step(env):
                    try:
                        a = env[lk]
                        b = env[rk]
                    except KeyError:
                        name = ln if lk not in env else rn
                        raise error(f"use of undefined value %{name}") \
                            from None
                    try:
                        env[key] = 1 if cmp(a, b) else 0
                    except TypeError:
                        env[key] = slow(pred, a, b)
        elif lk is not None:
            if equality:
                def step(env):
                    try:
                        a = env[lk]
                    except KeyError:
                        raise error(f"use of undefined value %{ln}") from None
                    env[key] = 1 if cmp(a, rv) else 0
            else:
                def step(env):
                    try:
                        a = env[lk]
                    except KeyError:
                        raise error(f"use of undefined value %{ln}") from None
                    try:
                        env[key] = 1 if cmp(a, rv) else 0
                    except TypeError:
                        env[key] = slow(pred, a, rv)
        elif rk is not None:
            if equality:
                def step(env):
                    try:
                        b = env[rk]
                    except KeyError:
                        raise error(f"use of undefined value %{rn}") from None
                    env[key] = 1 if cmp(lv, b) else 0
            else:
                def step(env):
                    try:
                        b = env[rk]
                    except KeyError:
                        raise error(f"use of undefined value %{rn}") from None
                    try:
                        env[key] = 1 if cmp(lv, b) else 0
                    except TypeError:
                        env[key] = slow(pred, lv, b)
        else:
            def step(env):
                env[key] = slow(pred, lv, rv)
        return step, cost

    def _compile_alloca(self, function: Function, inst: Alloca):
        cost = self._interp.cost_model.alloca
        key = id(inst)
        size = max(1, inst.allocated_type.size_in_slots() * max(1, inst.count))
        label = f"%{inst.name}"
        Allocation = self._Allocation
        Pointer = self._Pointer

        def step(env):
            env[key] = Pointer(Allocation([0] * size, label=label), 0)
        return step, cost

    def _compile_load(self, function: Function, inst: Load):
        cost = self._interp.cost_model.load
        key = id(inst)
        pk, pn, pv = self._slot(inst.pointer)
        Pointer = self._Pointer
        error = self._ExecutionError

        if pk is not None:
            # only Pointer carries .allocation, so the AttributeError fallback
            # replaces an isinstance check on the hot path for free
            def step(env):
                try:
                    ptr = env[pk]
                except KeyError:
                    raise error(f"use of undefined value %{pn}") from None
                try:
                    cells = ptr.allocation.cells
                except AttributeError:
                    raise error(f"load from non-pointer value {ptr!r}") \
                        from None
                offset = ptr.offset
                if 0 <= offset < len(cells):
                    env[key] = cells[offset]
                else:
                    raise error(f"out-of-bounds load at "
                                f"{ptr.allocation.label}+{offset}")
        else:
            def step(env):
                ptr = pv
                if not isinstance(ptr, Pointer):
                    raise error(f"load from non-pointer value {ptr!r}")
                cells = ptr.allocation.cells
                offset = ptr.offset
                if 0 <= offset < len(cells):
                    env[key] = cells[offset]
                else:
                    raise error(f"out-of-bounds load at "
                                f"{ptr.allocation.label}+{offset}")
        return step, cost

    def _compile_store(self, function: Function, inst: Store):
        cost = self._interp.cost_model.store
        vk, vn, vv = self._slot(inst.value)
        pk, pn, pv = self._slot(inst.pointer)
        Pointer = self._Pointer
        error = self._ExecutionError

        if vk is not None and pk is not None:
            def step(env):
                try:
                    value = env[vk]
                except KeyError:
                    raise error(f"use of undefined value %{vn}") from None
                try:
                    ptr = env[pk]
                except KeyError:
                    raise error(f"use of undefined value %{pn}") from None
                try:
                    cells = ptr.allocation.cells
                except AttributeError:
                    raise error(f"store to non-pointer value {ptr!r}") \
                        from None
                offset = ptr.offset
                if 0 <= offset < len(cells):
                    cells[offset] = value
                else:
                    raise error(f"out-of-bounds store at "
                                f"{ptr.allocation.label}+{offset}")
        else:
            value_get = self._operand(inst.value)
            ptr_get = self._operand(inst.pointer)

            def step(env):
                value = value_get(env)
                ptr = ptr_get(env)
                if not isinstance(ptr, Pointer):
                    raise error(f"store to non-pointer value {ptr!r}")
                cells = ptr.allocation.cells
                offset = ptr.offset
                if 0 <= offset < len(cells):
                    cells[offset] = value
                else:
                    raise error(f"out-of-bounds store at "
                                f"{ptr.allocation.label}+{offset}")
        return step, cost

    def _compile_gep(self, function: Function, inst: GetElementPtr):
        cost = self._interp.cost_model.gep
        key = id(inst)
        ptr_get = self._operand(inst.pointer)
        ik, iname, iv = self._slot(inst.index)
        Pointer = self._Pointer
        error = self._ExecutionError
        fname = function.name

        if ik is not None:
            def step(env):
                ptr = ptr_get(env)
                try:
                    index = int(env[ik])
                except KeyError:
                    raise error(f"use of undefined value %{iname}") from None
                try:
                    env[key] = Pointer(ptr.allocation, ptr.offset + index)
                except AttributeError:
                    raise error(f"gep on non-pointer value in @{fname}") \
                        from None
        else:
            index = int(iv)

            def step(env):
                ptr = ptr_get(env)
                try:
                    env[key] = Pointer(ptr.allocation, ptr.offset + index)
                except AttributeError:
                    raise error(f"gep on non-pointer value in @{fname}") \
                        from None
        return step, cost

    def _compile_cast(self, function: Function, inst: Cast):
        cost = self._interp.cost_model.cast
        key = id(inst)
        value_get = self._operand(inst.value)
        kind = inst.kind
        to_type = inst.type
        error = self._ExecutionError

        if kind in ("bitcast", "inttoptr", "ptrtoint"):
            apply = lambda v: v
        elif kind in ("trunc", "zext", "sext"):
            if isinstance(to_type, IntType):
                wrap = to_type.wrap
                apply = lambda v: wrap(int(v))
            else:
                apply = lambda v: int(v)
        elif kind == "fptosi":
            apply = lambda v: int(v)
        elif kind in ("sitofp", "fpext", "fptrunc"):
            apply = lambda v: float(v)
        else:
            raise error(f"unknown cast kind {kind}")

        def step(env):
            env[key] = apply(value_get(env))
        return step, cost

    def _compile_select(self, function: Function, inst: Select):
        cost = self._interp.cost_model.select
        key = id(inst)
        cond_get = self._operand(inst.condition)
        true_get = self._operand(inst.true_value)
        false_get = self._operand(inst.false_value)

        # plain truth testing matches Interpreter._truthy for every runtime
        # value: Pointer/FuncPointer define no __bool__/__len__ and are truthy
        def step(env):
            chosen = true_get if cond_get(env) else false_get
            env[key] = chosen(env)
        return step, cost

    def _compile_call(self, function: Function, inst: Call):
        interp = self._interp
        key = id(inst)
        arg_gets = [self._operand(a) for a in inst.args]
        has_result = inst.has_result
        # the direct/indirect distinction is static: it depends on the callee
        # *operand*, not on the runtime value flowing through it
        indirect = not isinstance(inst.callee, Function)
        cost = interp.cost_model.call_cost(len(arg_gets), indirect=indirect)
        call_function = interp.call_function
        FuncPointer = self._FuncPointer
        error = self._ExecutionError
        fname = function.name

        if not indirect:
            target = inst.callee

            def step(env):
                args = [g(env) for g in arg_gets]
                interp.cycles += cost
                result = call_function(target, args)
                if has_result:
                    env[key] = result if result is not None else 0
            return step, 0

        callee_get = self._operand(inst.callee)
        # matches the legacy defensive branch: a raw Function value flowing
        # through an indirect callee is charged as a direct call
        direct_cost = interp.cost_model.call_cost(len(arg_gets), indirect=False)

        def step(env):
            callee = callee_get(env)
            args = [g(env) for g in arg_gets]
            if isinstance(callee, FuncPointer):
                target = callee.function
                interp.cycles += cost
            elif isinstance(callee, Function):  # pragma: no cover - defensive
                target = callee
                interp.cycles += direct_cost
            else:
                raise error(
                    f"indirect call through non-function value in @{fname}")
            result = call_function(target, args)
            if has_result:
                env[key] = result if result is not None else 0
        return step, 0

    # -- terminators --------------------------------------------------------------

    def _compile_ret(self, function: Function, inst: Ret):
        cost = self._interp.cost_model.ret
        Return = self._Return
        if inst.value is None:
            return (lambda env: Return(None)), cost
        value_get = self._operand(inst.value)
        return (lambda env: Return(value_get(env))), cost

    def _compile_branch(self, function: Function, inst: Branch):
        cost = self._interp.cost_model.branch
        target = inst.target
        return (lambda env: target), cost

    def _compile_cond_branch(self, function: Function, inst: CondBranch):
        cost = self._interp.cost_model.cond_branch
        ck, cn, cv = self._slot(inst.condition)
        true_target = inst.true_target
        false_target = inst.false_target
        error = self._ExecutionError

        if ck is not None:
            # plain truth testing matches Interpreter._truthy (see select)
            def step(env):
                try:
                    cond = env[ck]
                except KeyError:
                    raise error(f"use of undefined value %{cn}") from None
                return true_target if cond else false_target
        else:
            fixed = true_target if self._interp._truthy(cv) else false_target

            def step(env):
                return fixed
        return step, cost

    def _compile_switch(self, function: Function, inst: Switch):
        cost = self._interp.cost_model.switch
        value_get = self._operand(inst.value)
        table: Dict[int, BasicBlock] = {}
        # first matching case wins, exactly like the legacy linear scan
        for constant, target in inst.cases:
            table.setdefault(int(constant.value), target)
        default = inst.default_target
        get_target = table.get

        def step(env):
            return get_target(int(value_get(env)), default)
        return step, cost

    def _compile_unreachable(self, function: Function, inst: Unreachable):
        error = self._ExecutionError
        fname = function.name

        def step(env):
            raise error(f"reached unreachable in @{fname}")
        # the legacy path raises before charging any cycles
        return step, 0

    _COMPILERS = {
        BinaryOp: _compile_binop,
        Compare: _compile_compare,
        Alloca: _compile_alloca,
        Load: _compile_load,
        Store: _compile_store,
        GetElementPtr: _compile_gep,
        Cast: _compile_cast,
        Select: _compile_select,
        Call: _compile_call,
        Ret: _compile_ret,
        Branch: _compile_branch,
        CondBranch: _compile_cond_branch,
        Switch: _compile_switch,
        Unreachable: _compile_unreachable,
    }

    # -- block compilation ---------------------------------------------------------

    def compile_block(self, function: Function,
                      block: BasicBlock) -> CompiledBlock:
        """Compile ``block`` up to (and including) its first terminator.

        The legacy path never executes anything past the first terminator, so
        neither does the compiled form.
        """
        per_step: List[Tuple[Step, int]] = []
        has_call = False
        for inst in block.instructions:
            compiler = self._lookup(type(inst))
            if compiler is None:
                opcode = inst.opcode
                error = self._ExecutionError

                def step(env, _opcode=opcode, _error=error):
                    raise _error(f"unknown instruction {_opcode}")
                per_step.append((step, 0))
            else:
                if isinstance(inst, Call):
                    has_call = True
                per_step.append(compiler(self, function, inst))
            if inst.is_terminator:
                break
        steps = tuple(s for s, _ in per_step)
        total_cost = sum(c for _, c in per_step)
        body = steps[:-1] if steps else ()
        last = steps[-1] if steps else None
        return (body, last, len(steps), total_cost, tuple(per_step), has_call)

    @classmethod
    def _lookup(cls, inst_class):
        """Resolve a compile routine, honouring instruction subclasses."""
        for klass in inst_class.__mro__:
            compiler = cls._COMPILERS.get(klass)
            if compiler is not None:
                return compiler
        return None


# ---------------------------------------------------------------------------
# Superblock tier: fused traces over hot block chains
# ---------------------------------------------------------------------------


class _Unsupported(Exception):
    """Internal: an instruction has no inline form; its closure is used."""


class CompiledTrace:
    """A superblock: a chain of fused blocks executed as one unit.

    ``fast`` is the generated step function; it executes every fused
    instruction against the call ``env`` and returns the chain's outcome —
    a :class:`~repro.ir.basicblock.BasicBlock` to jump to, a ``_Return``,
    or a ``(block, steps_back, cycles_back)`` side-exit tuple when an
    off-trace conditional arm was taken (the driver credits the unexecuted
    tail back).  ``count``/``total_cost`` are the precomputed step and cycle
    totals of the whole chain, charged in one batch by the superblock
    driver before ``fast`` runs.

    ``fast`` starts as ``None``: code generation is *lazy*, triggered by the
    driver once ``heat`` (dispatch count) reaches its JIT threshold — blocks
    executed once or twice never pay ``compile()``, hot loop heads pay it
    once and win it back every iteration.  ``codegen_ok`` marks traces that
    may be generated at all (call-free and within the size bound).
    ``fingerprint`` snapshots the chain's structure for the stale-trace
    check (:attr:`Interpreter.verify_traces`).
    """

    __slots__ = ("blocks", "fast", "count", "total_cost", "has_call",
                 "codegen_ok", "heat", "jit_at", "fingerprint", "source")

    def __init__(self, blocks, count, total_cost, has_call, codegen_ok,
                 jit_at, fingerprint):
        self.blocks = blocks
        self.fast = None
        self.count = count
        self.total_cost = total_cost
        self.has_call = has_call
        self.codegen_ok = codegen_ok
        self.heat = 0
        self.jit_at = jit_at
        self.fingerprint = fingerprint
        self.source = None


class TraceCompiler:
    """Fuses hot block chains into single generated step functions.

    Chain selection walks forward from a trace head, guided by the analyses
    the :class:`~repro.analysis.manager.AnalysisManager` already caches:
    through unconditional branches, and through conditional branches along
    the arm :class:`~repro.analysis.block_frequency.BlockFrequency` rates
    hotter (the cold arm becomes a guarded side exit, which is what makes
    these superblocks rather than mere extended blocks).  A successor is
    appended while it is not cold, is dominated by the head
    (:class:`~repro.analysis.dominators.DominatorTree`), is call-free and
    properly terminated — join blocks are fused too, since a trace is only
    ever entered at its head.  Correctness does not rest on the
    heuristics — the fused body replays exactly the instructions execution
    runs from the head, and a taken side exit credits the unexecuted tail's
    steps and cycles back to the driver — they only bound how much code is
    fused and keep every block in at most one trace.

    Code generation emits one Python function per trace: operand slots become
    literal ``env[<id>]`` subscripts, immediates become bound names, and each
    instruction's inline expression is guarded by a zero-cost ``try`` whose
    handler delegates to the instruction's per-block closure — so undefined
    values, pointer arithmetic through integer ops, type confusion and
    out-of-bounds accesses all reproduce the legacy semantics (and error
    messages) exactly.  Inline writes to ``env`` or memory are always the
    final action of an attempt, so a failed attempt commits nothing before
    its fallback re-executes the instruction.
    """

    #: chains never extend into blocks executed less often than this per call
    HOT_THRESHOLD = 0.5
    #: bounds keeping generated sources small enough that one ``compile()``
    #: stays in the low-millisecond range
    MAX_CHAIN_BLOCKS = 64
    MAX_TRACE_STEPS = 1600
    #: fused steps a trace must have dispatched before its step function is
    #: generated — ``compile()`` costs roughly this many interpreted steps,
    #: so cooler traces would never win the investment back
    JIT_WARMUP_STEPS = 256

    def __init__(self, interpreter, block_compiler, analyses):
        from .machine import Allocation, Pointer, _Return, _truncated_div
        self._interp = interpreter
        self._bc = block_compiler
        self._analyses = analyses
        self._base_ns = {
            "_Pointer": Pointer,
            "_Allocation": Allocation,
            "_Return": _Return,
            "_tdiv": _truncated_div,
        }
        # per-function chain-selection analyses (freq, domtree)
        self._fn_analyses: Dict[Function, tuple] = {}
        # per-trace codegen state
        self._ns: Dict[str, object] = {}
        self._n = 0

    @staticmethod
    def trace_fingerprint(blocks) -> tuple:
        """Structural snapshot of a chain (mirrors ``AnalysisManager``)."""
        return tuple(
            (block, len(block.instructions), block.terminator,
             tuple(block.successors()))
            for block in blocks)

    # -- trace construction -------------------------------------------------------

    def build_trace(self, function: Function, head: BasicBlock) -> CompiledTrace:
        chain = self._select_chain(function, head)
        compiled = [self._compiled_block(function, block) for block in chain]
        count = sum(c[2] for c in compiled)
        total_cost = sum(c[3] for c in compiled)
        has_call = any(c[5] for c in compiled)
        codegen_ok = not has_call and 0 < count <= self.MAX_TRACE_STEPS
        # dispatches before codegen: enough that the fused steps already
        # executed through this head add up to the warm-up budget (ceiling
        # division; large traces amortise compile() in fewer dispatches)
        jit_at = (max(2, -(-self.JIT_WARMUP_STEPS // count))
                  if codegen_ok else 0)
        return CompiledTrace(tuple(chain), count, total_cost, has_call,
                             codegen_ok, jit_at, self.trace_fingerprint(chain))

    def ensure_fast(self, function: Function, trace: CompiledTrace):
        """Generate ``trace.fast`` (idempotent); the driver calls this once
        the trace's heat crosses the JIT threshold."""
        if trace.fast is None and trace.codegen_ok:
            compiled = [self._compiled_block(function, block)
                        for block in trace.blocks]
            trace.fast, trace.source = self._codegen(function, trace.blocks,
                                                     compiled)
        return trace.fast

    def _compiled_block(self, function: Function, block: BasicBlock):
        cache = self._interp._compiled_blocks
        compiled = cache.get(block)
        if compiled is None:
            compiled = self._bc.compile_block(function, block)
            cache[block] = compiled
        return compiled

    @staticmethod
    def _executed_instructions(block: BasicBlock) -> List[Instruction]:
        """The instructions a run of ``block`` executes (first terminator
        included, anything after it dead) — the list ``compile_block`` walks."""
        executed = []
        for inst in block.instructions:
            executed.append(inst)
            if inst.is_terminator:
                break
        return executed

    def _function_analyses(self, function: Function):
        """The chain-selection analyses, one manager round-trip per
        function (cleared by :meth:`invalidate`)."""
        cached = self._fn_analyses.get(function)
        if cached is None:
            cached = (self._analyses.block_frequency(function),
                      self._analyses.domtree(function))
            self._fn_analyses[function] = cached
        return cached

    def invalidate(self, function: Optional[Function] = None) -> None:
        """Drop cached chain-selection analyses after IR mutation."""
        if function is None:
            self._fn_analyses.clear()
        else:
            self._fn_analyses.pop(function, None)

    def _select_chain(self, function: Function,
                      head: BasicBlock) -> List[BasicBlock]:
        chain = [head]
        term = self._chain_terminator(head)
        if term is None or self._has_call(head):
            return chain
        freq, domtree = self._function_analyses(function)
        seen = {head}
        while len(chain) < self.MAX_CHAIN_BLOCKS:
            if isinstance(term, Branch):
                succ = term.target
            elif isinstance(term, CondBranch):
                ck, _cn, cv = self._bc._slot(term.condition)
                if ck is None:
                    # constant condition: the taken arm is statically known,
                    # so the branch fuses away with no guard at all
                    succ = (term.true_target if self._interp._truthy(cv)
                            else term.false_target)
                elif term.true_target is term.false_target:
                    break
                elif (freq.get(term.true_target)
                        >= freq.get(term.false_target)):
                    succ = term.true_target
                else:
                    succ = term.false_target
            else:
                break
            # join blocks (several predecessors) fuse fine: a trace is only
            # ever entered at its head, so the fused body replays exactly
            # the path execution takes from there (the IR has no phis —
            # locals live in memory)
            if (succ in seen or succ.parent is not function
                    or freq.get(succ) < self.HOT_THRESHOLD
                    or not domtree.dominates(head, succ)):
                break
            next_term = self._chain_terminator(succ)
            if next_term is None or self._has_call(succ):
                break
            chain.append(succ)
            seen.add(succ)
            term = next_term
        return chain

    def _chain_terminator(self, block: BasicBlock):
        """The executed terminator, or None if the block cannot anchor a
        chain (falls through, or carries dead code past its terminator)."""
        executed = self._executed_instructions(block)
        if executed and executed[-1].is_terminator \
                and executed[-1] is block.instructions[-1]:
            return executed[-1]
        return None

    @staticmethod
    def _has_call(block: BasicBlock) -> bool:
        for inst in block.instructions:
            if isinstance(inst, Call):
                return True
            if inst.is_terminator:
                break
        return False

    # -- code generation ----------------------------------------------------------

    def _codegen(self, function: Function, chain, compiled):
        self._ns = dict(self._base_ns)
        self._n = 0
        count = sum(c[2] for c in compiled)
        total_cost = sum(c[3] for c in compiled)
        lines = ["def _trace(env):"]
        tail = chain[-1]
        steps_run = cost_run = 0
        for index, (block, cblock) in enumerate(zip(chain, compiled)):
            executed = self._executed_instructions(block)
            per_step = cblock[4]
            for inst, (step, cost) in zip(executed, per_step):
                steps_run += 1
                cost_run += cost
                final = block is tail and inst is executed[-1]
                if inst.is_terminator and not final:
                    emitted = self._emit_interior(
                        inst, step, chain[index + 1],
                        count - steps_run, total_cost - cost_run)
                else:
                    emitted = self._emit(inst, step, final)
                for line in emitted:
                    lines.append("    " + line)
        lines.append("    return None")
        source = "\n".join(lines)
        if self._interp.verify_traces or os.environ.get("REPRO_VERIFY_IR") == "full":
            # reject the generated source before it ever executes if it
            # strays from the single-env trace grammar (see ast_lint)
            from ..analysis.static.ast_lint import verify_trace_source
            verify_trace_source(
                source, where=f"@{function.name}:{chain[0].name}")
        namespace = self._ns
        code = compile(source,
                       f"<superblock @{function.name}:{chain[0].name}>",
                       "exec")
        exec(code, namespace)
        return namespace["_trace"], source

    def _emit_interior(self, inst: Instruction, step: Step,
                       next_block: BasicBlock, steps_back: int,
                       cost_back: int) -> List[str]:
        """Lines for a fused-away interior terminator.

        Unconditional branches and constant-folded conditional branches
        vanish entirely — their step and cycle are in the trace totals, but
        no dispatch happens at runtime.  A live conditional branch becomes
        the superblock's guarded side exit: staying on trace falls through
        to the next fused block's code, leaving the trace returns a
        ``(block, steps_back, cycles_back)`` tuple so the driver credits
        the unexecuted tail back out of the batched totals.
        """
        if isinstance(inst, Branch):
            return []
        ck, _cn, _cv = self._bc._slot(inst.condition)
        if ck is None:
            # constant condition, folded during chain selection
            return []
        on_true = next_block is inst.true_target
        exit_block = inst.false_target if on_true else inst.true_target
        exit_name = self._bind(exit_block, "_t")
        fallback = self._bind(step, "_f")
        return ["try:",
                f"    _c = env[{ck}]",
                "except KeyError:",
                f"    return ({fallback}(env), {steps_back}, {cost_back})",
                "if not _c:" if on_true else "if _c:",
                f"    return ({exit_name}, {steps_back}, {cost_back})"]

    def _bind(self, obj, prefix: str) -> str:
        name = f"{prefix}{self._n}"
        self._n += 1
        self._ns[name] = obj
        return name

    def _literal(self, imm) -> str:
        if imm is None:
            return "None"
        if imm.__class__ is bool:
            return repr(imm)
        if imm.__class__ is int:
            return f"({imm!r})"
        return self._bind(imm, "_g")

    def _expr(self, value):
        """Source expression for one operand: an ``env`` subscript for SSA
        values, a literal or bound name for immediates."""
        key, _name, imm = self._bc._slot(value)
        if key is not None:
            return f"env[{key}]", True
        return self._literal(imm), False

    def _emit(self, inst: Instruction, step: Step, final: bool) -> List[str]:
        """Source lines for ``inst``; terminator lines return the outcome."""
        try:
            emitter = self._EMITTERS_BY_CLASS.get(type(inst))
            if emitter is None:
                for klass in type(inst).__mro__:
                    emitter = self._EMITTERS_BY_CLASS.get(klass)
                    if emitter is not None:
                        break
            if emitter is None:
                raise _Unsupported
            return emitter(self, inst, step)
        except _Unsupported:
            fallback = self._bind(step, "_f")
            if inst.is_terminator:
                return [f"return {fallback}(env)"]
            return [f"{fallback}(env)"]

    def _guarded(self, attempt: List[str], step: Step,
                 exceptions: str = "(TypeError, KeyError)") -> List[str]:
        fallback = self._bind(step, "_f")
        return (["try:"]
                + ["    " + line for line in attempt]
                + [f"except {exceptions}:", f"    {fallback}(env)"])

    _INT_OPS = {"add": "+", "sub": "-", "mul": "*",
                "and": "&", "or": "|", "xor": "^"}
    _FLOAT_OPS = {"fadd": "+", "fsub": "-", "fmul": "*"}
    _COMPARE_OPS = {"eq": "==", "ne": "!=", "slt": "<", "sle": "<=",
                    "sgt": ">", "sge": ">=", "oeq": "==", "one": "!=",
                    "olt": "<", "ole": "<=", "ogt": ">", "oge": ">="}

    def _emit_binop(self, inst: BinaryOp, step: Step) -> List[str]:
        key = id(inst)
        lhs, _ = self._expr(inst.lhs)
        rhs, _ = self._expr(inst.rhs)
        op = inst.op
        if op[0] == "f":
            if op in self._FLOAT_OPS:
                return self._guarded(
                    [f"env[{key}] = float({lhs}) {self._FLOAT_OPS[op]} "
                     f"float({rhs})"], step)
            if op == "fdiv":
                return self._guarded(
                    [f"_b = float({rhs})",
                     f"env[{key}] = float({lhs}) / _b if _b != 0.0 else 0.0"],
                    step)
            raise _Unsupported
        if not isinstance(inst.type, IntType) or inst.type.bits <= 1:
            # i1 logic and pointer-typed arithmetic: rare, stay on closures
            raise _Unsupported
        bits = inst.type.bits
        half = 1 << (bits - 1)
        mask = (1 << bits) - 1
        # ((v + half) & mask) - half == IntType.wrap(v) for bits > 1; the
        # ``& mask`` raises TypeError on any non-int intermediate (floats,
        # pointer arithmetic), landing on the closure's exact semantics
        if op in self._INT_OPS:
            raw = f"({lhs} {self._INT_OPS[op]} {rhs})"
        elif op == "sdiv":
            raw = f"_tdiv({lhs}, {rhs})"
        elif op == "srem":
            raw = f"({lhs} - _tdiv({lhs}, {rhs}) * {rhs} if {rhs} != 0 else 0)"
        elif op == "shl":
            raw = f"({lhs} << ({rhs} & 63))"
        elif op == "ashr":
            raw = f"({lhs} >> ({rhs} & 63))"
        else:
            raise _Unsupported
        return self._guarded(
            [f"env[{key}] = ({raw} + {half} & {mask}) - {half}"], step)

    def _emit_compare(self, inst: Compare, step: Step) -> List[str]:
        cmp = self._COMPARE_OPS.get(inst.predicate)
        if cmp is None:
            raise _Unsupported
        key = id(inst)
        lhs, _ = self._expr(inst.lhs)
        rhs, _ = self._expr(inst.rhs)
        equality = inst.predicate in ("eq", "ne", "oeq", "one")
        # equality is total on every runtime value; ordered comparisons
        # raise TypeError on pointers, which the closure handles
        exceptions = "KeyError" if equality else "(TypeError, KeyError)"
        return self._guarded(
            [f"env[{key}] = 1 if {lhs} {cmp} {rhs} else 0"], step,
            exceptions)

    def _emit_alloca(self, inst: Alloca, step: Step) -> List[str]:
        key = id(inst)
        size = max(1, inst.allocated_type.size_in_slots() * max(1, inst.count))
        return [f"env[{key}] = _Pointer(_Allocation([0] * {size}, "
                f"{f'%{inst.name}'!r}), 0)"]

    def _emit_load(self, inst: Load, step: Step) -> List[str]:
        key = id(inst)
        pk, _pn, pv = self._bc._slot(inst.pointer)
        if pk is None:
            # fixed pointer (a global): resolve cells and bounds at codegen
            if pv.__class__ is not self._base_ns["_Pointer"]:
                raise _Unsupported
            cells = pv.allocation.cells
            if not 0 <= pv.offset < len(cells):
                raise _Unsupported
            name = self._bind(cells, "_g")
            return [f"env[{key}] = {name}[{pv.offset}]"]
        return self._guarded(
            [f"_p = env[{pk}]",
             "_c = _p.allocation.cells",
             "_o = _p.offset",
             "if 0 <= _o < len(_c):",
             f"    env[{key}] = _c[_o]",
             "else:",
             f"    {self._bind(step, '_f')}(env)"],
            step, "(AttributeError, KeyError)")

    def _emit_store(self, inst: Store, step: Step) -> List[str]:
        value, value_in_env = self._expr(inst.value)
        pk, _pn, pv = self._bc._slot(inst.pointer)
        if pk is None:
            if pv.__class__ is not self._base_ns["_Pointer"]:
                raise _Unsupported
            cells = pv.allocation.cells
            if not 0 <= pv.offset < len(cells):
                raise _Unsupported
            name = self._bind(cells, "_g")
            attempt = [f"{name}[{pv.offset}] = {value}"]
            if value_in_env:
                return self._guarded(attempt, step, "KeyError")
            return attempt
        return self._guarded(
            [f"_v = {value}",
             f"_p = env[{pk}]",
             "_c = _p.allocation.cells",
             "_o = _p.offset",
             "if 0 <= _o < len(_c):",
             "    _c[_o] = _v",
             "else:",
             f"    {self._bind(step, '_f')}(env)"],
            step, "(AttributeError, KeyError)")

    def _emit_gep(self, inst: GetElementPtr, step: Step) -> List[str]:
        key = id(inst)
        pointer, _ = self._expr(inst.pointer)
        ik, _iname, iv = self._bc._slot(inst.index)
        if ik is None:
            index = int(iv)
            return self._guarded(
                [f"_p = {pointer}",
                 f"env[{key}] = _Pointer(_p.allocation, _p.offset + "
                 f"({index!r}))"],
                step, "(AttributeError, KeyError)")
        # the closure coerces bool/float indices through int(); the inline
        # form only takes genuine ints
        return self._guarded(
            [f"_p = {pointer}",
             f"_i = env[{ik}]",
             "if _i.__class__ is int:",
             f"    env[{key}] = _Pointer(_p.allocation, _p.offset + _i)",
             "else:",
             f"    {self._bind(step, '_f')}(env)"],
            step, "(AttributeError, KeyError)")

    def _emit_cast(self, inst: Cast, step: Step) -> List[str]:
        key = id(inst)
        value, in_env = self._expr(inst.value)
        kind = inst.kind
        if kind in ("bitcast", "inttoptr", "ptrtoint"):
            line = f"env[{key}] = {value}"
            if in_env:
                return self._guarded([line], step, "KeyError")
            return [line]
        if kind in ("trunc", "zext", "sext"):
            if isinstance(inst.type, IntType):
                bits = inst.type.bits
                if bits > 1:
                    half = 1 << (bits - 1)
                    mask = (1 << bits) - 1
                    attempt = (f"env[{key}] = ({value} + {half} & {mask})"
                               f" - {half}")
                else:
                    attempt = f"env[{key}] = {value} & 1"
                return self._guarded([attempt], step)
            return self._guarded([f"env[{key}] = int({value})"], step,
                                 "(TypeError, ValueError, KeyError)")
        if kind == "fptosi":
            return self._guarded([f"env[{key}] = int({value})"], step,
                                 "(TypeError, ValueError, KeyError)")
        if kind in ("sitofp", "fpext", "fptrunc"):
            return self._guarded([f"env[{key}] = float({value})"], step,
                                 "(TypeError, ValueError, KeyError)")
        raise _Unsupported

    def _emit_select(self, inst: Select, step: Step) -> List[str]:
        key = id(inst)
        cond, _ = self._expr(inst.condition)
        true_value, _ = self._expr(inst.true_value)
        false_value, _ = self._expr(inst.false_value)
        return self._guarded(
            [f"if {cond}:",
             f"    env[{key}] = {true_value}",
             "else:",
             f"    env[{key}] = {false_value}"],
            step, "KeyError")

    def _emit_ret(self, inst: Ret, step: Step) -> List[str]:
        if inst.value is None:
            return ["return _Return(None)"]
        value, in_env = self._expr(inst.value)
        if not in_env:
            return [f"return _Return({value})"]
        fallback = self._bind(step, "_f")
        return ["try:",
                f"    return _Return({value})",
                "except KeyError:",
                f"    return {fallback}(env)"]

    def _emit_branch(self, inst: Branch, step: Step) -> List[str]:
        return [f"return {self._bind(inst.target, '_t')}"]

    def _emit_cond_branch(self, inst: CondBranch, step: Step) -> List[str]:
        ck, _cn, cv = self._bc._slot(inst.condition)
        true_name = self._bind(inst.true_target, "_t")
        false_name = self._bind(inst.false_target, "_t")
        if ck is None:
            fixed = true_name if self._interp._truthy(cv) else false_name
            return [f"return {fixed}"]
        fallback = self._bind(step, "_f")
        return ["try:",
                f"    return {true_name} if env[{ck}] else {false_name}",
                "except KeyError:",
                f"    return {fallback}(env)"]

    def _emit_switch(self, inst: Switch, step: Step) -> List[str]:
        vk, _vn, _vv = self._bc._slot(inst.value)
        if vk is None:
            raise _Unsupported
        table: Dict[int, BasicBlock] = {}
        for constant, target in inst.cases:
            table.setdefault(int(constant.value), target)
        table_name = self._bind(table, "_g")
        default_name = self._bind(inst.default_target, "_t")
        fallback = self._bind(step, "_f")
        # bools fall back to the closure's int() coercion
        return ["try:",
                f"    _v = env[{vk}]",
                "except KeyError:",
                f"    return {fallback}(env)",
                "if _v.__class__ is int:",
                f"    return {table_name}.get(_v, {default_name})",
                f"return {fallback}(env)"]

    _EMITTERS_BY_CLASS = {
        BinaryOp: _emit_binop,
        Compare: _emit_compare,
        Alloca: _emit_alloca,
        Load: _emit_load,
        Store: _emit_store,
        GetElementPtr: _emit_gep,
        Cast: _emit_cast,
        Select: _emit_select,
        Ret: _emit_ret,
        Branch: _emit_branch,
        CondBranch: _emit_cond_branch,
        Switch: _emit_switch,
    }
