"""Cycle cost model for the interpreter.

Runtime overhead in the paper (Figures 6 and 7) is wall-clock time on an x86
machine; here it is a deterministic dynamic cycle count.  The model charges
extra for exactly the effects the Khaos design discusses:

* function calls have a fixed dispatch cost plus a per-argument cost, with a
  steep surcharge for arguments beyond the six register slots of the SysV
  calling convention (this is what makes parameter-list compression and the
  data-flow reduction pay off);
* memory operations cost more than register arithmetic;
* indirect calls cost slightly more than direct calls (branch-target miss).
"""

from __future__ import annotations

from dataclasses import dataclass


# Number of integer argument registers in the modelled calling convention.
REGISTER_ARG_SLOTS = 6


@dataclass(frozen=True)
class CostModel:
    """Per-instruction-class cycle costs.

    Frozen: compiled blocks, fused superblock traces and
    :class:`~repro.vm.batch.VMBatch` memos all bake these costs into
    precomputed totals, so mutating a shared model mid-batch would silently
    desynchronise memoised results from fresh runs.  Build a new model (e.g.
    ``dataclasses.replace``) instead of mutating one.
    """
    arithmetic: int = 1
    compare: int = 1
    cast: int = 1
    select: int = 1
    load: int = 2
    store: int = 2
    gep: int = 1
    alloca: int = 1
    branch: int = 1
    cond_branch: int = 1
    switch: int = 2
    call_base: int = 6
    call_indirect_extra: int = 4
    call_register_arg: int = 1
    call_stack_arg: int = 3
    ret: int = 2
    intrinsic: int = 4

    def call_cost(self, arg_count: int, indirect: bool = False) -> int:
        register_args = min(arg_count, REGISTER_ARG_SLOTS)
        stack_args = max(0, arg_count - REGISTER_ARG_SLOTS)
        cost = (self.call_base
                + register_args * self.call_register_arg
                + stack_args * self.call_stack_arg)
        if indirect:
            cost += self.call_indirect_extra
        return cost


DEFAULT_COST_MODEL = CostModel()
