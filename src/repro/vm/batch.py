"""Batched VM measurement: one execution per distinct program per batch.

The overhead experiments (Figures 6/7) execute every built variant in the
interpreter to collect dynamic cycle counts, and several report rows can be
backed by the *same* variant — every row of a workload shares its baseline's
cycle count, and sweep-style drivers may revisit a variant under several
headings.  Execution is deterministic (the VM is seeded through the
program), so re-running a program inside one measurement batch is pure
waste.

:class:`VMBatch` is the measurement unit the sharded scheduler
(:mod:`repro.evaluation.sharding`) hands to each worker: it memoises one
:func:`~repro.vm.machine.run_program` execution per program, keyed by
program identity (the artifact cache already guarantees one program object
per variant within a shard).  The memo lives and dies with the batch —
across batches every variant is measured afresh, exactly like the serial
figure drivers.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from ..ir.module import Program
from .costs import CostModel
from .machine import ExecutionResult, run_program


class VMBatch:
    """Memoised ``run_program`` over one batch of measurements.

    ``compiled``/``cost_model``/``max_steps`` pin the execution
    configuration for the whole batch (mixing configurations in one batch
    would let a memoised result cross configurations — create one batch per
    configuration instead).
    """

    def __init__(self, compiled: Optional[bool] = None,
                 cost_model: Optional[CostModel] = None,
                 max_steps: int = 5_000_000):
        self.compiled = compiled
        self.cost_model = cost_model
        self.max_steps = max_steps
        # the memoised program is held strongly alongside its result: a
        # memo keyed on a bare id() would serve a dead program's result
        # when CPython recycles the id for a new allocation (the sibling
        # FeatureIndex cache guards the same hazard with a weakref); the
        # strong reference pins the id for the (short) life of the batch
        self._results: Dict[int, Tuple[Program, ExecutionResult]] = {}
        self.executions = 0
        self.memo_hits = 0

    def run(self, program: Program) -> ExecutionResult:
        """Execute ``program`` once per batch; later calls reuse the result."""
        key = id(program)
        entry = self._results.get(key)
        if entry is not None and entry[0] is program:
            self.memo_hits += 1
            return entry[1]
        self.executions += 1
        result = run_program(program, max_steps=self.max_steps,
                             cost_model=self.cost_model,
                             compiled=self.compiled)
        self._results[key] = (program, result)
        return result

    def cycles(self, program: Program) -> int:
        return self.run(program).cycles


def run_batch(programs: Sequence[Program],
              compiled: Optional[bool] = None,
              cost_model: Optional[CostModel] = None,
              max_steps: int = 5_000_000) -> List[ExecutionResult]:
    """Execute a sequence of programs as one batch, in order.

    Duplicate program objects are executed once and their result repeated in
    the output — positionally identical to calling
    :func:`~repro.vm.machine.run_program` in a loop (execution is
    deterministic), just without the redundant work.
    """
    batch = VMBatch(compiled=compiled, cost_model=cost_model,
                    max_steps=max_steps)
    return [batch.run(program) for program in programs]
