"""Batched VM measurement: one execution per distinct variant per batch.

The overhead experiments (Figures 6/7) execute every built variant in the
interpreter to collect dynamic cycle counts, and several report rows can be
backed by the *same* variant — every row of a workload shares its baseline's
cycle count, and sweep-style drivers may revisit a variant under several
headings.  Execution is deterministic (the VM is seeded through the
program), so re-running a program inside one measurement batch is pure
waste.

:class:`VMBatch` is the measurement unit the sharded scheduler
(:mod:`repro.evaluation.sharding`) hands to each worker.  Every execution
goes through :meth:`VMBatch.run_many`: one :class:`~repro.vm.machine.
Interpreter` per distinct program drives all of the batch's input vectors
through one compiled-block cache (and, under superblock dispatch, one set
of fused traces), resetting per input — so interpreter setup, block
compilation and trace generation are amortised across the whole batch
instead of paid per run.

Memo keys prefer content over identity: when the caller can hand over the
lowered :class:`~repro.backend.binary.Binary`, results are keyed by
``Binary.content_digest()`` — two artifacts rebuilt into different objects
(e.g. loaded from a warm store tree by different workers) dedupe to one
execution.  Programs without a binary fall back to the id-keyed memo, with
the program held strongly to pin its id (a bare ``id()`` key could be
recycled by CPython for a new allocation).  The memo lives and dies with
the batch — across batches every variant is measured afresh, exactly like
the serial figure drivers.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from ..ir.module import Program
from ..obs import metrics as obs_metrics
from .costs import CostModel
from .machine import ExecutionResult, Interpreter

#: The single-run input batch: one run, no inputs — what ``run_program``
#: does for drivers that never feed the input intrinsics.
SINGLE_RUN = ((),)


class VMBatch:
    """Memoised, batched program execution over one measurement batch.

    ``compiled``/``dispatch``/``cost_model``/``max_steps`` pin the execution
    configuration for the whole batch (mixing configurations in one batch
    would let a memoised result cross configurations — create one batch per
    configuration instead).
    """

    def __init__(self, compiled: Optional[bool] = None,
                 cost_model: Optional[CostModel] = None,
                 max_steps: int = 5_000_000,
                 dispatch: Optional[str] = None):
        self.compiled = compiled
        self.dispatch = dispatch
        self.cost_model = cost_model
        self.max_steps = max_steps
        # key -> ((program, binary), results); the anchor tuple pins both
        # objects so id-based keys stay valid for the life of the batch
        self._results: Dict[tuple, Tuple[tuple, List[ExecutionResult]]] = {}
        self._digests: Dict[int, Tuple[object, str]] = {}
        #: Per-batch counter view chained to the process-global registry:
        #: the ``executions``/``memo_hits``/``interpreters`` attributes keep
        #: their per-instance semantics while every increment also feeds the
        #: telemetry flush (``vmbatch.*`` counters).
        self.metrics = obs_metrics.MetricsRegistry(
            parent=obs_metrics.REGISTRY)

    # -- memo keys ----------------------------------------------------------------

    def _program_key(self, program: Program, binary) -> tuple:
        if binary is not None:
            return ("digest", self._digest_of(binary))
        return ("id", id(program))

    def _digest_of(self, binary) -> str:
        entry = self._digests.get(id(binary))
        if entry is not None and entry[0] is binary:
            return entry[1]
        digest = binary.content_digest()
        self._digests[id(binary)] = (binary, digest)
        return digest

    # -- execution ----------------------------------------------------------------

    def run_many(self, program: Program,
                 input_sets: Sequence[Sequence[int]],
                 binary=None) -> List[ExecutionResult]:
        """Drive every input vector through one interpreter, memoised.

        Result ``i`` is bit-identical to a fresh
        :func:`~repro.vm.machine.run_program` with ``input_sets[i]`` (see
        :meth:`Interpreter.run_many`); the whole batch shares one compiled
        program.  A repeat call with an equal key — same digest (or same
        program object) and same inputs — returns the memoised results.
        """
        sets = tuple(tuple(inputs) for inputs in input_sets)
        key = (self._program_key(program, binary), sets)
        entry = self._results.get(key)
        if entry is not None and (binary is not None
                                  or entry[0][0] is program):
            self.metrics.counter("vmbatch.memo_hits")
            return list(entry[1])
        self.metrics.counter("vmbatch.interpreters")
        self.metrics.counter("vmbatch.executions", len(sets))
        interpreter = Interpreter(program, cost_model=self.cost_model,
                                  max_steps=self.max_steps,
                                  compiled=self.compiled,
                                  dispatch=self.dispatch)
        results = interpreter.run_many(sets)
        self._results[key] = ((program, binary), results)
        return list(results)

    def run(self, program: Program, binary=None) -> ExecutionResult:
        """Execute ``program`` once per batch; later calls reuse the result."""
        return self.run_many(program, SINGLE_RUN, binary=binary)[0]

    # -- façade counters (instance registry views) --------------------------------

    @property
    def executions(self) -> int:
        return int(self.metrics.get("vmbatch.executions"))

    @property
    def memo_hits(self) -> int:
        return int(self.metrics.get("vmbatch.memo_hits"))

    @property
    def interpreters(self) -> int:
        return int(self.metrics.get("vmbatch.interpreters"))

    def cycles(self, program: Program, binary=None) -> int:
        return self.run(program, binary=binary).cycles


def run_batch(programs: Sequence[Program],
              compiled: Optional[bool] = None,
              cost_model: Optional[CostModel] = None,
              max_steps: int = 5_000_000,
              dispatch: Optional[str] = None) -> List[ExecutionResult]:
    """Execute a sequence of programs as one batch, in order.

    Duplicate program objects are executed once and their result repeated in
    the output — positionally identical to calling
    :func:`~repro.vm.machine.run_program` in a loop (execution is
    deterministic), just without the redundant work.
    """
    batch = VMBatch(compiled=compiled, cost_model=cost_model,
                    max_steps=max_steps, dispatch=dispatch)
    return [batch.run(program) for program in programs]
