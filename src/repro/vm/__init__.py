"""Deterministic IR interpreter and cycle cost model."""

from .costs import CostModel, DEFAULT_COST_MODEL, REGISTER_ARG_SLOTS
from .machine import (ExecutionError, ExecutionResult, FuncPointer,
                      Interpreter, Pointer, StepLimitExceeded, run_program)

__all__ = [
    "CostModel", "DEFAULT_COST_MODEL", "REGISTER_ARG_SLOTS",
    "ExecutionError", "ExecutionResult", "FuncPointer", "Interpreter",
    "Pointer", "StepLimitExceeded", "run_program",
]
