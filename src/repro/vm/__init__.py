"""Deterministic IR interpreter and cycle cost model."""

from .batch import VMBatch, run_batch
from .costs import CostModel, DEFAULT_COST_MODEL, REGISTER_ARG_SLOTS
from .machine import (DISPATCH_TIERS, ExecutionError, ExecutionResult,
                      FuncPointer, Interpreter, Pointer, StaleTraceError,
                      StepLimitExceeded, run_program)

__all__ = [
    "CostModel", "DEFAULT_COST_MODEL", "DISPATCH_TIERS", "REGISTER_ARG_SLOTS",
    "ExecutionError", "ExecutionResult", "FuncPointer", "Interpreter",
    "Pointer", "StaleTraceError", "StepLimitExceeded", "VMBatch",
    "run_batch", "run_program",
]
