"""A deterministic interpreter for the reproduction IR.

The interpreter serves two purposes:

* **correctness oracle** — every workload program can be executed before and
  after obfuscation; equal observable output (plus exit value) demonstrates
  the transformation preserved semantics, which is how the test suite checks
  the fission/fusion passes;
* **runtime-overhead measurement** — execution accumulates cycles according to
  :class:`~repro.vm.costs.CostModel`, giving the dynamic cost figures used to
  reproduce Figures 6 and 7.

The machine model is simple but sufficient: integers wrap at their declared
width, pointers are (allocation, offset) handles, and function pointers carry
the Khaos tag bits explicitly so the tagged-pointer intrinsics have a direct
runtime meaning.
"""

from __future__ import annotations

import os
import time

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..ir.basicblock import BasicBlock
from ..ir.function import Function
from ..ir.instructions import (Alloca, BinaryOp, Branch, Call, Cast, Compare,
                               CondBranch, GetElementPtr, Instruction, Load,
                               Ret, Select, Store, Switch, Unreachable)
from ..ir.module import Program
from ..ir.types import IntType, Type
from ..ir.values import (Constant, GlobalVariable, NullPointer, UndefValue,
                         Value)
from ..obs import metrics as obs_metrics
from ..obs import tracing as obs_tracing
from .costs import CostModel, DEFAULT_COST_MODEL


class ExecutionError(Exception):
    """Raised when the interpreted program performs an invalid operation."""


class StepLimitExceeded(ExecutionError):
    """Raised when execution exceeds the configured step budget."""


class StaleTraceError(RuntimeError):
    """A fused trace was executed after its IR changed underneath it.

    Only raised in the ``verify_traces`` mode (the trace analogue of
    ``AnalysisManager(verify_invalidation=True)``); the fix is for whatever
    mutated the function to call :meth:`Interpreter.invalidate_compiled`
    (directly, or by invalidating through a wired ``AnalysisManager``).
    """


@dataclass
class Allocation:
    """A block of memory cells (globals, allocas)."""

    cells: List[object]
    label: str = ""


class Pointer:
    """A data pointer: an allocation handle plus an element offset."""

    __slots__ = ("allocation", "offset")

    def __init__(self, allocation: Allocation, offset: int = 0):
        self.allocation = allocation
        self.offset = offset

    def moved(self, delta: int) -> "Pointer":
        return Pointer(self.allocation, self.offset + delta)

    def __eq__(self, other: object) -> bool:
        return (isinstance(other, Pointer)
                and other.allocation is self.allocation
                and other.offset == self.offset)

    def __hash__(self) -> int:
        return hash((id(self.allocation), self.offset))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Pointer {self.allocation.label}+{self.offset}>"


class FuncPointer:
    """A function pointer, optionally carrying Khaos tag bits."""

    __slots__ = ("function", "tag")

    def __init__(self, function: Function, tag: int = 0):
        self.function = function
        self.tag = tag

    def with_tag(self, tag: int) -> "FuncPointer":
        return FuncPointer(self.function, tag)

    def untagged(self) -> "FuncPointer":
        return FuncPointer(self.function, 0)

    def __eq__(self, other: object) -> bool:
        return (isinstance(other, FuncPointer)
                and other.function is self.function and other.tag == self.tag)

    def __hash__(self) -> int:
        return hash((id(self.function), self.tag))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<FuncPointer @{self.function.name} tag={self.tag}>"


NULL_SENTINEL = 0


@dataclass
class ExecutionResult:
    """Observable outcome of running a program."""

    exit_value: object
    output: List[object]
    cycles: int
    instructions_executed: int
    call_count: int
    steps: int

    def observable(self) -> Tuple[object, Tuple[object, ...]]:
        """The pair compared by semantic-preservation tests."""
        return (self.exit_value, tuple(self.output))


#: Recognised dispatch tiers, slowest (reference) to fastest.
DISPATCH_TIERS = ("legacy", "compiled", "superblock")


class Interpreter:
    """Executes a :class:`~repro.ir.module.Program`.

    Three dispatch tiers produce bit-for-bit identical results:

    * ``dispatch="legacy"`` walks the original per-step ``isinstance``
      ladder; it is the reference semantics for differential testing;
    * ``dispatch="compiled"`` (the default) lazily compiles each basic block
      into a list of step closures with pre-resolved operand slots and
      precomputed cycle costs (see :mod:`repro.vm.compiler`) — several times
      faster on the Figure 6/7 measurement loop;
    * ``dispatch="superblock"`` additionally fuses hot block chains —
      through unconditional branches and the hot arm of conditional ones,
      with guarded side exits for the cold arm — into generated trace
      functions executed with one ``env`` dict, one precomputed fused cycle
      total and zero inter-block dispatch
      (:class:`~repro.vm.compiler.TraceCompiler`), falling back to compiled
      blocks near the step limit and around calls.

    The ``REPRO_VM_DISPATCH`` environment variable (``legacy`` / ``compiled``
    / ``superblock``) selects the tier when neither ``dispatch`` nor the
    older ``compiled`` argument is given; unrecognised values mean
    ``compiled``.  Passing ``analyses=`` wires this interpreter into an
    :class:`~repro.analysis.manager.AnalysisManager` both as the source of
    the chain-selection analyses and as an invalidation listener, so passes
    that invalidate a function's analyses drop its compiled blocks and fused
    traces too.  ``verify_traces=True`` (or ``REPRO_VM_VERIFY_TRACES=1``)
    re-checks a trace's structural fingerprint on every dispatch and raises
    :class:`StaleTraceError` on IR mutated without invalidation.
    """

    def __init__(self, program: Program, cost_model: Optional[CostModel] = None,
                 max_steps: int = 5_000_000, inputs: Optional[Sequence[int]] = None,
                 compiled: Optional[bool] = None,
                 dispatch: Optional[str] = None,
                 analyses=None, verify_traces: Optional[bool] = None):
        self.program = program if len(program.modules) == 1 else program.link()
        self.module = self.program.modules[0]
        self.cost_model = cost_model or DEFAULT_COST_MODEL
        self.max_steps = max_steps
        self.inputs = list(inputs or [])
        self.output: List[object] = []
        self.cycles = 0
        self.instructions_executed = 0
        self.call_count = 0
        self.steps = 0
        self.globals: Dict[str, Pointer] = {}
        self._intrinsics: Dict[str, Callable] = self._build_intrinsics()
        self._initialise_globals()
        if dispatch is None:
            if compiled is not None:
                dispatch = "compiled" if compiled else "legacy"
            else:
                choice = os.environ.get("REPRO_VM_DISPATCH", "compiled")
                dispatch = choice if choice in ("legacy", "superblock") \
                    else "compiled"
        elif dispatch not in DISPATCH_TIERS:
            raise ValueError(f"unknown dispatch tier {dispatch!r}; expected "
                             f"one of {DISPATCH_TIERS}")
        self.dispatch = dispatch
        self.compiled = dispatch != "legacy"
        self._superblock = dispatch == "superblock"
        self._compiled_blocks: Dict[BasicBlock, tuple] = {}
        self._compiler = None
        self._traces: Dict[BasicBlock, object] = {}
        self._block_heat: Dict[BasicBlock, int] = {}
        self._trace_compiler = None
        self._analyses = analyses
        self._owns_analyses = False
        if analyses is not None:
            analyses.add_invalidation_listener(self)
        if verify_traces is None:
            verify_traces = os.environ.get(
                "REPRO_VM_VERIFY_TRACES", "") not in ("", "0")
        self.verify_traces = bool(verify_traces)

    # -- setup --------------------------------------------------------------------

    @staticmethod
    def _initial_cells(g) -> List[object]:
        size = g.value_type.size_in_slots() or 1
        cells: List[object] = [0] * size
        init = g.initializer
        if init is not None:
            if isinstance(init, (list, tuple)):
                for i, v in enumerate(init[:size]):
                    cells[i] = v
            else:
                cells[0] = init
        return cells

    def _initialise_globals(self) -> None:
        for name, g in self.module.globals.items():
            allocation = Allocation(self._initial_cells(g), label=f"@{name}")
            self.globals[name] = Pointer(allocation, 0)

    def reset(self, inputs: Optional[Sequence[int]] = None) -> None:
        """Rewind to a fresh-interpreter state, keeping compiled state.

        Counters, output and the input stream are cleared; global memory is
        re-initialised **in place** (compiled closures and fused traces
        capture the global cell lists, so the lists must keep their
        identity).  Compiled blocks and traces depend only on the IR and
        survive, which is what makes :meth:`run_many` amortise setup.
        """
        self.inputs = list(inputs or [])
        self.output = []
        self.cycles = 0
        self.instructions_executed = 0
        self.call_count = 0
        self.steps = 0
        for name, g in self.module.globals.items():
            self.globals[name].allocation.cells[:] = self._initial_cells(g)

    def _build_intrinsics(self) -> Dict[str, Callable]:
        def putint(value):
            self.output.append(int(value))
            return 0

        def putfloat(value):
            self.output.append(round(float(value), 6))
            return 0

        def putchar(value):
            self.output.append(int(value) & 0xFF)
            return int(value) & 0xFF

        def input_i64(index):
            idx = int(index)
            if 0 <= idx < len(self.inputs):
                return int(self.inputs[idx])
            return 0

        def input_len():
            return len(self.inputs)

        def khaos_tag_ptr(ptr, tag):
            if isinstance(ptr, FuncPointer):
                return ptr.with_tag(int(tag))
            raise ExecutionError("__khaos_tag_ptr applied to a non-function pointer")

        def khaos_extract_tag(ptr):
            if isinstance(ptr, FuncPointer):
                return ptr.tag
            return 0

        def khaos_clear_tag(ptr):
            if isinstance(ptr, FuncPointer):
                return ptr.untagged()
            return ptr

        def abs_model(value):
            return abs(int(value))

        def setjmp_model(buf):
            # Static constraint only (fission refuses to split across setjmp);
            # the dynamic behaviour modelled here is "no longjmp ever fires".
            return 0

        def longjmp_model(buf, value):
            raise ExecutionError("longjmp is not modelled dynamically")

        def exit_model(code):
            raise _ProgramExit(int(code))

        return {
            "putint": putint,
            "putfloat": putfloat,
            "putchar": putchar,
            "input_i64": input_i64,
            "input_len": input_len,
            "__khaos_tag_ptr": khaos_tag_ptr,
            "__khaos_extract_tag": khaos_extract_tag,
            "__khaos_clear_tag": khaos_clear_tag,
            "abs": abs_model,
            "setjmp": setjmp_model,
            "longjmp": longjmp_model,
            "exit": exit_model,
        }

    # -- public API ---------------------------------------------------------------

    def run(self, args: Optional[Sequence[object]] = None) -> ExecutionResult:
        entry = self.program.find_function(self.program.entry)
        if entry is None or entry.is_declaration:
            raise ExecutionError(
                f"program {self.program.name} has no entry function "
                f"{self.program.entry!r}")
        started = time.perf_counter()
        try:
            exit_value = self.call_function(entry, list(args or []))
        except _ProgramExit as stop:
            exit_value = stop.code
        result = ExecutionResult(
            exit_value=exit_value,
            output=list(self.output),
            cycles=self.cycles,
            instructions_executed=self.instructions_executed,
            call_count=self.call_count,
            steps=self.steps,
        )
        # per-run telemetry only (never per instruction): a handful of dict
        # increments + two clock reads, well inside the ≤2% disabled budget
        elapsed = time.perf_counter() - started
        self._metrics_run(result, elapsed)
        return result

    def _metrics_run(self, result: ExecutionResult, elapsed: float) -> None:
        counter = obs_metrics.REGISTRY.counter
        counter("vm.runs." + self.dispatch)
        counter("vm.steps", result.steps)
        if elapsed > 0:
            obs_metrics.REGISTRY.gauge("vm.steps_per_s",
                                       result.steps / elapsed)
            obs_metrics.REGISTRY.observe("vm.run_seconds", elapsed)

    def run_many(self, input_sets: Sequence[Sequence[int]],
                 args: Optional[Sequence[object]] = None
                 ) -> List[ExecutionResult]:
        """Run the program once per input vector through one interpreter.

        Each run starts from :meth:`reset`, so result ``i`` is bit-identical
        to a fresh interpreter run with ``input_sets[i]`` — but compiled
        blocks, fused traces and the analyses behind them are built once and
        shared across the whole batch.
        """
        results = []
        for inputs in input_sets:
            self.reset(inputs)
            results.append(self.run(args=args))
        return results

    # -- execution ----------------------------------------------------------------

    def call_function(self, function: Function, args: List[object]) -> object:
        if function.is_declaration:
            return self._call_external(function, args)

        self.call_count += 1
        expected = len(function.args)
        if len(args) < expected:
            raise ExecutionError(
                f"call to @{function.name} with {len(args)} args, expected {expected}")

        env: Dict[int, object] = {}
        for formal, actual in zip(function.args, args):
            env[id(formal)] = actual

        if self._superblock:
            return self._call_superblock(function, env)
        if self.compiled:
            return self._call_compiled(function, env)

        block = function.entry_block
        while True:
            result = self._run_block_legacy(function, block, env)
            if isinstance(result, _Return):
                return result.value
            block = result

    def _call_external(self, function: Function, args: List[object]) -> object:
        handler = self._intrinsics.get(function.name)
        self.cycles += self.cost_model.intrinsic
        if handler is None:
            # Unknown externals behave as no-ops returning zero; workloads only
            # declare externals that the intrinsic table knows about, so this
            # path exists for robustness rather than correctness.
            return 0
        return handler(*args)

    def _run_block_legacy(self, function: Function, block: BasicBlock,
                          env: Dict[int, object]):
        for inst in block.instructions:
            self.steps += 1
            if self.steps > self.max_steps:
                raise StepLimitExceeded(
                    f"exceeded {self.max_steps} steps in @{function.name}")
            outcome = self._execute(function, inst, env)
            if isinstance(outcome, (_Return, BasicBlock)):
                return outcome
        raise ExecutionError(
            f"block {block.name} in @{function.name} fell through without terminator")

    # -- compiled dispatch --------------------------------------------------------

    def _call_compiled(self, function: Function, env: Dict[int, object]):
        """Run one function call through the compiled-block fast path.

        Counters are kept in locals across consecutive call-free blocks and
        flushed to the interpreter around anything that can observe them
        (nested calls, the step limit, and — via ``finally`` — exceptions),
        so successful runs see values identical to the legacy path.
        """
        cache = self._compiled_blocks
        max_steps = self.max_steps
        block = function.entry_block
        steps = self.steps
        instructions = self.instructions_executed
        cycles = self.cycles
        try:
            while True:
                compiled = cache.get(block)
                if compiled is None:
                    if self._compiler is None:
                        from .compiler import BlockCompiler
                        self._compiler = BlockCompiler(self)
                    compiled = self._compiler.compile_block(function, block)
                    cache[block] = compiled
                body, last, count, total_cost, per_step, has_call = compiled
                if not has_call and steps + count <= max_steps:
                    # call-free block comfortably below the limit: charge the
                    # counters in one batch and run the straight line; only
                    # the terminator's outcome needs inspecting
                    steps += count
                    instructions += count
                    cycles += total_cost
                    for step in body:
                        step(env)
                    outcome = last(env) if last is not None else None
                else:
                    # exact per-step accounting: recursion below a call and
                    # the step limit must observe the counters exactly as the
                    # legacy path does
                    self.steps = steps
                    self.instructions_executed = instructions
                    self.cycles = cycles
                    try:
                        outcome = self._run_block_exact(function, block,
                                                        per_step, env)
                    finally:
                        # reload even when the slow path raises, so the outer
                        # finally cannot clobber its exact accounting
                        steps = self.steps
                        instructions = self.instructions_executed
                        cycles = self.cycles
                if outcome is None:
                    raise ExecutionError(
                        f"block {block.name} in @{function.name} fell through "
                        f"without terminator")
                if outcome.__class__ is _Return:
                    return outcome.value
                block = outcome
        finally:
            self.steps = steps
            self.instructions_executed = instructions
            self.cycles = cycles

    def _run_block_exact(self, function: Function, block: BasicBlock,
                         per_step, env: Dict[int, object]):
        """Slow path: per-step counters and limit checks, legacy ordering."""
        for step, cost in per_step:
            self.steps += 1
            if self.steps > self.max_steps:
                raise StepLimitExceeded(
                    f"exceeded {self.max_steps} steps in @{function.name}")
            self.instructions_executed += 1
            self.cycles += cost
            outcome = step(env)
            if outcome is not None:
                return outcome
        return None

    def invalidate_compiled(self, function: Optional[Function] = None) -> None:
        """Drop compiled blocks and fused traces after IR mutation.

        With a function, only that function's state is dropped (a trace is
        dropped if *any* of its fused blocks belongs to the function, so
        blocks moved between functions cannot leave a live trace behind);
        with ``None``, everything.  Called directly by mutating code, or
        automatically when a wired ``AnalysisManager`` invalidates.
        """
        if self._trace_compiler is not None:
            self._trace_compiler.invalidate(function)
        if function is None:
            self._compiled_blocks.clear()
            self._traces.clear()
            self._block_heat.clear()
            if self._owns_analyses:
                self._analyses.invalidate_all()
            return
        for block in list(self._compiled_blocks):
            if block.parent is function:
                del self._compiled_blocks[block]
        for block in list(self._block_heat):
            if block.parent is function:
                del self._block_heat[block]
        for head, trace in list(self._traces.items()):
            if head.parent is function or any(
                    block.parent is function for block in trace.blocks):
                del self._traces[head]
        if self._owns_analyses:
            # a privately-owned manager has no pass pipeline invalidating
            # it, so the trace rebuild must not see its stale analyses
            self._analyses.invalidate(function)

    # -- superblock dispatch ------------------------------------------------------

    def _call_superblock(self, function: Function, env: Dict[int, object]):
        """Run one function call through fused traces.

        Hot chains execute as one generated function with the chain's step
        and cycle totals charged in a single batch; a taken side exit
        returns a ``(block, steps_back, cycles_back)`` tuple and the
        unexecuted tail is credited back.  Both trace construction and code
        generation are lazy: a block's chain is only selected on its second
        dispatch (one-shot code never pays chain selection), and a trace's
        step function is only generated once the trace has dispatched
        ``trace.jit_at`` times (sized so the fused steps already run
        through it match :attr:`TraceCompiler.JIT_WARMUP_STEPS` — roughly
        what ``compile()`` costs), so cold code never pays codegen.
        Anything a trace cannot cover (calls, the step limit in reach)
        drops to the compiled per-block path for exactly the legacy
        accounting.  Counters live in locals like ``_call_compiled``.
        """
        traces = self._traces
        block_heat = self._block_heat
        cache = self._compiled_blocks
        max_steps = self.max_steps
        verify = self.verify_traces
        block = function.entry_block
        steps = self.steps
        instructions = self.instructions_executed
        cycles = self.cycles
        try:
            while True:
                trace = traces.get(block)
                if trace is not None:
                    if verify:
                        self._check_trace(function, trace)
                    fast = trace.fast
                    if fast is None and trace.codegen_ok:
                        trace.heat += 1
                        if trace.heat >= trace.jit_at:
                            fast = self._trace_compiler.ensure_fast(function,
                                                                    trace)
                            if fast is not None:
                                obs_metrics.REGISTRY.counter(
                                    "vm.trace_codegen")
                                obs_tracing.event(
                                    "vm.trace_codegen", cat="measure",
                                    fn=function.name,
                                    head=trace.blocks[0].name,
                                    blocks=len(trace.blocks))
                    if fast is not None and steps + trace.count <= max_steps:
                        steps += trace.count
                        instructions += trace.count
                        cycles += trace.total_cost
                        outcome = fast(env)
                        if outcome.__class__ is tuple:
                            block, steps_back, cycles_back = outcome
                            steps -= steps_back
                            instructions -= steps_back
                            cycles -= cycles_back
                            continue
                        if outcome is None:
                            raise ExecutionError(
                                f"block {block.name} in @{function.name} "
                                f"fell through without terminator")
                        if outcome.__class__ is _Return:
                            return outcome.value
                        block = outcome
                        continue
                elif block not in block_heat:
                    block_heat[block] = 1
                else:
                    del block_heat[block]
                    self._build_trace(function, block)
                    continue
                # compiled per-block fallback, mirroring _call_compiled
                compiled = cache.get(block)
                if compiled is None:
                    compiled = self._compiled_block_for(function, block)
                body, last, count, total_cost, per_step, has_call = compiled
                if not has_call and steps + count <= max_steps:
                    steps += count
                    instructions += count
                    cycles += total_cost
                    for step in body:
                        step(env)
                    outcome = last(env) if last is not None else None
                else:
                    self.steps = steps
                    self.instructions_executed = instructions
                    self.cycles = cycles
                    try:
                        outcome = self._run_block_exact(function, block,
                                                        per_step, env)
                    finally:
                        steps = self.steps
                        instructions = self.instructions_executed
                        cycles = self.cycles
                if outcome is None:
                    raise ExecutionError(
                        f"block {block.name} in @{function.name} fell through "
                        f"without terminator")
                if outcome.__class__ is _Return:
                    return outcome.value
                block = outcome
        finally:
            self.steps = steps
            self.instructions_executed = instructions
            self.cycles = cycles

    def _compiled_block_for(self, function: Function, block: BasicBlock):
        compiled = self._compiled_blocks.get(block)
        if compiled is None:
            if self._compiler is None:
                from .compiler import BlockCompiler
                self._compiler = BlockCompiler(self)
            compiled = self._compiler.compile_block(function, block)
            self._compiled_blocks[block] = compiled
        return compiled

    def _build_trace(self, function: Function, block: BasicBlock):
        if self._trace_compiler is None:
            from .compiler import BlockCompiler, TraceCompiler
            if self._compiler is None:
                self._compiler = BlockCompiler(self)
            if self._analyses is None:
                from ..analysis.manager import AnalysisManager
                self._analyses = AnalysisManager()
                self._owns_analyses = True
            self._trace_compiler = TraceCompiler(self, self._compiler,
                                                 self._analyses)
        trace = self._trace_compiler.build_trace(function, block)
        self._traces[block] = trace
        obs_metrics.REGISTRY.counter("vm.traces_built")
        obs_tracing.event("vm.trace_build", cat="measure", fn=function.name,
                          head=block.name, blocks=len(trace.blocks))
        return trace

    def _check_trace(self, function: Function, trace) -> None:
        from .compiler import TraceCompiler
        if TraceCompiler.trace_fingerprint(trace.blocks) != trace.fingerprint:
            raise StaleTraceError(
                f"superblock trace at {trace.blocks[0].name} in "
                f"@{function.name} is stale: the IR changed without "
                f"invalidate_compiled()")

    # -- instruction dispatch -----------------------------------------------------

    def _execute(self, function: Function, inst: Instruction,
                 env: Dict[int, object]):
        self.instructions_executed += 1
        cm = self.cost_model

        if isinstance(inst, BinaryOp):
            self.cycles += cm.arithmetic
            env[id(inst)] = self._binop(inst, env)
            return None
        if isinstance(inst, Compare):
            self.cycles += cm.compare
            env[id(inst)] = self._compare(inst, env)
            return None
        if isinstance(inst, Alloca):
            self.cycles += cm.alloca
            size = inst.allocated_type.size_in_slots() * max(1, inst.count)
            allocation = Allocation([0] * max(1, size), label=f"%{inst.name}")
            env[id(inst)] = Pointer(allocation, 0)
            return None
        if isinstance(inst, Load):
            self.cycles += cm.load
            ptr = self._value(inst.pointer, env)
            env[id(inst)] = self._read(ptr)
            return None
        if isinstance(inst, Store):
            self.cycles += cm.store
            value = self._value(inst.value, env)
            ptr = self._value(inst.pointer, env)
            self._write(ptr, value)
            return None
        if isinstance(inst, GetElementPtr):
            self.cycles += cm.gep
            ptr = self._value(inst.pointer, env)
            index = int(self._value(inst.index, env))
            if not isinstance(ptr, Pointer):
                raise ExecutionError(f"gep on non-pointer value in @{function.name}")
            env[id(inst)] = ptr.moved(index)
            return None
        if isinstance(inst, Cast):
            self.cycles += cm.cast
            env[id(inst)] = self._cast(inst, env)
            return None
        if isinstance(inst, Select):
            self.cycles += cm.select
            cond = self._value(inst.condition, env)
            chosen = inst.true_value if self._truthy(cond) else inst.false_value
            env[id(inst)] = self._value(chosen, env)
            return None
        if isinstance(inst, Call):
            return self._call(function, inst, env)
        if isinstance(inst, Ret):
            self.cycles += cm.ret
            value = self._value(inst.value, env) if inst.value is not None else None
            return _Return(value)
        if isinstance(inst, Branch):
            self.cycles += cm.branch
            return inst.target
        if isinstance(inst, CondBranch):
            self.cycles += cm.cond_branch
            cond = self._value(inst.condition, env)
            return inst.true_target if self._truthy(cond) else inst.false_target
        if isinstance(inst, Switch):
            self.cycles += cm.switch
            value = int(self._value(inst.value, env))
            for constant, target in inst.cases:
                if int(constant.value) == value:
                    return target
            return inst.default_target
        if isinstance(inst, Unreachable):
            raise ExecutionError(f"reached unreachable in @{function.name}")
        raise ExecutionError(f"unknown instruction {inst.opcode}")

    # -- helpers ------------------------------------------------------------------

    def _value(self, value: Optional[Value], env: Dict[int, object]) -> object:
        if value is None:
            return None
        if isinstance(value, NullPointer):
            return NULL_SENTINEL
        if isinstance(value, Constant):
            return value.value
        if isinstance(value, UndefValue):
            return 0
        if isinstance(value, GlobalVariable):
            return self.globals[value.name]
        if isinstance(value, Function):
            return FuncPointer(value, 0)
        if id(value) in env:
            return env[id(value)]
        raise ExecutionError(f"use of undefined value %{value.name}")

    @staticmethod
    def _truthy(value: object) -> bool:
        if isinstance(value, (Pointer, FuncPointer)):
            return True
        return bool(value)

    def _read(self, ptr: object) -> object:
        if not isinstance(ptr, Pointer):
            raise ExecutionError(f"load from non-pointer value {ptr!r}")
        cells = ptr.allocation.cells
        if not 0 <= ptr.offset < len(cells):
            raise ExecutionError(
                f"out-of-bounds load at {ptr.allocation.label}+{ptr.offset}")
        return cells[ptr.offset]

    def _write(self, ptr: object, value: object) -> None:
        if not isinstance(ptr, Pointer):
            raise ExecutionError(f"store to non-pointer value {ptr!r}")
        cells = ptr.allocation.cells
        if not 0 <= ptr.offset < len(cells):
            raise ExecutionError(
                f"out-of-bounds store at {ptr.allocation.label}+{ptr.offset}")
        cells[ptr.offset] = value

    def _binop(self, inst: BinaryOp, env: Dict[int, object]) -> object:
        lhs = self._value(inst.lhs, env)
        rhs = self._value(inst.rhs, env)
        op = inst.op
        if op.startswith("f"):
            lhs, rhs = float(lhs), float(rhs)
            if op == "fadd":
                return lhs + rhs
            if op == "fsub":
                return lhs - rhs
            if op == "fmul":
                return lhs * rhs
            if op == "fdiv":
                return lhs / rhs if rhs != 0.0 else 0.0
            raise ExecutionError(f"unknown float op {op}")

        # pointer arithmetic through integer add/sub is allowed
        if isinstance(lhs, Pointer) and op in ("add", "sub"):
            delta = int(rhs)
            return lhs.moved(delta if op == "add" else -delta)

        lhs, rhs = int(lhs), int(rhs)
        if op == "add":
            result = lhs + rhs
        elif op == "sub":
            result = lhs - rhs
        elif op == "mul":
            result = lhs * rhs
        elif op == "sdiv":
            result = _truncated_div(lhs, rhs)
        elif op == "srem":
            result = lhs - _truncated_div(lhs, rhs) * rhs if rhs != 0 else 0
        elif op == "and":
            result = lhs & rhs
        elif op == "or":
            result = lhs | rhs
        elif op == "xor":
            result = lhs ^ rhs
        elif op == "shl":
            result = lhs << (rhs & 63)
        elif op == "ashr":
            result = lhs >> (rhs & 63)
        else:
            raise ExecutionError(f"unknown integer op {op}")
        if isinstance(inst.type, IntType):
            result = inst.type.wrap(result)
        return result

    def _compare(self, inst: Compare, env: Dict[int, object]) -> int:
        return self._compare_values(inst.predicate,
                                    self._value(inst.lhs, env),
                                    self._value(inst.rhs, env))

    @staticmethod
    def _compare_values(pred: str, lhs: object, rhs: object) -> int:
        if isinstance(lhs, (Pointer, FuncPointer)) or isinstance(rhs, (Pointer, FuncPointer)):
            equal = lhs == rhs
            if pred in ("eq", "oeq"):
                return 1 if equal else 0
            if pred in ("ne", "one"):
                return 0 if equal else 1
            # ordered comparison on pointers: compare identity-ish keys
            lhs_key = (id(getattr(lhs, "allocation", lhs)), getattr(lhs, "offset", 0))
            rhs_key = (id(getattr(rhs, "allocation", rhs)), getattr(rhs, "offset", 0))
            lhs, rhs = lhs_key, rhs_key
        table = {
            "eq": lhs == rhs, "ne": lhs != rhs,
            "slt": lhs < rhs, "sle": lhs <= rhs,
            "sgt": lhs > rhs, "sge": lhs >= rhs,
            "oeq": lhs == rhs, "one": lhs != rhs,
            "olt": lhs < rhs, "ole": lhs <= rhs,
            "ogt": lhs > rhs, "oge": lhs >= rhs,
        }
        return 1 if table[pred] else 0

    def _cast(self, inst: Cast, env: Dict[int, object]) -> object:
        value = self._value(inst.value, env)
        kind = inst.kind
        to_type = inst.type
        if kind in ("bitcast", "inttoptr", "ptrtoint"):
            return value
        if kind in ("trunc", "zext", "sext"):
            result = int(value)
            if isinstance(to_type, IntType):
                result = to_type.wrap(result)
            return result
        if kind == "fptosi":
            return int(value)
        if kind == "sitofp":
            return float(value)
        if kind in ("fpext", "fptrunc"):
            return float(value)
        raise ExecutionError(f"unknown cast kind {kind}")

    def _call(self, function: Function, inst: Call, env: Dict[int, object]):
        callee = self._value(inst.callee, env)
        args = [self._value(a, env) for a in inst.args]

        if isinstance(callee, FuncPointer):
            target = callee.function
            indirect = not isinstance(inst.callee, Function)
        elif isinstance(callee, Function):  # pragma: no cover - defensive
            target, indirect = callee, False
        else:
            raise ExecutionError(
                f"indirect call through non-function value in @{function.name}")

        self.cycles += self.cost_model.call_cost(len(args), indirect=indirect)
        result = self.call_function(target, args)
        if inst.has_result:
            env[id(inst)] = result if result is not None else 0
        return None


def _truncated_div(lhs: int, rhs: int) -> int:
    """C-style (truncate-toward-zero) integer division; division by zero is 0."""
    if rhs == 0:
        return 0
    quotient = abs(lhs) // abs(rhs)
    return quotient if (lhs >= 0) == (rhs >= 0) else -quotient


class _Return:
    __slots__ = ("value",)

    def __init__(self, value: object):
        self.value = value


class _ProgramExit(Exception):
    def __init__(self, code: int):
        super().__init__(f"exit({code})")
        self.code = code


def run_program(program: Program, inputs: Optional[Sequence[int]] = None,
                args: Optional[Sequence[object]] = None,
                max_steps: int = 5_000_000,
                cost_model: Optional[CostModel] = None,
                compiled: Optional[bool] = None,
                dispatch: Optional[str] = None) -> ExecutionResult:
    """Convenience wrapper: link (if needed), interpret, and return the result."""
    interpreter = Interpreter(program, cost_model=cost_model,
                              max_steps=max_steps, inputs=inputs,
                              compiled=compiled, dispatch=dispatch)
    return interpreter.run(args=args)
