"""A BinTuner-style iterative compilation tuner (Figure 9 comparison target).

BinTuner (Ren et al., PLDI 2021) searches compiler option sequences that
maximise the binary-code difference with respect to a baseline build.  The
reproduction searches over :class:`~repro.opt.pass_manager.OptOptions`
(optimization level, inlining threshold, individual pass toggles) with a
seeded hill-climbing loop whose default objective is the opcode-histogram
distance to the baseline binary — the same signal Figure 11 visualises.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field, replace
from typing import Callable, List, Optional, Tuple

from ..backend.binary import Binary
from ..backend.disassembler import opcode_histogram_distance
from ..backend.lowering import lower_program
from ..ir.module import Program
from ..opt.pass_manager import OptOptions
from ..opt.pipelines import optimize_program

Objective = Callable[[Binary, Binary], float]

_LEVELS = (0, 1, 2, 3)
_INLINE_THRESHOLDS = (0, 10, 30, 60, 120)
_ITERATION_COUNTS = (1, 2, 3)


@dataclass
class BinTunerResult:
    best_options: OptOptions
    best_binary: Binary
    best_score: float
    history: List[Tuple[str, float]] = field(default_factory=list)


def _random_options(rng: random.Random) -> OptOptions:
    return OptOptions(
        level=rng.choice(_LEVELS),
        lto=rng.random() < 0.5,
        inline_threshold=rng.choice(_INLINE_THRESHOLDS),
        enable_inlining=rng.random() < 0.8,
        enable_simplify_cfg=rng.random() < 0.8,
        enable_constant_folding=rng.random() < 0.8,
        enable_dce=rng.random() < 0.8,
        enable_dead_function_elim=rng.random() < 0.8,
        iterations=rng.choice(_ITERATION_COUNTS),
    )


def _mutate(options: OptOptions, rng: random.Random) -> OptOptions:
    field_name = rng.choice([
        "level", "lto", "inline_threshold", "enable_inlining",
        "enable_simplify_cfg", "enable_constant_folding", "enable_dce",
        "enable_dead_function_elim", "iterations"])
    if field_name == "level":
        return replace(options, level=rng.choice(_LEVELS))
    if field_name == "inline_threshold":
        return replace(options, inline_threshold=rng.choice(_INLINE_THRESHOLDS))
    if field_name == "iterations":
        return replace(options, iterations=rng.choice(_ITERATION_COUNTS))
    current = getattr(options, field_name)
    return replace(options, **{field_name: not current})


class BinTuner:
    """Iteratively searches for the option set maximising binary difference."""

    def __init__(self, iterations: int = 10, seed: int = 7,
                 objective: Optional[Objective] = None):
        self.iterations = iterations
        self.seed = seed
        self.objective = objective or opcode_histogram_distance

    def compile(self, program: Program, options: OptOptions) -> Binary:
        return lower_program(optimize_program(program, options))

    def tune(self, program: Program,
             baseline_options: Optional[OptOptions] = None) -> BinTunerResult:
        """Search for options maximising the difference to the baseline build.

        Following the paper's setup, the baseline is the O0 binary unless the
        caller supplies something else.
        """
        rng = random.Random(self.seed)
        baseline_options = baseline_options or OptOptions(level=0, lto=False)
        baseline_binary = self.compile(program, baseline_options)

        best_options = OptOptions(level=3, lto=True)
        best_binary = self.compile(program, best_options)
        best_score = self.objective(baseline_binary, best_binary)
        history: List[Tuple[str, float]] = [(best_options.label(), best_score)]

        for step in range(self.iterations):
            if step % 3 == 0:
                candidate = _random_options(rng)
            else:
                candidate = _mutate(best_options, rng)
            binary = self.compile(program, candidate)
            score = self.objective(baseline_binary, binary)
            history.append((candidate.label(), score))
            if score > best_score:
                best_options, best_binary, best_score = candidate, binary, score
        return BinTunerResult(best_options=best_options, best_binary=best_binary,
                              best_score=best_score, history=history)
