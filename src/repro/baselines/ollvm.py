"""Driver presenting the O-LLVM baselines with the same interface as Khaos.

The paper compares Khaos against the three O-LLVM obfuscations — instruction
substitution (*Sub*), bogus control flow (*Bog*) and control-flow flattening
(*Fla*, also evaluated at a 10% ratio as *Fla-10*).  Each driver clones and
links the input program, applies the corresponding pass and returns an
:class:`~repro.core.obfuscator.ObfuscationResult` whose provenance is the
identity map (intra-procedural obfuscation never changes the function set).
"""

from __future__ import annotations

from typing import List

from ..analysis.manager import AnalysisManager
from ..core.obfuscator import ObfuscationResult
from ..core.provenance import ProvenanceMap
from ..core.stats import KhaosStats
from ..ir.module import Program
from ..ir.verifier import assert_valid
from ..opt.pass_manager import Pass
from .bogus_cfg import BogusControlFlow
from .flattening import ControlFlowFlattening
from .substitution import InstructionSubstitution


class OLLVMObfuscator:
    """Applies one O-LLVM obfuscation to a program."""

    def __init__(self, label: str, passes: List[Pass]):
        self.label = label
        self.passes = passes

    def cache_key(self) -> tuple:
        """Identity of this obfuscator for :class:`~repro.core.variant_cache.VariantCache`."""
        return ("ollvm", self.label, tuple(
            (pass_.name, getattr(pass_, "ratio", None),
             getattr(pass_, "seed", None))
            for pass_ in self.passes))

    def obfuscate(self, program: Program, verify: bool = True) -> ObfuscationResult:
        working = program.link()
        module = working.modules[0]
        provenance = ProvenanceMap(f.name for f in module.defined_functions())
        analyses = AnalysisManager()
        for pass_ in self.passes:
            pass_.run(working, analyses)
        if verify:
            assert_valid(working, analyses=analyses)
        working.metadata["obfuscation"] = self.label
        return ObfuscationResult(program=working, provenance=provenance,
                                 stats=KhaosStats(), label=self.label)


def sub_obfuscator(ratio: float = 1.0, seed: int = 1) -> OLLVMObfuscator:
    return OLLVMObfuscator("sub", [InstructionSubstitution(ratio=ratio, seed=seed)])


def bogus_obfuscator(ratio: float = 1.0, seed: int = 2) -> OLLVMObfuscator:
    return OLLVMObfuscator("bog", [BogusControlFlow(ratio=ratio, seed=seed)])


def flattening_obfuscator(ratio: float = 1.0, seed: int = 3) -> OLLVMObfuscator:
    label = "fla" if ratio >= 0.999 else f"fla-{int(round(ratio * 100))}"
    return OLLVMObfuscator(label, [ControlFlowFlattening(ratio=ratio, seed=seed)])


def standard_ollvm_baselines(flatten_ratio: float = 0.1) -> List[OLLVMObfuscator]:
    """The baseline set of Figure 7/8: Sub, Bog and Fla-10."""
    return [sub_obfuscator(), bogus_obfuscator(),
            flattening_obfuscator(ratio=flatten_ratio)]
