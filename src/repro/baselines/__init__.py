"""Comparison targets: O-LLVM (Sub / Bog / Fla) and BinTuner."""

from .substitution import InstructionSubstitution
from .bogus_cfg import BogusControlFlow
from .flattening import ControlFlowFlattening
from .ollvm import (OLLVMObfuscator, bogus_obfuscator, flattening_obfuscator,
                    standard_ollvm_baselines, sub_obfuscator)
from .bintuner import BinTuner, BinTunerResult

__all__ = [
    "InstructionSubstitution", "BogusControlFlow", "ControlFlowFlattening",
    "OLLVMObfuscator", "bogus_obfuscator", "flattening_obfuscator",
    "standard_ollvm_baselines", "sub_obfuscator", "BinTuner", "BinTunerResult",
]
