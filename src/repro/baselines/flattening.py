"""O-LLVM-style control-flow flattening (the paper's *Fla* baseline).

Every original basic block of a flattened function becomes a case of a big
dispatcher ``switch`` driven by a state variable: terminators no longer jump
to each other, they store the next state and return to the dispatcher.  The
case numbering is lightly "encrypted" (XOR with a per-function key) to mimic
O-LLVM's obfuscated case relationship.

Because flattening is expensive (the paper measures a ~280% slowdown at 100%
ratio and therefore evaluates *Fla-10*, a 10% ratio), the pass takes a
``ratio`` argument that selects the fraction of functions to flatten.
"""

from __future__ import annotations

import random
from typing import Dict

from ..ir.basicblock import BasicBlock
from ..ir.function import Function
from ..ir.instructions import (Alloca, Branch, CondBranch, Ret, Select, Store,
                               Switch, Unreachable)
from ..ir.module import Module
from ..ir.types import I64
from ..ir.values import Constant
from ..opt.pass_manager import ModulePass
from ..opt.reg2mem import demote_undominated


class ControlFlowFlattening(ModulePass):
    """The *Fla* baseline; ``ratio`` = fraction of eligible functions flattened."""

    name = "ollvm-flattening"

    def __init__(self, ratio: float = 1.0, seed: int = 3):
        self.ratio = ratio
        self.seed = seed

    def run_on_module(self, module: Module, analyses=None) -> bool:
        rng = random.Random(self.seed)
        eligible = [f for f in module.defined_functions()
                    if f.block_count() >= 3
                    and not f.attributes.get("no_obfuscate")
                    and not f.eh_pairs]        # O-LLVM skips EH functions
        rng.shuffle(eligible)
        count = max(1, round(len(eligible) * self.ratio)) if eligible else 0
        changed = False
        for function in eligible[:count]:
            changed |= self._flatten(function, rng)
        return changed

    def _flatten(self, function: Function, rng: random.Random) -> bool:
        original_blocks = [b for b in function.blocks if b is not function.entry_block]
        if len(original_blocks) < 2:
            return False
        key = rng.randrange(1, 1 << 16)
        state_of: Dict[int, int] = {
            id(block): (index + 1) ^ key
            for index, block in enumerate(original_blocks)}

        entry = function.entry_block
        state_slot = Alloca(I64, name="fla.state")
        entry.insert(0, state_slot)

        dispatcher = function.add_block("fla.dispatch")
        default_block = function.add_block("fla.unreachable")
        default_block.append(Unreachable())

        # the entry's terminator now seeds the state and jumps to the dispatcher
        self._rewrite_terminator(entry, state_slot, state_of, dispatcher)

        load_state = self._make_state_load(dispatcher, state_slot)
        switch = Switch(load_state, default_block)
        for block in original_blocks:
            switch.add_case(Constant(I64, state_of[id(block)]), block)
        dispatcher.append(switch)

        for block in original_blocks:
            self._rewrite_terminator(block, state_slot, state_of, dispatcher)

        # every former edge now routes through the dispatcher, so defs in the
        # original blocks no longer dominate their downstream uses; spill them
        # the way O-LLVM runs reg2mem ahead of flattening
        demote_undominated(function)

        function.attributes["ollvm_flattened"] = True
        return True

    @staticmethod
    def _make_state_load(dispatcher: BasicBlock, state_slot: Alloca):
        from ..ir.instructions import Load
        load = Load(state_slot, name="fla.state.load")
        dispatcher.append(load)
        return load

    def _rewrite_terminator(self, block: BasicBlock, state_slot: Alloca,
                            state_of: Dict[int, int],
                            dispatcher: BasicBlock) -> None:
        term = block.terminator
        if term is None or isinstance(term, (Ret, Unreachable)):
            return
        if isinstance(term, Branch):
            target_state = state_of.get(id(term.target))
            if target_state is None:
                return
            block.remove(term)
            block.append(Store(Constant(I64, target_state), state_slot))
            block.append(Branch(dispatcher))
            return
        if isinstance(term, CondBranch):
            true_state = state_of.get(id(term.true_target))
            false_state = state_of.get(id(term.false_target))
            if true_state is None or false_state is None:
                return
            block.remove(term)
            chosen = Select(term.condition, Constant(I64, true_state),
                            Constant(I64, false_state), name="fla.next")
            block.append(chosen)
            block.append(Store(chosen, state_slot))
            block.append(Branch(dispatcher))
            return
        if isinstance(term, Switch):
            # leave original switches in place; their targets keep working
            # because the case blocks themselves still exist
            return
