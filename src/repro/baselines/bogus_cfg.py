"""O-LLVM-style bogus control flow (the paper's *Bog* baseline).

Each selected basic block is guarded by an opaque predicate that is always
true at runtime (``(x * (x + 1)) % 2 == 0`` for the value loaded from an
opaque global).  The false arm jumps to a junk block containing dead
arithmetic that finally falls back into the real code, so the CFG gains bogus
blocks and edges without changing behaviour.
"""

from __future__ import annotations

import random

from ..ir.basicblock import BasicBlock
from ..ir.function import Function
from ..ir.instructions import (Alloca, BinaryOp, Branch, Compare, CondBranch,
                               Load, Store)
from ..ir.module import Module
from ..ir.types import I64
from ..ir.values import Constant, GlobalVariable
from ..opt.pass_manager import ModulePass
from ..utils import stable_hash

OPAQUE_GLOBAL_NAME = "__bogus_opaque_x"


class BogusControlFlow(ModulePass):
    """The *Bog* baseline; ``ratio`` selects which blocks get a bogus guard."""

    name = "ollvm-bogus-cfg"

    def __init__(self, ratio: float = 1.0, seed: int = 2):
        self.ratio = ratio
        self.seed = seed

    def run_on_module(self, module: Module, analyses=None) -> bool:
        opaque = module.get_global(OPAQUE_GLOBAL_NAME)
        if opaque is None:
            opaque = GlobalVariable(OPAQUE_GLOBAL_NAME, I64, initializer=7)
            module.add_global(opaque)

        changed = False
        for function in module.defined_functions():
            if function.attributes.get("no_obfuscate"):
                continue
            # O-LLVM's BogusControlFlow skips exception-relevant functions
            if function.eh_pairs:
                continue
            changed |= self._run_on_function(function, opaque)
        return changed

    def _run_on_function(self, function: Function,
                         opaque: GlobalVariable) -> bool:
        rng = random.Random(stable_hash(self.seed, function.name))
        changed = False
        for block in list(function.blocks):
            if block is function.entry_block:
                continue
            if rng.random() > self.ratio:
                continue
            self._guard_block(function, block, opaque, rng)
            changed = True
        return changed

    def _guard_block(self, function: Function, block: BasicBlock,
                     opaque: GlobalVariable, rng: random.Random) -> None:
        guard = function.add_block(f"{block.name}.guard", before=block)
        junk = function.add_block(f"{block.name}.junk")

        # opaque predicate: x * (x + 1) is always even
        x = Load(opaque, name=f"{block.name}.x")
        x_plus = BinaryOp("add", x, Constant(I64, 1), name=f"{block.name}.x1")
        product = BinaryOp("mul", x, x_plus, name=f"{block.name}.xx1")
        parity = BinaryOp("and", product, Constant(I64, 1),
                          name=f"{block.name}.par")
        predicate = Compare("eq", parity, Constant(I64, 0),
                            name=f"{block.name}.opq")
        for inst in (x, x_plus, product, parity, predicate):
            guard.append(inst)
        guard.append(CondBranch(predicate, block, junk))

        # junk block: dead arithmetic into a scratch alloca, then "fall" into
        # the real block so the bogus path looks plausible
        scratch = Alloca(I64, name=f"{block.name}.scratch")
        function.entry_block.insert(0, scratch)
        junk_value = BinaryOp("mul", x, Constant(I64, rng.randint(3, 97)),
                              name=f"{block.name}.junkv")
        junk_sum = BinaryOp("add", junk_value, Constant(I64, rng.randint(1, 255)),
                            name=f"{block.name}.junks")
        junk.append(junk_value)
        junk.append(junk_sum)
        junk.append(Store(junk_sum, scratch))
        junk.append(Branch(block))

        # every edge that used to enter the block now enters the guard (except
        # the guard itself and the junk block, which must still reach the block)
        self._retarget(function, block, guard, skip=(guard, junk))

    @staticmethod
    def _retarget(function: Function, old: BasicBlock, new: BasicBlock,
                  skip=()) -> None:
        from ..ir.instructions import Switch
        skip_ids = {id(b) for b in skip} | {id(new)}
        for candidate in function.blocks:
            if id(candidate) in skip_ids:
                continue
            term = candidate.terminator
            if term is None:
                continue
            if isinstance(term, Branch) and term.target is old:
                term.target = new
            elif isinstance(term, CondBranch):
                if term.true_target is old:
                    term.true_target = new
                if term.false_target is old:
                    term.false_target = new
            elif isinstance(term, Switch):
                if term.default_target is old:
                    term.default_target = new
                term.cases = [(c, new if t is old else t) for c, t in term.cases]
