"""O-LLVM-style instruction substitution (the paper's *Sub* baseline).

Replaces integer arithmetic/logic instructions with equivalent but longer
sequences, following the strategies catalogued for Obfuscator-LLVM: e.g.
``a + b`` becomes ``a - (0 - b)``, ``a ^ b`` becomes ``(a | b) - (a & b)``.
This is a purely intra-procedural transformation, which is exactly why the
paper finds it weak against modern binary diffing.
"""

from __future__ import annotations

import random
from typing import Callable, Dict, List

from ..ir.basicblock import BasicBlock
from ..ir.function import Function
from ..ir.instructions import BinaryOp, Instruction
from ..ir.values import Constant
from ..opt.pass_manager import FunctionPass
from ..utils import stable_hash


def _sub_add(block: BasicBlock, position: int, inst: BinaryOp) -> List[Instruction]:
    # a + b  ->  a - (0 - b)
    neg = BinaryOp("sub", Constant(inst.type, 0), inst.rhs, name=f"{inst.name}.neg")
    add = BinaryOp("sub", inst.lhs, neg, name=inst.name)
    return [neg, add]


def _sub_add_v2(block: BasicBlock, position: int, inst: BinaryOp) -> List[Instruction]:
    # a + b  ->  (a ^ b) + 2*(a & b)
    xor = BinaryOp("xor", inst.lhs, inst.rhs, name=f"{inst.name}.x")
    anded = BinaryOp("and", inst.lhs, inst.rhs, name=f"{inst.name}.a")
    doubled = BinaryOp("shl", anded, Constant(inst.type, 1), name=f"{inst.name}.d")
    total = BinaryOp("add", xor, doubled, name=inst.name)
    return [xor, anded, doubled, total]


def _sub_sub(block: BasicBlock, position: int, inst: BinaryOp) -> List[Instruction]:
    # a - b  ->  a + (0 - b)
    neg = BinaryOp("sub", Constant(inst.type, 0), inst.rhs, name=f"{inst.name}.neg")
    add = BinaryOp("add", inst.lhs, neg, name=inst.name)
    return [neg, add]


def _sub_xor(block: BasicBlock, position: int, inst: BinaryOp) -> List[Instruction]:
    # a ^ b  ->  (a | b) - (a & b)
    ored = BinaryOp("or", inst.lhs, inst.rhs, name=f"{inst.name}.o")
    anded = BinaryOp("and", inst.lhs, inst.rhs, name=f"{inst.name}.a")
    result = BinaryOp("sub", ored, anded, name=inst.name)
    return [ored, anded, result]


def _sub_and(block: BasicBlock, position: int, inst: BinaryOp) -> List[Instruction]:
    # a & b  ->  (a | b) - (a ^ b)
    ored = BinaryOp("or", inst.lhs, inst.rhs, name=f"{inst.name}.o")
    xored = BinaryOp("xor", inst.lhs, inst.rhs, name=f"{inst.name}.x")
    result = BinaryOp("sub", ored, xored, name=inst.name)
    return [ored, xored, result]


def _sub_or(block: BasicBlock, position: int, inst: BinaryOp) -> List[Instruction]:
    # a | b  ->  (a & b) + (a ^ b)
    anded = BinaryOp("and", inst.lhs, inst.rhs, name=f"{inst.name}.a")
    xored = BinaryOp("xor", inst.lhs, inst.rhs, name=f"{inst.name}.x")
    result = BinaryOp("add", anded, xored, name=inst.name)
    return [anded, xored, result]


_STRATEGIES: Dict[str, List[Callable]] = {
    "add": [_sub_add, _sub_add_v2],
    "sub": [_sub_sub],
    "xor": [_sub_xor],
    "and": [_sub_and],
    "or": [_sub_or],
}


class InstructionSubstitution(FunctionPass):
    """The *Sub* baseline; ``ratio`` controls how many eligible sites change."""

    name = "ollvm-sub"
    # rewrites instructions within blocks; the block graph is untouched
    preserves = ("cfg", "domtree", "loops", "block_frequency")

    def __init__(self, ratio: float = 1.0, seed: int = 1):
        self.ratio = ratio
        self.seed = seed

    def run_on_function(self, function: Function, analyses=None) -> bool:
        rng = random.Random(stable_hash(self.seed, function.name))
        changed = False
        for block in function.blocks:
            for inst in list(block.instructions):
                if not isinstance(inst, BinaryOp):
                    continue
                strategies = _STRATEGIES.get(inst.op)
                if not strategies:
                    continue
                if not inst.type.is_integer:
                    continue
                if rng.random() > self.ratio:
                    continue
                strategy = rng.choice(strategies)
                position = block.instructions.index(inst)
                replacement = strategy(block, position, inst)
                block.remove(inst)
                for offset, new_inst in enumerate(replacement):
                    block.insert(position + offset, new_inst)
                self._replace_uses(function, inst, replacement[-1])
                changed = True
        return changed

    @staticmethod
    def _replace_uses(function: Function, old: Instruction,
                      new: Instruction) -> None:
        for inst in function.instructions():
            if inst is new:
                continue
            inst.replace_operand(old, new)
