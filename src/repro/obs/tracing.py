"""Span tracing: nested, attributed, ring-buffered, no-op when disabled.

Enabled by ``REPRO_TRACE`` (any non-empty value other than ``0``/``off``).
The disabled path is the one that must stay off the flame graph: ``span()``
checks one module-level flag and returns a shared no-op singleton — no
allocation, no clock read, no buffer append.  That keeps the pipeline's
instrumentation cheap enough to leave compiled in everywhere (the ≤2%
disabled-overhead budget of the telemetry PR).

Enabled, every finished span lands in a bounded per-process ring buffer
(``REPRO_TRACE_BUFFER`` records, default 200k) as a plain dict:

``{"type": "span", "name", "cat", "ts", "dur", "pid", "tid", "id",
   "parent", "seq", "args"}``

with microsecond epoch timestamps (``time.time_ns() // 1000`` — the unit
Chrome trace-event JSON wants) and a process-local ``seq`` so merged
multi-process traces order deterministically on ``(ts, pid, seq)``.
Instant events use ``type: "event"`` and no ``dur``.  The buffer is
drained by :func:`repro.obs.collect.flush` at task boundaries.
"""

from __future__ import annotations

import functools
import os
import threading
import time
from collections import deque
from typing import Any, Callable, Dict, List, Optional

_TRUTHY_OFF = ("", "0", "off", "false", "no")


def _env_enabled() -> bool:
    return os.environ.get("REPRO_TRACE", "").strip().lower() not in _TRUTHY_OFF


def _buffer_size() -> int:
    try:
        return max(1024, int(os.environ.get("REPRO_TRACE_BUFFER", "200000")))
    except ValueError:
        return 200000


_enabled = _env_enabled()
_buffer: deque = deque(maxlen=_buffer_size())
_seq = 0
_local = threading.local()


def active() -> bool:
    """Is tracing on?  The one flag every instrumentation site checks."""
    return _enabled


def set_enabled(flag: bool) -> None:
    """Force tracing on/off (tests and benches; env wins at import only)."""
    global _enabled
    _enabled = bool(flag)


def refresh() -> None:
    """Re-read ``REPRO_TRACE``/``REPRO_TRACE_BUFFER`` (spawned workers call
    this implicitly by importing fresh; long-lived processes call it after
    mutating the environment)."""
    global _enabled, _buffer
    _enabled = _env_enabled()
    size = _buffer_size()
    if _buffer.maxlen != size:
        _buffer = deque(_buffer, maxlen=size)


def _now_us() -> int:
    return time.time_ns() // 1000


def _stack() -> List["Span"]:
    stack = getattr(_local, "stack", None)
    if stack is None:
        stack = _local.stack = []
    return stack


def _next_seq() -> int:
    global _seq
    _seq += 1
    return _seq


class Span:
    """One timed region.  Context manager; ``set()`` adds attributes."""

    __slots__ = ("name", "cat", "attrs", "ts", "span_id", "parent_id")

    def __init__(self, name: str, cat: Optional[str],
                 attrs: Dict[str, Any]) -> None:
        self.name = name
        self.cat = cat
        self.attrs = attrs
        self.ts = 0
        self.span_id = 0
        self.parent_id: Optional[int] = None

    def set(self, **attrs: Any) -> "Span":
        self.attrs.update(attrs)
        return self

    def __enter__(self) -> "Span":
        stack = _stack()
        self.parent_id = stack[-1].span_id if stack else None
        if self.cat is None and stack:
            self.cat = stack[-1].cat          # inherit the phase
        self.span_id = _next_seq()
        stack.append(self)
        self.ts = _now_us()
        return self

    def __exit__(self, exc_type: Any, exc: Any, tb: Any) -> None:
        end = _now_us()
        stack = _stack()
        if stack and stack[-1] is self:
            stack.pop()
        if exc_type is not None:
            self.attrs["error"] = exc_type.__name__
        _buffer.append({
            "type": "span", "name": self.name, "cat": self.cat or "other",
            "ts": self.ts, "dur": max(0, end - self.ts),
            "pid": os.getpid(), "tid": threading.get_ident() & 0xFFFF,
            "id": self.span_id, "parent": self.parent_id,
            "seq": _next_seq(), "args": self.attrs,
        })


class _NoopSpan:
    """Shared do-nothing span handed out whenever tracing is off."""

    __slots__ = ()

    def set(self, **attrs: Any) -> "_NoopSpan":
        return self

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, exc_type: Any, exc: Any, tb: Any) -> None:
        return None


NOOP_SPAN = _NoopSpan()


def span(name: str, cat: Optional[str] = None, **attrs: Any):
    """Open a span (``with span("diff.shard", cat="diff", tool=...)``).

    When tracing is disabled this returns the shared no-op singleton —
    the flag check is the entire cost.
    """
    if not _enabled:
        return NOOP_SPAN
    return Span(name, cat, attrs)


def event(name: str, cat: Optional[str] = None, **attrs: Any) -> None:
    """Record an instant event (retry, timeout, quarantine, respawn...)."""
    if not _enabled:
        return
    stack = _stack()
    _buffer.append({
        "type": "event", "name": name,
        "cat": cat or (stack[-1].cat if stack else None) or "other",
        "ts": _now_us(), "pid": os.getpid(),
        "tid": threading.get_ident() & 0xFFFF,
        "parent": stack[-1].span_id if stack else None,
        "seq": _next_seq(), "args": attrs,
    })


def traced(name: Optional[str] = None, cat: Optional[str] = None) -> Callable:
    """Decorator form of :func:`span` for whole-function regions."""
    def decorate(fn: Callable) -> Callable:
        label = name or fn.__qualname__

        @functools.wraps(fn)
        def wrapper(*args: Any, **kwargs: Any) -> Any:
            if not _enabled:
                return fn(*args, **kwargs)
            with Span(label, cat, {}):
                return fn(*args, **kwargs)
        return wrapper
    return decorate


def drain() -> List[Dict[str, Any]]:
    """Return and clear the buffered records (flush-time)."""
    records = list(_buffer)
    _buffer.clear()
    return records


def _reset_after_fork() -> None:
    # a forked worker inherits the coordinator's span buffer; those records
    # belong to (and will be flushed by) the parent — re-flushing them from
    # the child would duplicate them in the merged trace
    _buffer.clear()


if hasattr(os, "register_at_fork"):
    os.register_at_fork(after_in_child=_reset_after_fork)


def pending() -> int:
    return len(_buffer)
