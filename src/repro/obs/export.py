"""Exporters: Chrome trace-event JSON (Perfetto / chrome://tracing) and a
flat metrics JSON.

The trace format is the object form ``{"traceEvents": [...]}`` with
complete-duration events (``ph: "X"``) for spans and instant events
(``ph: "i"``) for point occurrences, plus ``M``-phase process-name
metadata so per-worker lanes are labelled.  Timestamps are epoch
microseconds straight from the span layer — no rebasing, so traces from
different processes line up on the shared wall clock.
"""

from __future__ import annotations

import json
import os
from typing import Any, Dict, List, Optional

TRACE_SCHEMA = 1
METRICS_SCHEMA = 1


def chrome_trace(records: List[Dict[str, Any]]) -> Dict[str, Any]:
    """Convert merged span/event records into a Chrome trace-event dict."""
    events: List[Dict[str, Any]] = []
    pids = []
    for record in records:
        pid = record.get("pid", 0)
        if pid not in pids:
            pids.append(pid)
        base = {
            "name": record.get("name", "?"),
            "cat": record.get("cat") or "other",
            "ts": record.get("ts", 0),
            "pid": pid,
            "tid": record.get("tid", 0),
            "args": record.get("args", {}) or {},
        }
        if record.get("type") == "event":
            base["ph"] = "i"
            base["s"] = "t"          # thread-scoped instant
        else:
            base["ph"] = "X"
            base["dur"] = record.get("dur", 0)
        events.append(base)
    for pid in pids:
        events.append({"name": "process_name", "ph": "M", "pid": pid,
                       "tid": 0, "args": {"name": "repro worker %s" % pid}})
    return {"traceEvents": events, "displayTimeUnit": "ms",
            "otherData": {"schema": TRACE_SCHEMA, "generator": "repro.obs"}}


def write_chrome_trace(path: str, records: List[Dict[str, Any]]) -> str:
    payload = chrome_trace(records)
    tmp = path + ".tmp"
    with open(tmp, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, sort_keys=True)
    os.replace(tmp, path)
    return path


def write_metrics(path: str, merged: Dict[str, Any],
                  per_pid: Optional[Dict[str, Any]] = None) -> str:
    payload = {"schema": METRICS_SCHEMA, "merged": merged,
               "per_pid": per_pid or {}}
    tmp = path + ".tmp"
    with open(tmp, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, sort_keys=True)
    os.replace(tmp, path)
    return path


def validate_chrome_trace(payload: Any) -> List[str]:
    """Structural schema check (``trace_report.py --validate``).

    Returns a list of problems; empty means the trace should load in
    Perfetto / chrome://tracing.
    """
    problems: List[str] = []
    if not isinstance(payload, dict):
        return ["top level is not an object"]
    events = payload.get("traceEvents")
    if not isinstance(events, list):
        return ["traceEvents missing or not a list"]
    if not events:
        problems.append("traceEvents is empty")
    for i, ev in enumerate(events):
        where = "traceEvents[%d]" % i
        if not isinstance(ev, dict):
            problems.append("%s not an object" % where)
            continue
        ph = ev.get("ph")
        if ph not in ("X", "i", "M", "B", "E"):
            problems.append("%s bad ph %r" % (where, ph))
            continue
        if ph == "M":
            continue
        for key in ("name", "ts", "pid"):
            if key not in ev:
                problems.append("%s missing %s" % (where, key))
        if not isinstance(ev.get("ts", 0), (int, float)):
            problems.append("%s non-numeric ts" % where)
        if ph == "X":
            dur = ev.get("dur")
            if not isinstance(dur, (int, float)) or dur < 0:
                problems.append("%s bad dur %r" % (where, dur))
    return problems
