"""Cross-process telemetry collection.

The coordinator (``run_checkpointed``, or any driver) opens a *telemetry
run*: a directory ``<store>/telemetry/<run_id>/`` whose path is handed to
spawned workers through the ``REPRO_TELEMETRY_DIR`` environment variable
(the supervised executor spawns workers after the coordinator has set it,
so inheritance is free).  Each process — workers at task boundaries, the
coordinator at run exit — appends its buffered spans plus a metrics
snapshot to its own ``<pid>.jsonl``; nobody ever writes another process's
file, so no locking is needed.  At run exit the coordinator merges every
shard file with the stable order ``(ts, pid, seq)`` and writes the two
exports (``trace.json`` Chrome trace-event JSON + ``metrics.json``).

A run only opens when telemetry is wanted (``REPRO_TRACE`` or
``REPRO_METRICS`` truthy): the default pipeline writes no telemetry files
at all.  Nested opens (a fig8 driver inside a bench inside a test) are
no-ops — the outermost run owns the directory.
"""

from __future__ import annotations

import json
import os
from typing import Any, Dict, List, Optional, Tuple

from . import tracing
from .metrics import REGISTRY, merge_snapshots

ENV_DIR = "REPRO_TELEMETRY_DIR"
_TRUTHY_OFF = ("", "0", "off", "false", "no")


def metrics_wanted() -> bool:
    return (os.environ.get("REPRO_METRICS", "").strip().lower()
            not in _TRUTHY_OFF)


def telemetry_wanted() -> bool:
    """Should a run directory be opened at all?"""
    return tracing.active() or metrics_wanted()


def telemetry_dir() -> Optional[str]:
    """The active run directory this process flushes into (or None)."""
    return os.environ.get(ENV_DIR) or None


def flush(directory: Optional[str] = None) -> Optional[str]:
    """Append this process's buffered spans + a metrics snapshot to its
    ``<pid>.jsonl`` shard file.  Called by workers at task boundaries and
    by the coordinator at run exit; a no-op without an active run."""
    directory = directory or telemetry_dir()
    if directory is None:
        return None
    records = tracing.drain() if tracing.active() else []
    path = os.path.join(directory, "%d.jsonl" % os.getpid())
    try:
        with open(path, "a", encoding="utf-8") as fh:
            for record in records:
                fh.write(json.dumps(record, sort_keys=True,
                                    default=repr) + "\n")
            snap = REGISTRY.snapshot()
            if snap["counters"] or snap["gauges"] or snap["histograms"]:
                fh.write(json.dumps(
                    {"type": "metrics", "pid": os.getpid(), **snap},
                    sort_keys=True, default=repr) + "\n")
    except OSError:
        return None        # telemetry must never fail the pipeline
    return path


class TelemetryRun:
    """Context manager owning one ``telemetry/<run_id>/`` directory."""

    def __init__(self, directory: str, run_id: str) -> None:
        self.directory = directory
        self.run_id = run_id
        self.owned = False          # outermost open owns merge + env

    def __enter__(self) -> "TelemetryRun":
        if telemetry_dir() is not None:       # nested: outer run owns it
            self.directory = telemetry_dir()
            return self
        os.makedirs(self.directory, exist_ok=True)
        os.environ[ENV_DIR] = self.directory
        self.owned = True
        return self

    def __exit__(self, exc_type: Any, exc: Any, tb: Any) -> None:
        if not self.owned:
            return
        flush(self.directory)
        try:
            finalize_run(self.directory)
        except OSError:
            pass
        os.environ.pop(ENV_DIR, None)


class _NullRun:
    directory = None
    run_id = None

    def __enter__(self) -> "_NullRun":
        return self

    def __exit__(self, exc_type: Any, exc: Any, tb: Any) -> None:
        return None


def open_run(store_root: Optional[str], run_id: str):
    """Open a telemetry run under ``<store_root>/telemetry/<run_id>/``.

    Returns a no-op context when telemetry is disabled or there is no
    store tree to put the run in.
    """
    if store_root is None or not telemetry_wanted():
        return _NullRun()
    return TelemetryRun(os.path.join(str(store_root), "telemetry", run_id),
                        run_id)


def read_shards(directory: str) -> Tuple[List[Dict[str, Any]],
                                         List[Dict[str, Any]]]:
    """Read every per-pid shard file: (trace records, metrics snapshots)."""
    records: List[Dict[str, Any]] = []
    snapshots: List[Dict[str, Any]] = []
    try:
        names = sorted(os.listdir(directory))
    except OSError:
        return records, snapshots
    for name in names:
        if not name.endswith(".jsonl"):
            continue
        try:
            with open(os.path.join(directory, name), encoding="utf-8") as fh:
                for line in fh:
                    line = line.strip()
                    if not line:
                        continue
                    try:
                        record = json.loads(line)
                    except ValueError:
                        continue          # truncated trailing line
                    if record.get("type") == "metrics":
                        snapshots.append(record)
                    else:
                        records.append(record)
        except OSError:
            continue
    return records, snapshots


def merge_records(records: List[Dict[str, Any]]) -> List[Dict[str, Any]]:
    """Deterministic global order: ``(ts, pid, seq)``.

    ``seq`` is process-local and monotonic, so two merges of the same
    shard files always agree — including ties on the microsecond clock.
    """
    return sorted(records, key=lambda r: (r.get("ts", 0), r.get("pid", 0),
                                          r.get("seq", 0)))


def finalize_run(directory: str) -> Dict[str, str]:
    """Merge shard files and write ``trace.json`` + ``metrics.json``."""
    from .export import write_chrome_trace, write_metrics
    records, snapshots = read_shards(directory)
    merged = merge_records(records)
    trace_path = os.path.join(directory, "trace.json")
    metrics_path = os.path.join(directory, "metrics.json")
    write_chrome_trace(trace_path, merged)
    # later snapshots from the same pid supersede earlier ones (counters
    # are monotonic within a process), then pids sum
    last: Dict[int, Dict[str, Any]] = {}
    for snap in snapshots:
        last[int(snap.get("pid", 0))] = snap
    write_metrics(metrics_path,
                  merge_snapshots([last[pid] for pid in sorted(last)]),
                  per_pid={str(pid): {k: last[pid].get(k, {})
                                      for k in ("counters", "gauges",
                                                "histograms")}
                           for pid in sorted(last)})
    return {"trace": trace_path, "metrics": metrics_path}
