"""Unified telemetry: metrics registry, span tracing, cross-process
collection and trace export.

Quick map:

- :mod:`.metrics` — process-global :data:`~repro.obs.metrics.REGISTRY`
  of counters/gauges/histograms; always on (a handful of dict ops), the
  backing store for every legacy ``stats()`` façade;
- :mod:`.tracing` — ``span()``/``event()``/``traced`` guarded by the
  ``REPRO_TRACE`` module flag; no-op singleton when off;
- :mod:`.collect` — per-process ``<pid>.jsonl`` flushes into
  ``<store>/telemetry/<run_id>/`` and the deterministic merge;
- :mod:`.export` — Chrome trace-event JSON + flat metrics JSON.

``scripts/trace_report.py`` is the human front end.
"""

from .metrics import REGISTRY, MetricsRegistry, counter, gauge, observe
from .tracing import active, event, span, traced
from .collect import flush, open_run, telemetry_dir

__all__ = [
    "REGISTRY", "MetricsRegistry", "counter", "gauge", "observe",
    "active", "event", "span", "traced",
    "flush", "open_run", "telemetry_dir",
]
