"""Process-wide metrics registry: counters, gauges, fixed-bucket histograms.

The registry is the single home for every runtime counter in the pipeline;
the older ad-hoc surfaces (``ArtifactStore.stats()``, the ``VMBatch``
attributes, ``worker_cache_events()``, ``ShardRunStats``) are façades over
it.  Design constraints, in order:

1. **cheap enough to leave on** — an increment is one dict ``get`` + add on
   a plain ``dict``; no locks (CPython dict ops are atomic enough for the
   single-threaded worker processes this pipeline runs), no allocation on
   the hot path beyond the first touch of a name;
2. **per-instance views with global accumulation** — a component that needs
   resettable local counters (the store, a batch) owns a child registry
   whose increments also propagate to its parent, so ``reset()`` on the
   child never erases the process-wide totals that get flushed to
   telemetry;
3. **mergeable snapshots** — ``snapshot()`` is plain JSON-able data and
   ``merge_snapshots`` sums counters / keeps last gauges / adds histogram
   buckets, so per-worker flushes combine deterministically.

Histograms use fixed log-spaced bucket bounds so two processes always
agree on bucket edges; quantiles are estimated from the cumulative bucket
counts (upper-bound rule) with exact ``min``/``max``/``sum``/``count``
kept alongside.
"""

from __future__ import annotations

import os
from typing import Any, Dict, List, Optional, Sequence

# Default histogram bucket upper bounds (seconds-flavoured log scale, but
# dimensionless: callers observe whatever unit they like as long as they
# are consistent per metric name).  The final implicit bucket is +inf.
DEFAULT_BOUNDS: Sequence[float] = (
    1e-6, 2.5e-6, 5e-6,
    1e-5, 2.5e-5, 5e-5,
    1e-4, 2.5e-4, 5e-4,
    1e-3, 2.5e-3, 5e-3,
    1e-2, 2.5e-2, 5e-2,
    1e-1, 2.5e-1, 5e-1,
    1.0, 2.5, 5.0, 10.0, 30.0, 60.0,
)


class Histogram:
    """Fixed-bucket histogram with exact count/sum/min/max."""

    __slots__ = ("bounds", "buckets", "count", "total", "minimum", "maximum")

    def __init__(self, bounds: Sequence[float] = DEFAULT_BOUNDS) -> None:
        self.bounds = tuple(bounds)
        self.buckets = [0] * (len(self.bounds) + 1)   # last = overflow
        self.count = 0
        self.total = 0.0
        self.minimum: Optional[float] = None
        self.maximum: Optional[float] = None

    def observe(self, value: float) -> None:
        lo, hi = 0, len(self.bounds)
        while lo < hi:                                # bisect over bounds
            mid = (lo + hi) // 2
            if value <= self.bounds[mid]:
                hi = mid
            else:
                lo = mid + 1
        self.buckets[lo] += 1
        self.count += 1
        self.total += value
        if self.minimum is None or value < self.minimum:
            self.minimum = value
        if self.maximum is None or value > self.maximum:
            self.maximum = value

    def quantile(self, q: float) -> float:
        """Bucket-estimated quantile (upper-bound rule); exact at the tails."""
        if self.count == 0:
            return 0.0
        target = q * self.count
        seen = 0
        for i, n in enumerate(self.buckets):
            seen += n
            if seen >= target and n:
                if i >= len(self.bounds):             # overflow bucket
                    return float(self.maximum or 0.0)
                return float(self.bounds[i])
        return float(self.maximum or 0.0)

    def summary(self) -> Dict[str, Any]:
        return {
            "count": self.count,
            "sum": self.total,
            "min": self.minimum if self.minimum is not None else 0.0,
            "max": self.maximum if self.maximum is not None else 0.0,
            "p50": self.quantile(0.50),
            "p95": self.quantile(0.95),
            "p99": self.quantile(0.99),
            "buckets": list(self.buckets),
            "bounds": list(self.bounds),
        }


class MetricsRegistry:
    """A namespace of counters, gauges and histograms.

    ``parent`` chains increments upward: a child registry is a resettable
    local view whose traffic still lands in the process-global registry
    (and therefore in the per-run telemetry flush).
    """

    def __init__(self, parent: Optional["MetricsRegistry"] = None) -> None:
        self.parent = parent
        self.counters: Dict[str, float] = {}
        self.gauges: Dict[str, float] = {}
        self.histograms: Dict[str, Histogram] = {}

    # -- write side -------------------------------------------------------
    def counter(self, name: str, value: float = 1) -> None:
        self.counters[name] = self.counters.get(name, 0) + value
        if self.parent is not None:
            self.parent.counter(name, value)

    def gauge(self, name: str, value: float) -> None:
        self.gauges[name] = value
        if self.parent is not None:
            self.parent.gauge(name, value)

    def observe(self, name: str, value: float,
                bounds: Sequence[float] = DEFAULT_BOUNDS) -> None:
        hist = self.histograms.get(name)
        if hist is None:
            hist = self.histograms[name] = Histogram(bounds)
        hist.observe(value)
        if self.parent is not None:
            self.parent.observe(name, value, bounds)

    # -- read side --------------------------------------------------------
    def get(self, name: str, default: float = 0) -> float:
        return self.counters.get(name, default)

    def prefixed(self, prefix: str) -> Dict[str, float]:
        """Counters under ``prefix.`` with the prefix stripped."""
        cut = len(prefix) + 1
        return {name[cut:]: value for name, value in self.counters.items()
                if name.startswith(prefix + ".")}

    def snapshot(self) -> Dict[str, Any]:
        return {
            "counters": dict(self.counters),
            "gauges": dict(self.gauges),
            "histograms": {name: hist.summary()
                           for name, hist in self.histograms.items()},
        }

    def reset(self, prefix: Optional[str] = None) -> None:
        """Zero this registry (never the parent: global totals survive)."""
        if prefix is None:
            self.counters.clear()
            self.gauges.clear()
            self.histograms.clear()
            return
        for table in (self.counters, self.gauges, self.histograms):
            for name in [k for k in table if k.startswith(prefix)]:
                del table[name]


def merge_snapshots(snapshots: List[Dict[str, Any]]) -> Dict[str, Any]:
    """Combine per-process snapshots: counters/histograms sum, gauges last."""
    counters: Dict[str, float] = {}
    gauges: Dict[str, float] = {}
    histograms: Dict[str, Dict[str, Any]] = {}
    for snap in snapshots:
        for name, value in snap.get("counters", {}).items():
            counters[name] = counters.get(name, 0) + value
        gauges.update(snap.get("gauges", {}))
        for name, summ in snap.get("histograms", {}).items():
            prev = histograms.get(name)
            if prev is None or prev.get("bounds") != summ.get("bounds"):
                histograms[name] = dict(summ)
                continue
            prev["count"] += summ["count"]
            prev["sum"] += summ["sum"]
            prev["min"] = min(prev["min"], summ["min"]) if prev["count"] else 0.0
            prev["max"] = max(prev["max"], summ["max"])
            prev["buckets"] = [a + b for a, b in
                               zip(prev["buckets"], summ["buckets"])]
    # re-derive quantiles for summed histograms from the merged buckets
    for summ in histograms.values():
        total = summ["count"]
        if not total:
            continue
        bounds = summ["bounds"]
        for key, q in (("p50", 0.50), ("p95", 0.95), ("p99", 0.99)):
            target = q * total
            seen = 0
            est = summ["max"]
            for i, n in enumerate(summ["buckets"]):
                seen += n
                if seen >= target and n:
                    est = bounds[i] if i < len(bounds) else summ["max"]
                    break
            summ[key] = float(est)
    return {"counters": counters, "gauges": gauges, "histograms": histograms}


#: The process-global registry every instrumented component reports into.
REGISTRY = MetricsRegistry()


def _reset_after_fork() -> None:
    # a forked worker inherits the coordinator's registry state; without
    # this guard each worker's snapshot would re-export (and the merge
    # re-sum) counts the coordinator already owns
    REGISTRY.reset()


if hasattr(os, "register_at_fork"):
    os.register_at_fork(after_in_child=_reset_after_fork)


def counter(name: str, value: float = 1) -> None:
    REGISTRY.counter(name, value)


def gauge(name: str, value: float) -> None:
    REGISTRY.gauge(name, value)


def observe(name: str, value: float) -> None:
    REGISTRY.observe(name, value)
