"""Lowering from IR to the virtual machine ISA.

The code generator is deliberately simple (every value lives in a stack slot,
operations go through scratch registers), but it models the aspects of real
x86-64 code generation that the paper's evaluation depends on:

* the SysV calling convention — six register arguments, the rest pushed on the
  stack — which is what makes the fusion pass's parameter-list compression
  and the fission data-flow reduction observable in the binary;
* call/branch structure and per-opcode byte sizes, which feed the diffing
  tools and the opcode-histogram distance of Figure 11;
* the Khaos tagged-pointer intrinsics lower to plain and/or/shift sequences,
  exactly as the real implementation hides them in ordinary arithmetic.
"""

from __future__ import annotations

from typing import Dict, Optional

from ..ir.function import Function, Linkage
from ..ir.instructions import (Alloca, BinaryOp, Branch, Call, Cast, Compare,
                               CondBranch, GetElementPtr, Instruction, Load,
                               Ret, Select, Store, Switch, Unreachable)
from ..ir.module import Module, Program
from ..ir.types import FloatType
from ..ir.values import (Constant, GlobalVariable, NullPointer, UndefValue,
                         Value)
from .binary import Binary, BinaryFunction
from .isa import ARG_REGISTERS, MachineBlock, RETURN_REGISTER

_BINOP_OPCODES = {
    "add": "add", "sub": "sub", "mul": "imul", "sdiv": "idiv", "srem": "idiv",
    "and": "and", "or": "or", "xor": "xor", "shl": "shl", "ashr": "sar",
    "fadd": "addsd", "fsub": "subsd", "fmul": "mulsd", "fdiv": "divsd",
}

_CMP_SETCC = {
    "eq": "sete", "ne": "setne", "slt": "setl", "sle": "setle",
    "sgt": "setg", "sge": "setge",
    "oeq": "sete", "one": "setne", "olt": "setl", "ole": "setle",
    "ogt": "setg", "oge": "setge",
}

_CMP_JCC = {
    "eq": "je", "ne": "jne", "slt": "jl", "sle": "jle", "sgt": "jg",
    "sge": "jge",
}

# Intrinsics inserted by the fusion pass; they lower to inline bit twiddling
# rather than calls so the obfuscated binary contains no telltale symbols.
_TAG_INTRINSICS = {"__khaos_tag_ptr", "__khaos_extract_tag", "__khaos_clear_tag"}


class FunctionLowering:
    def __init__(self, function: Function):
        self.function = function
        self.slots: Dict[int, int] = {}
        self.frame_size = 0
        self._assign_slots()

    # -- frame layout -------------------------------------------------------------

    def _assign_slot(self, value: Value, size: int = 1) -> int:
        self.frame_size += 8 * size
        self.slots[id(value)] = self.frame_size
        return self.frame_size

    def _assign_slots(self) -> None:
        for arg in self.function.args:
            self._assign_slot(arg)
        for inst in self.function.instructions():
            if isinstance(inst, Alloca):
                size = inst.allocated_type.size_in_slots() * max(1, inst.count)
                self._assign_slot(inst, max(1, size))
            elif inst.has_result:
                self._assign_slot(inst)

    def slot_ref(self, value: Value) -> str:
        return f"[rbp-{self.slots[id(value)]}]"

    # -- operand helpers ----------------------------------------------------------

    def load_operand(self, block: MachineBlock, value: Value, reg: str) -> None:
        if isinstance(value, NullPointer):
            block.append("xor", reg, reg)
        elif isinstance(value, Constant):
            if isinstance(value.type, FloatType):
                block.append("movsd", reg, f"${value.value}")
            else:
                block.append("mov", reg, f"${value.value}")
        elif isinstance(value, UndefValue):
            block.append("xor", reg, reg)
        elif isinstance(value, GlobalVariable):
            block.append("lea", reg, f"[rip+{value.name}]")
        elif isinstance(value, Function):
            block.append("lea", reg, f"[rip+{value.name}]")
        elif id(value) in self.slots:
            block.append("mov", reg, self.slot_ref(value))
        else:
            # value produced in a block we have not slotted (should not happen)
            block.append("xor", reg, reg)

    def store_result(self, block: MachineBlock, inst: Instruction,
                     reg: str = RETURN_REGISTER) -> None:
        if inst.has_result and id(inst) in self.slots:
            block.append("mov", self.slot_ref(inst), reg)

    # -- main lowering ------------------------------------------------------------

    def lower(self) -> BinaryFunction:
        function = self.function
        result = BinaryFunction(function.name,
                                exported=function.linkage != Linkage.INTERNAL)
        if function.is_declaration:
            return result

        label_of = {id(b): f"{function.name}.{b.name}" for b in function.blocks}

        for index, ir_block in enumerate(function.blocks):
            mblock = MachineBlock(label_of[id(ir_block)])
            result.blocks.append(mblock)
            if index == 0:
                self._emit_prologue(mblock)
            for inst in ir_block.instructions:
                self._lower_instruction(mblock, inst, label_of)
            mblock.successors = [label_of[id(s)] for s in ir_block.successors()
                                 if id(s) in label_of]
        return result

    def _emit_prologue(self, block: MachineBlock) -> None:
        block.append("push", "rbp")
        block.append("mov", "rbp", "rsp")
        if self.frame_size:
            block.append("sub", "rsp", f"${self.frame_size}")
        for i, arg in enumerate(self.function.args):
            if i < len(ARG_REGISTERS):
                block.append("mov", self.slot_ref(arg), ARG_REGISTERS[i])
            else:
                stack_offset = 16 + 8 * (i - len(ARG_REGISTERS))
                block.append("mov", "rax", f"[rbp+{stack_offset}]")
                block.append("mov", self.slot_ref(arg), "rax")

    def _emit_epilogue(self, block: MachineBlock) -> None:
        block.append("leave")
        block.append("ret")

    # -- per-instruction lowering -------------------------------------------------

    def _lower_instruction(self, block: MachineBlock, inst: Instruction,
                           label_of: Dict[int, str]) -> None:
        if isinstance(inst, Alloca):
            block.append("lea", "rax", f"[rbp-{self.slots[id(inst)]}]")
            # the slot assigned to the alloca doubles as its storage; the
            # pointer value itself is rematerialised by users via lea
            return
        if isinstance(inst, BinaryOp):
            self._lower_binop(block, inst)
            return
        if isinstance(inst, Compare):
            self.load_operand(block, inst.lhs, "rax")
            self.load_operand(block, inst.rhs, "r10")
            block.append("cmp", "rax", "r10")
            block.append(_CMP_SETCC[inst.predicate], "al")
            block.append("movzx", "rax", "al")
            self.store_result(block, inst)
            return
        if isinstance(inst, Load):
            self.load_operand(block, inst.pointer, "rax")
            block.append("mov", "rax", "[rax]")
            self.store_result(block, inst)
            return
        if isinstance(inst, Store):
            self.load_operand(block, inst.value, "rax")
            self.load_operand(block, inst.pointer, "r10")
            block.append("mov", "[r10]", "rax")
            return
        if isinstance(inst, GetElementPtr):
            self.load_operand(block, inst.pointer, "rax")
            self.load_operand(block, inst.index, "r10")
            block.append("lea", "rax", "[rax+r10*8]")
            self.store_result(block, inst)
            return
        if isinstance(inst, Cast):
            self._lower_cast(block, inst)
            return
        if isinstance(inst, Select):
            self.load_operand(block, inst.condition, "rax")
            block.append("test", "rax", "rax")
            self.load_operand(block, inst.true_value, "r10")
            self.load_operand(block, inst.false_value, "r11")
            block.append("cmp", "rax", "$0")
            block.append("mov", "rax", "r10")
            block.append("sete", "al")
            self.store_result(block, inst)
            return
        if isinstance(inst, Call):
            self._lower_call(block, inst)
            return
        if isinstance(inst, Ret):
            if inst.value is not None:
                self.load_operand(block, inst.value, RETURN_REGISTER)
            else:
                block.append("xor", RETURN_REGISTER, RETURN_REGISTER)
            self._emit_epilogue(block)
            return
        if isinstance(inst, Branch):
            block.append("jmp", jump_target=label_of[id(inst.target)])
            return
        if isinstance(inst, CondBranch):
            self.load_operand(block, inst.condition, "rax")
            block.append("test", "rax", "rax")
            block.append("jne", jump_target=label_of[id(inst.true_target)])
            block.append("jmp", jump_target=label_of[id(inst.false_target)])
            return
        if isinstance(inst, Switch):
            self.load_operand(block, inst.value, "rax")
            for constant, target in inst.cases:
                block.append("cmp", "rax", f"${constant.value}")
                block.append("je", jump_target=label_of[id(target)])
            block.append("jmp", jump_target=label_of[id(inst.default_target)])
            return
        if isinstance(inst, Unreachable):
            block.append("nop")
            return
        block.append("nop")

    def _lower_binop(self, block: MachineBlock, inst: BinaryOp) -> None:
        opcode = _BINOP_OPCODES[inst.op]
        if inst.op.startswith("f"):
            self.load_operand(block, inst.lhs, "xmm0")
            self.load_operand(block, inst.rhs, "xmm1")
            block.append(opcode, "xmm0", "xmm1")
            block.append("movsd", self.slot_ref(inst), "xmm0")
            return
        self.load_operand(block, inst.lhs, "rax")
        self.load_operand(block, inst.rhs, "r10")
        if inst.op in ("shl", "ashr"):
            block.append("mov", "rcx", "r10")
            block.append(opcode, "rax", "cl")
        elif inst.op in ("sdiv", "srem"):
            block.append("idiv", "r10")
            if inst.op == "srem":
                block.append("mov", "rax", "rdx")
        else:
            block.append(opcode, "rax", "r10")
        self.store_result(block, inst)

    def _lower_cast(self, block: MachineBlock, inst: Cast) -> None:
        self.load_operand(block, inst.value, "rax")
        if inst.kind == "sitofp":
            block.append("cvtsi2sd", "xmm0", "rax")
            block.append("movsd", self.slot_ref(inst), "xmm0")
            return
        if inst.kind == "fptosi":
            block.append("cvttsd2si", "rax", "xmm0")
        elif inst.kind in ("trunc", "zext", "sext"):
            block.append("movzx" if inst.kind == "zext" else "mov", "rax", "rax")
        self.store_result(block, inst)

    def _lower_call(self, block: MachineBlock, inst: Call) -> None:
        callee = inst.callee
        callee_name = getattr(callee, "name", None)
        if callee_name in _TAG_INTRINSICS:
            self._lower_tag_intrinsic(block, inst, callee_name)
            return

        register_args = inst.args[:len(ARG_REGISTERS)]
        stack_args = inst.args[len(ARG_REGISTERS):]
        for value in reversed(stack_args):
            self.load_operand(block, value, "rax")
            block.append("push", "rax")
        for reg, value in zip(ARG_REGISTERS, register_args):
            self.load_operand(block, value, reg)

        if isinstance(callee, Function):
            block.append("call", callee.name, call_target=callee.name)
        else:
            self.load_operand(block, callee, "r11")
            block.append("call", "r11")
        if stack_args:
            block.append("add", "rsp", f"${8 * len(stack_args)}")
        self.store_result(block, inst)

    def _lower_tag_intrinsic(self, block: MachineBlock, inst: Call,
                             name: str) -> None:
        # tag lives in bits 1-2 of the function pointer (16-byte alignment
        # guarantees they are free), matching appendix A.1 of the paper
        if name == "__khaos_tag_ptr":
            self.load_operand(block, inst.args[0], "rax")
            self.load_operand(block, inst.args[1], "r10")
            block.append("shl", "r10", "$1")
            block.append("or", "rax", "r10")
        elif name == "__khaos_extract_tag":
            self.load_operand(block, inst.args[0], "rax")
            block.append("sar", "rax", "$1")
            block.append("and", "rax", "$3")
        else:  # __khaos_clear_tag
            self.load_operand(block, inst.args[0], "rax")
            block.append("and", "rax", "$-8")
        self.store_result(block, inst)


def lower_function(function: Function) -> BinaryFunction:
    return FunctionLowering(function).lower()


def lower_module(module: Module, name: Optional[str] = None) -> Binary:
    binary = Binary(name or module.name)
    for function in module.functions.values():
        if function.is_declaration:
            continue
        binary.functions.append(lower_function(function))
    return binary


def lower_program(program: Program) -> Binary:
    linked = program if len(program.modules) == 1 else program.link()
    binary = lower_module(linked.modules[0], name=program.name)
    binary.metadata["entry"] = program.entry
    return binary
