"""The virtual instruction set the backend lowers to.

The ISA is x86-64 flavoured: two-operand moves and ALU ops, condition codes,
SysV-style argument registers, push/pop for stack arguments.  Binary diffing
tools consume these instruction streams (opcodes, operand shapes, control-flow
and call structure), so the encoding is chosen to expose the same kinds of
features the real tools extract, not to be executable.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple


# Integer argument registers of the modelled calling convention (SysV AMD64).
ARG_REGISTERS = ("rdi", "rsi", "rdx", "rcx", "r8", "r9")
RETURN_REGISTER = "rax"
SCRATCH_REGISTERS = ("rax", "r10", "r11")

# Rough byte sizes per opcode, used for function-size features and symbol
# table layout.  Values approximate typical x86-64 encodings.
OPCODE_SIZES = {
    "mov": 3, "movzx": 4, "lea": 4,
    "add": 3, "sub": 3, "imul": 4, "idiv": 3, "neg": 3,
    "and": 3, "or": 3, "xor": 3, "shl": 3, "sar": 3,
    "cmp": 3, "test": 3,
    "sete": 3, "setne": 3, "setl": 3, "setle": 3, "setg": 3, "setge": 3,
    "jmp": 2, "je": 2, "jne": 2, "jl": 2, "jle": 2, "jg": 2, "jge": 2,
    "call": 5, "ret": 1, "leave": 1, "push": 2, "pop": 2, "nop": 1,
    "cvtsi2sd": 4, "cvttsd2si": 4,
    "addsd": 4, "subsd": 4, "mulsd": 4, "divsd": 4, "ucomisd": 4,
    "movsd": 4,
}

DEFAULT_OPCODE_SIZE = 3

# Opcode categories used by the diffing feature extractors (VulSeeker-style
# per-block semantic features).
TRANSFER_OPCODES = {"jmp", "je", "jne", "jl", "jle", "jg", "jge"}
CALL_OPCODES = {"call"}
ARITHMETIC_OPCODES = {"add", "sub", "imul", "idiv", "neg", "and", "or", "xor",
                      "shl", "sar", "addsd", "subsd", "mulsd", "divsd"}
MOVE_OPCODES = {"mov", "movzx", "movsd", "lea"}
STACK_OPCODES = {"push", "pop", "leave"}
COMPARE_OPCODES = {"cmp", "test", "ucomisd", "sete", "setne", "setl", "setle",
                   "setg", "setge"}


@dataclass
class MachineInstruction:
    """One lowered instruction: an opcode plus textual operands."""

    opcode: str
    operands: Tuple[str, ...] = ()
    call_target: Optional[str] = None     # symbol name for direct calls
    jump_target: Optional[str] = None     # label for branches

    @property
    def size(self) -> int:
        return OPCODE_SIZES.get(self.opcode, DEFAULT_OPCODE_SIZE)

    def text(self) -> str:
        if self.operands:
            return f"{self.opcode} {', '.join(self.operands)}"
        return self.opcode

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{self.text()}>"


@dataclass
class MachineBlock:
    """A labelled sequence of machine instructions."""

    label: str
    instructions: List[MachineInstruction] = field(default_factory=list)
    successors: List[str] = field(default_factory=list)

    def append(self, opcode: str, *operands: str,
               call_target: Optional[str] = None,
               jump_target: Optional[str] = None) -> MachineInstruction:
        inst = MachineInstruction(opcode, tuple(operands),
                                  call_target=call_target,
                                  jump_target=jump_target)
        self.instructions.append(inst)
        return inst

    @property
    def size(self) -> int:
        return sum(i.size for i in self.instructions)


def instruction_category(opcode: str) -> str:
    if opcode in TRANSFER_OPCODES:
        return "transfer"
    if opcode in CALL_OPCODES:
        return "call"
    if opcode in ARITHMETIC_OPCODES:
        return "arithmetic"
    if opcode in MOVE_OPCODES:
        return "move"
    if opcode in STACK_OPCODES:
        return "stack"
    if opcode in COMPARE_OPCODES:
        return "compare"
    return "other"
