"""The ``Binary`` container produced by the backend.

A :class:`Binary` is what the diffing tools in :mod:`repro.diffing` consume:
a set of :class:`BinaryFunction` objects, each with labelled machine blocks,
a control-flow graph, direct call targets and a size; plus an optional symbol
table (the paper compares *un-stripped* binaries, which is what lets BinDiff
exploit function names).
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from .isa import MachineBlock, MachineInstruction


@dataclass
class BinaryFunction:
    name: str
    blocks: List[MachineBlock] = field(default_factory=list)
    exported: bool = False

    # -- derived features ---------------------------------------------------------

    def instructions(self) -> List[MachineInstruction]:
        return [inst for block in self.blocks for inst in block.instructions]

    @property
    def instruction_count(self) -> int:
        return sum(len(b.instructions) for b in self.blocks)

    @property
    def block_count(self) -> int:
        return len(self.blocks)

    @property
    def edge_count(self) -> int:
        return sum(len(b.successors) for b in self.blocks)

    @property
    def size(self) -> int:
        return sum(b.size for b in self.blocks)

    def call_targets(self) -> List[str]:
        return [inst.call_target for inst in self.instructions()
                if inst.call_target is not None]

    @property
    def call_count(self) -> int:
        return sum(1 for inst in self.instructions() if inst.opcode == "call")

    def successors_of(self, label: str) -> List[str]:
        for block in self.blocks:
            if block.label == label:
                return list(block.successors)
        return []

    def block_map(self) -> Dict[str, MachineBlock]:
        return {b.label: b for b in self.blocks}

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<BinaryFunction {self.name} blocks={self.block_count} "
                f"insts={self.instruction_count}>")


@dataclass
class Binary:
    name: str
    functions: List[BinaryFunction] = field(default_factory=list)
    stripped: bool = False
    metadata: Dict[str, object] = field(default_factory=dict)

    def function_names(self) -> List[str]:
        return [f.name for f in self.functions]

    def get_function(self, name: str) -> Optional[BinaryFunction]:
        for f in self.functions:
            if f.name == name:
                return f
        return None

    @property
    def total_size(self) -> int:
        return sum(f.size for f in self.functions)

    @property
    def total_instructions(self) -> int:
        return sum(f.instruction_count for f in self.functions)

    def call_graph_edges(self) -> List[Tuple[str, str]]:
        edges: List[Tuple[str, str]] = []
        defined = {f.name for f in self.functions}
        for f in self.functions:
            for target in f.call_targets():
                if target in defined:
                    edges.append((f.name, target))
        return edges

    def callers_of(self, name: str) -> Set[str]:
        return {caller for caller, callee in self.call_graph_edges()
                if callee == name}

    def callees_of(self, name: str) -> Set[str]:
        return {callee for caller, callee in self.call_graph_edges()
                if caller == name}

    def content_digest(self) -> str:
        """A stable SHA-256 fingerprint of the machine code.

        Covers every function's blocks, instructions (opcode, operands, call
        and jump targets) and CFG edges in their on-disk order — two binaries
        with the same digest are the same program, independently of object
        identity.  Used to assert that artifact-store round trips (pickle →
        disk → unpickle, possibly in another process) preserve lowered
        binaries exactly.
        """
        hasher = hashlib.sha256()
        hasher.update(f"binary\x00{self.name}\x00{self.stripped}\n".encode())
        for function in self.functions:
            hasher.update(
                f"fn\x00{function.name}\x00{function.exported}\n".encode())
            for block in function.blocks:
                hasher.update(f"bb\x00{block.label}\x00"
                              f"{','.join(block.successors)}\n".encode())
                for inst in block.instructions:
                    hasher.update(
                        f"in\x00{inst.opcode}\x00{','.join(inst.operands)}"
                        f"\x00{inst.call_target or ''}"
                        f"\x00{inst.jump_target or ''}\n".encode())
        return hasher.hexdigest()

    def strip(self) -> "Binary":
        """Return a copy with anonymised function names (symbol table removed)."""
        renamed: List[BinaryFunction] = []
        mapping: Dict[str, str] = {}
        for i, f in enumerate(self.functions):
            mapping[f.name] = f"sub_{0x401000 + i * 0x40:x}"
        for f in self.functions:
            new_blocks = []
            for block in f.blocks:
                new_block = MachineBlock(block.label, list(block.instructions),
                                         list(block.successors))
                new_instructions = []
                for inst in new_block.instructions:
                    if inst.call_target in mapping:
                        inst = MachineInstruction(
                            inst.opcode, inst.operands,
                            call_target=mapping[inst.call_target],
                            jump_target=inst.jump_target)
                    new_instructions.append(inst)
                new_block.instructions = new_instructions
                new_blocks.append(new_block)
            renamed.append(BinaryFunction(mapping[f.name], new_blocks,
                                          exported=f.exported))
        stripped = Binary(self.name, renamed, stripped=True,
                          metadata=dict(self.metadata))
        stripped.metadata["strip_mapping"] = mapping
        return stripped

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<Binary {self.name} functions={len(self.functions)} "
                f"size={self.total_size}>")
