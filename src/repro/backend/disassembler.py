"""Opcode histograms and histogram distances (Figure 11, `objdump`-style).

The paper disassembles every binary, builds a per-binary histogram of opcodes
and reports the (normalised) vector distance between the original and the
obfuscated binary.  :func:`opcode_histogram` and
:func:`opcode_histogram_distance` reproduce that computation over
:class:`~repro.backend.binary.Binary` objects.
"""

from __future__ import annotations

import math
from collections import Counter
from typing import Dict, List

from .binary import Binary, BinaryFunction


def opcode_histogram(binary: Binary) -> Dict[str, int]:
    counter: Counter = Counter()
    for function in binary.functions:
        for inst in function.instructions():
            counter[inst.opcode] += 1
    return dict(counter)


def function_opcode_histogram(function: BinaryFunction) -> Dict[str, int]:
    counter: Counter = Counter()
    for inst in function.instructions():
        counter[inst.opcode] += 1
    return dict(counter)


def opcode_histogram_distance(a: Binary, b: Binary) -> float:
    """Euclidean distance between the two opcode histograms."""
    hist_a = opcode_histogram(a)
    hist_b = opcode_histogram(b)
    keys = set(hist_a) | set(hist_b)
    return math.sqrt(sum((hist_a.get(k, 0) - hist_b.get(k, 0)) ** 2
                         for k in keys))


def normalised_distances(original: Binary,
                         obfuscated: Dict[str, Binary]) -> Dict[str, float]:
    """Distance of each obfuscated binary to the original, normalised by the max.

    Mirrors the paper's normalisation: "we used the max distance of all
    obfuscated programs as the baseline to normalize these distances".
    """
    raw = {label: opcode_histogram_distance(original, binary)
           for label, binary in obfuscated.items()}
    maximum = max(raw.values()) if raw else 0.0
    if maximum <= 0.0:
        return {label: 0.0 for label in raw}
    return {label: value / maximum for label, value in raw.items()}


def disassemble(binary: Binary) -> str:
    """A human-readable listing, mainly for the examples and debugging."""
    lines: List[str] = [f"; binary {binary.name} "
                        f"({len(binary.functions)} functions, "
                        f"{binary.total_size} bytes)"]
    for function in binary.functions:
        lines.append(f"\n{function.name}:")
        for block in function.blocks:
            lines.append(f"  {block.label}:")
            for inst in block.instructions:
                suffix = ""
                if inst.call_target:
                    suffix = f"    ; -> {inst.call_target}"
                elif inst.jump_target:
                    suffix = f"    ; -> {inst.jump_target}"
                lines.append(f"    {inst.text()}{suffix}")
    return "\n".join(lines)
