"""Backend: lowering to a virtual x86-64-flavoured ISA and Binary containers."""

from .isa import (ARG_REGISTERS, MachineBlock, MachineInstruction,
                  RETURN_REGISTER, instruction_category)
from .binary import Binary, BinaryFunction
from .lowering import lower_function, lower_module, lower_program
from .disassembler import (disassemble, function_opcode_histogram,
                           normalised_distances, opcode_histogram,
                           opcode_histogram_distance)

__all__ = [
    "ARG_REGISTERS", "MachineBlock", "MachineInstruction", "RETURN_REGISTER",
    "instruction_category", "Binary", "BinaryFunction", "lower_function",
    "lower_module", "lower_program", "disassemble",
    "function_opcode_histogram", "normalised_distances", "opcode_histogram",
    "opcode_histogram_distance",
]
