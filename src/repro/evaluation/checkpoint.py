"""Checkpoint/resume for the sharded experiment matrices.

A fig6–10 matrix run is a deterministic list of shard units, each a pure
function of its store key — which means an *interrupted* run (a ``kill -9``,
a power loss, an aborted chaos test) should never throw completed work away.
This module journals every completed shard so a restarted run re-executes
only the unfinished ones:

* each shard's finished result is persisted in the shared
  :class:`~repro.store.artifact_store.ArtifactStore` under kind
  :data:`~repro.store.artifact_store.KIND_SHARD`, keyed by the shard's
  value-based identity (tool config × variant keys × slice) — the same
  key discipline as every other store object, so two different runs that
  contain the same shard share its result;
* a :class:`RunManifest` under ``<store root>/runs/<run_id>.jsonl`` journals
  the digests of the shards *this run* completed — one ``O_APPEND`` JSON
  line per shard, appended from :func:`run_checkpointed`'s ``on_result``
  hook as results arrive, so the journal is current the instant a shard
  finishes, not when the run ends.  ``run_id`` hashes the run's full shard
  key list: a restart with the same matrix resolves to the same manifest,
  while any change to the matrix (labels, tools, partitioning) starts a
  fresh journal;
* on start, :func:`run_checkpointed` loads the manifest, revives every
  journaled shard's result from the store (``normalize`` rewrites its
  counters so revived shards report as store reads, not fresh scores) and
  hands only the remainder to
  :func:`~repro.evaluation.executor.run_tasks`.

Without ``REPRO_STORE_DIR`` (or with ``REPRO_CHECKPOINT=off``) the layer is
a transparent pass-through — the serial no-store path stays the untouched
differential reference.  A journaled digest whose object was lost or
quarantined is simply re-executed: the manifest is advisory, the store is
the truth, exactly like the
:class:`~repro.store.generation_log.GenerationLog` ledger.

This is the contract a future multi-machine coordinator (ROADMAP item 1)
partitions work against: shard keys are machine-independent, so "which
units are finished" is a property of the shared tree, not of any process.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Set, TypeVar

from ..obs import metrics as obs_metrics
from ..obs import tracing as obs_tracing
from ..obs.collect import open_run
from ..store.artifact_store import (KIND_SHARD, StoreError, store_digest,
                                    store_dir_from_env, store_from_env)
from ..store.backend import RemoteBackend, RemoteStoreError
from .executor import run_tasks

Task = TypeVar("Task")
Result = TypeVar("Result")

#: Subdirectory of the store root holding one journal file per run identity.
RUNS_DIR = "runs"


def checkpoint_enabled(environ=os.environ) -> bool:
    """Checkpointing is on by default; ``REPRO_CHECKPOINT=off`` disables it.

    The off switch exists for measurements that must not short-circuit
    (e.g. the ``fault_overhead`` bench re-runs one matrix twice through two
    schedulers on one tree) and for tests that specifically exercise the
    executor rather than the resume path.
    """
    value = environ.get("REPRO_CHECKPOINT", "").strip().lower()
    if value in ("", "on", "1", "true"):
        return True
    if value in ("off", "0", "false"):
        return False
    raise ValueError(
        f"REPRO_CHECKPOINT must be 'on' or 'off', got {value!r}")


def run_id(run_parts: object) -> str:
    """The stable identity of one matrix run's shard list (hex, 16 chars)."""
    return store_digest("run", run_parts)[:16]


def _parse_journal(text: str) -> Set[str]:
    """The completed-shard digests of one journal's lines — tolerant of
    torn trailing lines, shared by the local and remote manifests."""
    done: Set[str] = set()
    for line in text.splitlines():
        line = line.strip()
        if not line:
            continue
        try:
            entry = json.loads(line)
        except json.JSONDecodeError:
            continue  # torn trailing line from a killed writer
        digest = entry.get("digest") if isinstance(entry, dict) else None
        if isinstance(digest, str):
            done.add(digest)
    return done


class RunManifest:
    """The append-only journal of one run's completed shard digests.

    Lives at ``<root>/runs/<run_id>.jsonl``; one JSON line per completed
    shard, appended with a single ``O_APPEND`` write (atomic under POSIX),
    so concurrent workers of one coordinated run may share a journal and a
    torn trailing line from a killed process at worst under-reports one
    shard — which is then re-executed, never mis-resumed.
    """

    def __init__(self, root: str, identity: str):
        self.root = root
        self.identity = identity
        self.path = os.path.join(root, RUNS_DIR, f"{identity}.jsonl")
        self.done: Set[str] = set()
        self._load()

    def _load(self) -> None:
        try:
            with open(self.path, "r", encoding="utf-8") as fh:
                text = fh.read()
        except OSError:
            return
        self.done |= _parse_journal(text)

    def mark_done(self, digest: str) -> None:
        """Journal one completed shard — O(1), durable before returning."""
        self.done.add(digest)
        os.makedirs(os.path.dirname(self.path), exist_ok=True)
        line = json.dumps({"digest": digest}) + "\n"
        fd = os.open(self.path, os.O_WRONLY | os.O_CREAT | os.O_APPEND,
                     0o644)
        try:
            os.write(fd, line.encode("utf-8"))
            # the journal line is the promise "this shard will not re-run";
            # fsync before returning so a crash cannot retract it
            os.fsync(fd)
        finally:
            os.close(fd)


class RemoteRunManifest:
    """A :class:`RunManifest` hosted by the store server (``/runs/<id>``).

    The journal must live next to the objects it references — GC marks
    journal-reachable shards live, and a coordinated fleet shares one
    journal — so a remote-attached run appends its lines through the
    server's ``O_APPEND`` endpoint instead of a local file.  A transient
    append failure under-reports one shard (it re-executes next run —
    safe, and counted in ``store.remote_errors`` by the backend); it
    never mis-resumes.
    """

    def __init__(self, backend: RemoteBackend, identity: str):
        self.backend = backend
        self.identity = identity
        self.done: Set[str] = set()
        try:
            self.done |= _parse_journal(
                backend.fetch_run_journal(identity))
        except RemoteStoreError:
            pass  # cold journal: everything re-executes, nothing is wrong

    def mark_done(self, digest: str) -> None:
        self.done.add(digest)
        line = json.dumps({"digest": digest}) + "\n"
        try:
            self.backend.append_run_journal(self.identity, line)
        except RemoteStoreError:
            pass  # under-reported, re-executed next run; never mis-resumed


@dataclass
class ShardRunStats:
    """Resume accounting — "zero re-executes of journaled units" reads this.

    ``planned`` is the run's full shard count, ``resumed`` how many were
    revived from the journal + store without executing, ``executed`` how
    many actually ran, ``journaled`` how many completions were appended to
    the manifest this run.
    """

    planned: int = 0
    resumed: int = 0
    executed: int = 0
    journaled: int = 0

    def as_dict(self) -> Dict[str, int]:
        return {"planned": self.planned, "resumed": self.resumed,
                "executed": self.executed, "journaled": self.journaled}


class _Sentinel:
    __slots__ = ()


_ABSENT = _Sentinel()


def run_checkpointed(task_fn: Callable[[Task], Result], tasks: Sequence[Task],
                     task_keys: Sequence[object], run_parts: object,
                     jobs: Optional[int] = None, chunksize: int = 1,
                     normalize: Optional[Callable[[Result], Result]] = None,
                     stats: Optional[ShardRunStats] = None) -> List[Result]:
    """:func:`run_tasks` with journaled, resumable shard results.

    ``task_keys[i]`` is the value-based store key of ``tasks[i]``'s result;
    ``run_parts`` identifies the run (normally the full key tuple).  Results
    come back in task order, exactly like :func:`run_tasks`: journaled
    shards are revived from the store (and passed through ``normalize``, so
    their counters report as store reads), the remainder execute through the
    scheduler and are persisted + journaled the moment each completes — an
    abort mid-run keeps everything already finished.
    """
    tasks = list(tasks)
    keys = list(task_keys)
    if len(tasks) != len(keys):
        raise ValueError(
            f"run_checkpointed: {len(tasks)} tasks but {len(keys)} keys")
    root = store_dir_from_env()
    identity = run_id(run_parts)
    # the telemetry run wraps even the checkpoint-off paths: the bench's
    # REPRO_CHECKPOINT=off arms still produce a merged trace.  open_run is
    # a no-op without a store tree or with telemetry disabled, and nested
    # opens defer to the outermost run.
    with open_run(root, identity):
        with obs_tracing.span("run", cat="coordinate", run_id=identity,
                              tasks=len(tasks)):
            return _run_checkpointed(task_fn, tasks, keys, identity, root,
                                     jobs, chunksize, normalize, stats)


def _run_checkpointed(task_fn, tasks, keys, identity, root, jobs, chunksize,
                      normalize, stats) -> List[Result]:
    if not checkpoint_enabled():
        return run_tasks(task_fn, tasks, jobs=jobs, chunksize=chunksize)
    try:
        store = store_from_env(max_memory_entries=8)
    except (StoreError, OSError):
        # an unusable tree (or unreachable server) degrades to a plain
        # (un-resumable) run, same as the worker cache's storeless
        # degradation
        store = None
    if store is None or not store.persistent:
        return run_tasks(task_fn, tasks, jobs=jobs, chunksize=chunksize)
    if store.root is not None:
        manifest = RunManifest(store.root, identity)
    else:
        manifest = RemoteRunManifest(store.backend, identity)
    if stats is not None:
        stats.planned = len(tasks)
    obs_metrics.counter("checkpoint.planned", len(tasks))

    results: List[object] = [_ABSENT] * len(tasks)
    digests = [store_digest(KIND_SHARD, key) for key in keys]
    # a warm remote resume revives many shards at once: coalesce their
    # fetch into batch requests instead of one round trip per shard
    store.prefetch(KIND_SHARD, [keys[index]
                                for index, digest in enumerate(digests)
                                if digest in manifest.done])
    pending: List[int] = []
    for index, digest in enumerate(digests):
        if digest in manifest.done:
            payload = store.get(KIND_SHARD, keys[index], _ABSENT)
            if payload is not _ABSENT:
                results[index] = normalize(payload) if normalize else payload
                if stats is not None:
                    stats.resumed += 1
                obs_metrics.counter("checkpoint.resumed")
                continue
            # journaled but lost/quarantined: the store is the truth
        pending.append(index)
    if len(pending) < len(tasks):
        obs_tracing.event("checkpoint.resume", cat="coordinate",
                          run_id=identity,
                          resumed=len(tasks) - len(pending),
                          pending=len(pending))

    if pending:
        def journal(position: int, value: Result) -> None:
            index = pending[position]
            results[index] = value
            store.put(KIND_SHARD, keys[index], value)
            manifest.mark_done(digests[index])
            obs_metrics.counter("checkpoint.journaled")
            obs_tracing.event("checkpoint.journal", cat="coordinate",
                              shard=digests[index][:12])
            if stats is not None:
                stats.journaled += 1

        run_tasks(task_fn, [tasks[index] for index in pending], jobs=jobs,
                  chunksize=chunksize, on_result=journal)
        obs_metrics.counter("checkpoint.executed", len(pending))
        if stats is not None:
            stats.executed += len(pending)
    return results  # type: ignore[return-value]
