"""Experiment drivers: one per table / figure of the paper's evaluation."""

from .overhead import OverheadReport, OverheadRow, figure6, figure7, measure_overhead
from .precision import PrecisionReport, PrecisionRow, figure8, measure_precision
from .escape import (ESCAPE_LABELS, ESCAPE_RANKS, EscapeReport, EscapeRow,
                     figure10, measure_escape)
from .bintuner_compare import BinTunerReport, SimilarityRow, figure9, measure_bintuner
from .opcode_distance import DistanceReport, figure11, measure_opcode_distance
from .internals import InternalsReport, InternalsRow, measure_internals, table2
from .reporting import format_table, matrix_table, overhead_table
from .experiments import EXPERIMENTS, Experiment, experiment_names, run_experiment
from .executor import (reset_worker_cache, resolve_jobs, run_tasks,
                       worker_cache)
from .sharding import (ShardBatch, measure_overhead_sharded,
                       shard_overhead_matrix)
from .diff_sharding import (DiffShardStats, measure_bintuner_sharded,
                            measure_escape_sharded, measure_precision_sharded,
                            resolve_diff_shards, shard_diff_matrix)

__all__ = [
    "OverheadReport", "OverheadRow", "figure6", "figure7", "measure_overhead",
    "PrecisionReport", "PrecisionRow", "figure8", "measure_precision",
    "ESCAPE_LABELS", "ESCAPE_RANKS", "EscapeReport", "EscapeRow", "figure10",
    "measure_escape", "BinTunerReport", "SimilarityRow", "figure9",
    "measure_bintuner", "DistanceReport", "figure11", "measure_opcode_distance",
    "InternalsReport", "InternalsRow", "measure_internals", "table2",
    "format_table", "matrix_table", "overhead_table", "EXPERIMENTS",
    "Experiment", "experiment_names", "run_experiment",
    "reset_worker_cache", "resolve_jobs", "run_tasks", "worker_cache",
    "ShardBatch", "measure_overhead_sharded", "shard_overhead_matrix",
    "DiffShardStats", "measure_bintuner_sharded", "measure_escape_sharded",
    "measure_precision_sharded", "resolve_diff_shards", "shard_diff_matrix",
]
