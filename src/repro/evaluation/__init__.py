"""Experiment drivers: one per table / figure of the paper's evaluation."""

from .overhead import OverheadReport, OverheadRow, figure6, figure7, measure_overhead
from .precision import PrecisionReport, PrecisionRow, figure8, measure_precision
from .escape import (ESCAPE_LABELS, ESCAPE_RANKS, EscapeReport, EscapeRow,
                     figure10, measure_escape)
from .bintuner_compare import BinTunerReport, SimilarityRow, figure9, measure_bintuner
from .opcode_distance import DistanceReport, figure11, measure_opcode_distance
from .internals import InternalsReport, InternalsRow, measure_internals, table2
from .reporting import format_table, matrix_table, overhead_table
from .experiments import EXPERIMENTS, Experiment, experiment_names, run_experiment
from .executor import (ExecutorTaskError, executor_mode, reset_worker_cache,
                       resolve_jobs, resolve_task_retries,
                       resolve_task_timeout, run_tasks, worker_cache,
                       worker_cache_events)
from .faults import (FaultInjected, FaultInjector, FaultRule, active_injector,
                     parse_faults, reset_injector)
from .checkpoint import (RunManifest, ShardRunStats, checkpoint_enabled,
                         run_checkpointed, run_id)
from .sharding import (ShardBatch, measure_overhead_sharded,
                       shard_overhead_matrix)
from .diff_sharding import (DiffShardStats, measure_bintuner_sharded,
                            measure_escape_sharded, measure_precision_sharded,
                            resolve_diff_shards, shard_diff_matrix)

__all__ = [
    "OverheadReport", "OverheadRow", "figure6", "figure7", "measure_overhead",
    "PrecisionReport", "PrecisionRow", "figure8", "measure_precision",
    "ESCAPE_LABELS", "ESCAPE_RANKS", "EscapeReport", "EscapeRow", "figure10",
    "measure_escape", "BinTunerReport", "SimilarityRow", "figure9",
    "measure_bintuner", "DistanceReport", "figure11", "measure_opcode_distance",
    "InternalsReport", "InternalsRow", "measure_internals", "table2",
    "format_table", "matrix_table", "overhead_table", "EXPERIMENTS",
    "Experiment", "experiment_names", "run_experiment",
    "ExecutorTaskError", "executor_mode", "reset_worker_cache",
    "resolve_jobs", "resolve_task_retries", "resolve_task_timeout",
    "run_tasks", "worker_cache", "worker_cache_events",
    "FaultInjected", "FaultInjector", "FaultRule", "active_injector",
    "parse_faults", "reset_injector",
    "RunManifest", "ShardRunStats", "checkpoint_enabled", "run_checkpointed",
    "run_id",
    "ShardBatch", "measure_overhead_sharded", "shard_overhead_matrix",
    "DiffShardStats", "measure_bintuner_sharded", "measure_escape_sharded",
    "measure_precision_sharded", "resolve_diff_shards", "shard_diff_matrix",
]
