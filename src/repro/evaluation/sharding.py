"""Sharded/batched VM measurement for the overhead experiments (Figures 6/7).

The overhead figures execute every (program × obfuscation) variant in the VM
to collect dynamic cycle counts — the end-to-end bottleneck of the
evaluation, and until now a strictly serial loop.  Every cell is a pure
function of seeded inputs, so the matrix shards cleanly:

* :func:`shard_overhead_matrix` partitions the matrix deterministically —
  one shard per workload, in workload order, each shard carrying the full
  label row.  Keeping a workload's baseline and variants on one shard means
  no build is ever duplicated across workers and the baseline VM run is
  shared by every row of the shard;
* :class:`ShardBatch` is the per-shard measurement batch: it builds through
  the worker's :func:`~repro.evaluation.executor.worker_cache` (which, with
  ``REPRO_STORE_DIR`` set, attaches to the shared on-disk
  :class:`~repro.store.artifact_store.ArtifactStore` — a warm tree rebuilds
  nothing) and memoises one :func:`~repro.vm.machine.run_program` execution
  per distinct variant, so the compiled-dispatch VM state is reused instead
  of re-created when the same variant backs several rows (the baseline backs
  all of them);
* :func:`measure_overhead_sharded` fans the shards across the
  :mod:`~repro.evaluation.executor` pool and flattens the results in shard
  order — row-for-row identical to the serial loop, which stays the default
  (``jobs=1``) and the differential reference
  (``tests/test_sharding.py``).
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from ..core.variant_cache import variant_key
from ..obs import tracing as obs_tracing
from ..opt.pass_manager import OptOptions
from ..vm.batch import VMBatch
from ..vm.machine import ExecutionResult
from ..workloads.suites import WorkloadProgram
from .checkpoint import ShardRunStats, run_checkpointed
from .executor import worker_cache
from .overhead import OverheadReport, OverheadRow, build_variant

#: One unit of parallel work: a workload with its full label row.
OverheadShard = Tuple[WorkloadProgram, Tuple[str, ...], Optional[OptOptions]]


def shard_overhead_matrix(workloads: Sequence[WorkloadProgram],
                          labels: Sequence[str],
                          options: Optional[OptOptions] = None
                          ) -> List[OverheadShard]:
    """Deterministic partitioning of the (program × label) matrix.

    One shard per workload, in the caller's workload order; every shard
    carries the whole label tuple.  The partition depends only on the
    arguments, so any two schedulers (serial, ``jobs=2``, ``jobs=64``)
    produce the same shards and hence the same report rows.
    """
    return [(workload, tuple(labels), options) for workload in workloads]


class ShardBatch:
    """One shard's batched VM measurements against one cache.

    Builds go through ``cache`` (the worker's store-backed cache in the
    pool, any :class:`~repro.core.variant_cache.VariantCache` serially) and
    every execution routes through :meth:`VMBatch.run_many`: one interpreter
    per distinct variant drives the shard's whole ``input_sets`` batch, and
    results are memoised by the lowered binary's content digest — the
    baseline is executed once and its cycle count shared by every row, and
    artifacts revived from a warm store tree as distinct objects still
    dedupe, exactly like the serial loop.  The default ``input_sets``
    (one empty input vector) keeps rows bit-identical to the serial
    :func:`~repro.evaluation.overhead.measure_overhead` reference.
    """

    def __init__(self, workload: WorkloadProgram,
                 options: Optional[OptOptions], cache,
                 input_sets: Sequence[Sequence[int]] = ((),),
                 dispatch: Optional[str] = None):
        self.workload = workload
        self.options = options
        self.cache = cache
        self.input_sets = tuple(tuple(inputs) for inputs in input_sets)
        self.vm = VMBatch(dispatch=dispatch)

    def execute_many(self, label: str) -> List[ExecutionResult]:
        """Build (or fetch) the ``label`` variant and run the input batch."""
        artifact = build_variant(self.workload, label, self.options,
                                 self.cache)
        with obs_tracing.span("vm.measure", cat="measure",
                              workload=self.workload.name, label=label,
                              inputs=len(self.input_sets)):
            return self.vm.run_many(artifact.program, self.input_sets,
                                    binary=getattr(artifact, "binary", None))

    def execute(self, label: str) -> ExecutionResult:
        """The variant's first-input execution (the figure-driver row)."""
        return self.execute_many(label)[0]

    def rows(self, labels: Sequence[str]) -> List[OverheadRow]:
        baseline_cycles = self.execute("baseline").cycles
        return [OverheadRow(program=self.workload.name,
                            suite=self.workload.suite, label=label,
                            baseline_cycles=baseline_cycles,
                            cycles=self.execute(label).cycles)
                for label in labels]


def _overhead_shard(shard: OverheadShard) -> List[OverheadRow]:
    """Executor entry point: one workload's rows via the worker's cache."""
    workload, labels, options = shard
    with obs_tracing.span("shard.fig67", cat="measure",
                          workload=workload.name, labels=len(labels)):
        batch = ShardBatch(workload, options, worker_cache())
        return batch.rows(labels)


def measure_overhead_sharded(workloads: Sequence[WorkloadProgram],
                             labels: Sequence[str],
                             options: Optional[OptOptions] = None,
                             jobs: Optional[int] = None,
                             run_stats: Optional[ShardRunStats] = None
                             ) -> OverheadReport:
    """The figure-6/7 matrix through the sharded scheduler.

    Fans one shard per workload across the process pool (``chunksize=1`` —
    shards are already workload-granular, so finer chunking cannot split a
    workload's builds across workers) and concatenates the per-shard rows in
    shard order.  Bit-identical to
    :func:`~repro.evaluation.overhead.measure_overhead` run serially.

    With a shared store attached, every finished shard's row list is
    journaled under its value-based key (kind ``"shard"``): an interrupted
    run restarted over the same tree re-executes only unfinished workloads
    (``run_stats`` reports the resume accounting).
    """
    shards = shard_overhead_matrix(workloads, labels, options)
    keys = [("fig67shard", variant_key(workload, "baseline", options),
             tuple(labels)) for workload in workloads]
    report = OverheadReport()
    for rows in run_checkpointed(_overhead_shard, shards, keys,
                                 ("fig67", tuple(keys)), jobs=jobs,
                                 chunksize=1, stats=run_stats):
        report.rows.extend(rows)
    return report
