"""Runtime-overhead experiments: Figure 6 and Figure 7.

Figure 6 reports the per-program runtime overhead of the five Khaos variants
on SPEC CPU 2006 and 2017; Figure 7 compares their geometric means against
the O-LLVM baselines (Sub, Bog, Fla, Fla-10).  Here "runtime" is the dynamic
cycle count of the interpreter (see DESIGN.md for the substitution), so the
columns are directly comparable between baseline and obfuscated builds.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from ..opt.pass_manager import OptOptions
from ..toolchain import (ALL_LABELS, KHAOS_LABELS, build_baseline,
                         build_obfuscated, obfuscator_for, overhead_percent)
from ..utils import geometric_mean
from ..workloads.suites import WorkloadProgram, spec2006_programs, spec2017_programs


@dataclass
class OverheadRow:
    program: str
    suite: str
    label: str
    baseline_cycles: int
    cycles: int

    @property
    def overhead_percent(self) -> float:
        base = self.baseline_cycles or 1
        return (self.cycles - base) / base * 100.0


@dataclass
class OverheadReport:
    rows: List[OverheadRow] = field(default_factory=list)

    def labels(self) -> List[str]:
        seen: List[str] = []
        for row in self.rows:
            if row.label not in seen:
                seen.append(row.label)
        return seen

    def programs(self) -> List[str]:
        seen: List[str] = []
        for row in self.rows:
            if row.program not in seen:
                seen.append(row.program)
        return seen

    def overhead(self, program: str, label: str) -> Optional[float]:
        for row in self.rows:
            if row.program == program and row.label == label:
                return row.overhead_percent
        return None

    def geomean(self, label: str, suite: Optional[str] = None) -> float:
        values = [row.overhead_percent / 100.0 for row in self.rows
                  if row.label == label and (suite is None or row.suite == suite)]
        return geometric_mean(values) * 100.0


def measure_overhead(workloads: Sequence[WorkloadProgram],
                     labels: Sequence[str] = KHAOS_LABELS,
                     options: Optional[OptOptions] = None) -> OverheadReport:
    """Run every workload under the baseline and each obfuscation label."""
    report = OverheadReport()
    for workload in workloads:
        baseline = build_baseline(workload.build(), options, run=True)
        for label in labels:
            variant = build_obfuscated(workload.build(), obfuscator_for(label),
                                       options, run=True)
            report.rows.append(OverheadRow(
                program=workload.name, suite=workload.suite, label=label,
                baseline_cycles=baseline.execution.cycles,
                cycles=variant.execution.cycles))
    return report


def figure6(limit: Optional[int] = None,
            options: Optional[OptOptions] = None) -> OverheadReport:
    """Figure 6: Khaos overhead on the SPEC CPU 2006/2017 programs."""
    workloads = spec2006_programs() + spec2017_programs()
    if limit is not None:
        workloads = workloads[:limit]
    return measure_overhead(workloads, KHAOS_LABELS, options)


def figure7(limit: Optional[int] = None,
            options: Optional[OptOptions] = None) -> OverheadReport:
    """Figure 7: O-LLVM (Sub/Bog/Fla/Fla-10) vs Khaos overhead."""
    workloads = spec2006_programs() + spec2017_programs()
    if limit is not None:
        workloads = workloads[:limit]
    labels = ("sub", "bog", "fla", "fla-10") + tuple(KHAOS_LABELS)
    return measure_overhead(workloads, labels, options)
