"""Runtime-overhead experiments: Figure 6 and Figure 7.

Figure 6 reports the per-program runtime overhead of the five Khaos variants
on SPEC CPU 2006 and 2017; Figure 7 compares their geometric means against
the O-LLVM baselines (Sub, Bog, Fla, Fla-10).  Here "runtime" is the dynamic
cycle count of the interpreter (see DESIGN.md for the substitution), so the
columns are directly comparable between baseline and obfuscated builds.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from ..core.variant_cache import VariantCache, variant_key
from ..obs import metrics as obs_metrics
from ..obs import tracing as obs_tracing
from ..opt.pass_manager import OptOptions
from ..toolchain import (KHAOS_LABELS, build_baseline, build_obfuscated,
                         obfuscator_for, overhead_percent)
from ..utils import geometric_mean
from ..vm.machine import run_program
from ..workloads.suites import WorkloadProgram, spec2006_programs, spec2017_programs


@dataclass
class OverheadRow:
    program: str
    suite: str
    label: str
    baseline_cycles: int
    cycles: int

    @property
    def overhead_percent(self) -> float:
        base = self.baseline_cycles or 1
        return (self.cycles - base) / base * 100.0


@dataclass
class OverheadReport:
    rows: List[OverheadRow] = field(default_factory=list)

    def labels(self) -> List[str]:
        seen: List[str] = []
        for row in self.rows:
            if row.label not in seen:
                seen.append(row.label)
        return seen

    def programs(self) -> List[str]:
        seen: List[str] = []
        for row in self.rows:
            if row.program not in seen:
                seen.append(row.program)
        return seen

    def overhead(self, program: str, label: str) -> Optional[float]:
        for row in self.rows:
            if row.program == program and row.label == label:
                return row.overhead_percent
        return None

    def geomean(self, label: str, suite: Optional[str] = None) -> float:
        values = [row.overhead_percent / 100.0 for row in self.rows
                  if row.label == label and (suite is None or row.suite == suite)]
        return geometric_mean(values) * 100.0


def build_variant(workload: WorkloadProgram, label: str,
                  options: Optional[OptOptions] = None,
                  cache: Optional[VariantCache] = None):
    """Build one variant of ``workload``, through ``cache`` when given.

    ``label`` is either ``"baseline"`` or an obfuscation label understood by
    :func:`~repro.toolchain.obfuscator_for`.  Builds are deterministic, so a
    cached artifact is bit-identical to a fresh build; cached artifacts are
    shared and must not be mutated (execute / diff / read only).
    """
    if label == "baseline":
        key_source = "baseline"
        builder = lambda: build_baseline(workload.build(), options)  # noqa: E731
    else:
        key_source = obfuscator_for(label)
        builder = lambda: build_obfuscated(  # noqa: E731
            workload.build(), key_source, options)

    def traced_builder():
        # the span covers only *fresh* builds — cache/store hits are already
        # visible as store.read spans and store.*_hits counters
        with obs_tracing.span("build.variant", cat="build",
                              workload=workload.name, label=label):
            artifact = builder()
        obs_metrics.counter("build.variants")
        return artifact

    if cache is None:
        return traced_builder()
    return cache.get_or_build(variant_key(workload, key_source, options),
                              traced_builder)


def measure_overhead(workloads: Sequence[WorkloadProgram],
                     labels: Sequence[str] = KHAOS_LABELS,
                     options: Optional[OptOptions] = None,
                     cache: Optional[VariantCache] = None,
                     jobs: Optional[int] = None) -> OverheadReport:
    """Run every workload under the baseline and each obfuscation label.

    Passing a :class:`~repro.core.variant_cache.VariantCache` skips the build
    phase (obfuscate → optimize → lower) for variants already built by an
    earlier experiment; the VM measurement still executes every variant.

    ``jobs > 1`` (or ``REPRO_JOBS``) shards the matrix one-workload-per-task
    across worker processes (see :mod:`repro.evaluation.sharding`); workers
    build through their own store-backed caches, so a passed ``cache``
    applies to serial runs only — and an *explicit* ``cache`` is never
    overridden by the ambient ``REPRO_JOBS`` (only an explicit ``jobs``
    argument engages the executor then).  Row order and row contents are
    identical either way; the serial loop remains the default and the
    differential reference.
    """
    from .executor import parallel_matrix
    if parallel_matrix(jobs, cache):
        from .sharding import measure_overhead_sharded
        return measure_overhead_sharded(workloads, labels, options, jobs=jobs)
    report = OverheadReport()
    for workload in workloads:
        baseline = build_variant(workload, "baseline", options, cache)
        baseline_cycles = run_program(baseline.program).cycles
        for label in labels:
            variant = build_variant(workload, label, options, cache)
            report.rows.append(OverheadRow(
                program=workload.name, suite=workload.suite, label=label,
                baseline_cycles=baseline_cycles,
                cycles=run_program(variant.program).cycles))
    return report


def figure6(limit: Optional[int] = None,
            options: Optional[OptOptions] = None,
            cache: Optional[VariantCache] = None,
            jobs: Optional[int] = None) -> OverheadReport:
    """Figure 6: Khaos overhead on the SPEC CPU 2006/2017 programs."""
    workloads = spec2006_programs() + spec2017_programs()
    if limit is not None:
        workloads = workloads[:limit]
    return measure_overhead(workloads, KHAOS_LABELS, options, cache,
                            jobs=jobs)


def figure7(limit: Optional[int] = None,
            options: Optional[OptOptions] = None,
            cache: Optional[VariantCache] = None,
            jobs: Optional[int] = None) -> OverheadReport:
    """Figure 7: O-LLVM (Sub/Bog/Fla/Fla-10) vs Khaos overhead."""
    workloads = spec2006_programs() + spec2017_programs()
    if limit is not None:
        workloads = workloads[:limit]
    labels = ("sub", "bog", "fla", "fla-10") + tuple(KHAOS_LABELS)
    return measure_overhead(workloads, labels, options, cache, jobs=jobs)
