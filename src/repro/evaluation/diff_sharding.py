"""Function-granularity sharding of the diffing matrices (Figures 8/9/10).

The diffing-side experiments score (program × obfuscation × tool) cells whose
expensive phase — pairwise function diffing over per-binary
:class:`~repro.diffing.index.FeatureIndex` objects — previously could not be
split below a whole cell.  Every tool now exposes a partial-result contract
(:class:`~repro.diffing.base.PartialDiff`): one source function's candidate
ranking is a pure function of (tool config, baseline variant, obfuscated
variant, source function), so the matrix shards *below* the cell:

* :func:`shard_diff_matrix` partitions each cell deterministically into
  ``shards_per_cell`` modular slices over the pair's source functions (shard
  ``k`` scores units ``k, k+N, k+2N, ...`` in roster order) — tools whose
  scoring is not pairwise-decomposable (DeepBinDiff,
  ``shard_granularity == "binary"``) fall back to one whole-pair shard;
* :func:`_diff_shard` is the executor task: it attaches to the shared
  :class:`~repro.store.artifact_store.ArtifactStore` through
  :func:`~repro.evaluation.executor.worker_cache`, adopts persisted
  ``FeatureIndex`` payloads (building and persisting them on miss), scores
  its pair set through :meth:`~repro.diffing.base.BinaryDiffer.partial_diff`
  and persists every unit's outcome under its stable per-function shard key
  (kind ``"diff"``, :mod:`repro.store.diff_payloads`).  A fully warm shard
  never unpickles a binary, extracts a feature or scores a pair — it is pure
  store reads, which is what lets the diff matrix distribute across machines
  that share one store tree;
* the merge layer (:func:`_merged_cells` +
  :meth:`~repro.diffing.base.BinaryDiffer.merge_partials`) deterministically
  reassembles each cell's :class:`~repro.diffing.base.DiffResult` and report
  rows **bit-identical** to the serial reference drivers
  (:func:`~repro.evaluation.precision.measure_precision`,
  :func:`~repro.evaluation.escape.measure_escape`,
  :func:`~repro.evaluation.bintuner_compare.measure_bintuner`), which remain
  the differential references (``tests/test_diff_sharding.py``).

Figure 9's unit stays the binary pair (its row value is the whole-binary
similarity score and its dominant cost is the BinTuner option search, not a
single diff): :func:`measure_bintuner_sharded` splits each workload into one
shard per protection scheme, each diffing its protected binary against the
four store-keyed opt-level references.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Sequence, Tuple

from ..baselines.bintuner import BinTuner
from ..core.variant_cache import variant_key
from ..diffing import all_differs, rank_of_correct
from ..diffing.base import BinaryDiffer, DiffResult, PartialDiff
from ..diffing.bindiff import BinDiff
from ..obs import tracing as obs_tracing
from ..opt.pass_manager import OptOptions
from ..opt.pipelines import optimize_program
from ..store.artifact_store import store_dir_from_env
from ..store.artifact_store import KIND_DIFF
from ..store.diff_payloads import (diff_pair_key, load_roster, load_unit,
                                   load_whole, persist_roster, persist_unit,
                                   persist_whole, unit_key)
from ..store.feature_payloads import persist_features, warm_features
from ..toolchain import ALL_LABELS, obfuscator_for
from ..utils import geometric_mean
from ..vm.machine import run_program
from ..workloads.suites import WorkloadProgram
from .bintuner_compare import OPT_LEVELS, BinTunerReport, SimilarityRow
from .checkpoint import ShardRunStats, run_checkpointed
from .escape import ESCAPE_LABELS, EscapeReport, EscapeRow, escape_differs
from .executor import resolve_positive_int, rooted_store, worker_cache
from .overhead import build_variant
from .precision import PrecisionReport, PrecisionRow

#: Default modular slices per function-granularity cell.  Override with
#: ``REPRO_DIFF_SHARDS`` or the ``shards_per_cell`` argument.
DEFAULT_SHARDS_PER_CELL = 2


def resolve_diff_shards(shards_per_cell: Optional[int] = None) -> int:
    """Shard count per cell: explicit, else ``REPRO_DIFF_SHARDS``, else 2.

    Like :func:`~repro.evaluation.executor.resolve_jobs`, anything that is
    not a positive integer raises :class:`ValueError` at entry.
    """
    return resolve_positive_int(shards_per_cell, "REPRO_DIFF_SHARDS",
                                DEFAULT_SHARDS_PER_CELL, "shards_per_cell")


#: One unit of parallel diff work: modular slice ``index`` of ``count`` over
#: the source functions of one (workload, label, tool) cell.
DiffShard = Tuple[WorkloadProgram, str, BinaryDiffer, Optional[OptOptions],
                  int, int]


def shard_diff_matrix(workloads: Sequence[WorkloadProgram],
                      labels: Sequence[str],
                      differs: Sequence[BinaryDiffer],
                      options: Optional[OptOptions] = None,
                      shards_per_cell: Optional[int] = None
                      ) -> List[DiffShard]:
    """Deterministic partition of the diff matrix below cell granularity.

    Cells are emitted in the serial drivers' loop order (workload-major,
    then label, then tool); each function-granularity cell yields
    ``shards_per_cell`` modular slices, each binary-granularity cell one
    whole-pair shard.  The partition depends only on the arguments, so any
    two schedulers produce the same shards and hence the same merged rows.
    """
    count = resolve_diff_shards(shards_per_cell)
    shards: List[DiffShard] = []
    for workload in workloads:
        for label in labels:
            for differ in differs:
                per_cell = count if differ.shard_granularity == "function" else 1
                for index in range(per_cell):
                    shards.append((workload, label, differ, options,
                                   index, per_cell))
    return shards


@dataclass
class DiffShardResult:
    """One shard's mergeable outcome, picklable across process boundaries."""

    shard_index: int
    shard_count: int
    partial: PartialDiff
    #: 1-based provenance rank of the correct match per scored unit.
    ranks: Dict[str, Optional[int]]
    units_scored: int = 0
    units_from_store: int = 0
    features_adopted: int = 0
    features_persisted: int = 0
    diff_payloads_persisted: int = 0


@dataclass
class DiffShardStats:
    """Aggregated shard counters — the zero-rebuild assertions read these."""

    shards: int = 0
    units_total: int = 0
    units_scored: int = 0
    units_from_store: int = 0
    features_adopted: int = 0
    features_persisted: int = 0
    diff_payloads_persisted: int = 0

    def add(self, result: DiffShardResult) -> None:
        self.shards += 1
        self.units_total += len(result.partial.sources)
        self.units_scored += result.units_scored
        self.units_from_store += result.units_from_store
        self.features_adopted += result.features_adopted
        self.features_persisted += result.features_persisted
        self.diff_payloads_persisted += result.diff_payloads_persisted

    def as_dict(self) -> Dict[str, int]:
        return {
            "shards": self.shards,
            "units_total": self.units_total,
            "units_scored": self.units_scored,
            "units_from_store": self.units_from_store,
            "features_adopted": self.features_adopted,
            "features_persisted": self.features_persisted,
            "diff_payloads_persisted": self.diff_payloads_persisted,
        }


def _diff_shard(shard: DiffShard) -> DiffShardResult:
    """Executor entry point: score (or adopt) one shard's pair set."""
    workload, label, differ, _options, index, count = shard
    with obs_tracing.span("shard.diff", cat="diff", workload=workload.name,
                          label=label, tool=differ.info.name, slice=index,
                          count=count):
        return _diff_shard_impl(shard)


def _diff_shard_impl(shard: DiffShard) -> DiffShardResult:
    workload, label, differ, options, index, count = shard
    cache = worker_cache()
    store = rooted_store(cache)
    granular = differ.shard_granularity == "function"
    baseline_key = variant_key(workload, "baseline", options)
    label_key = variant_key(workload, obfuscator_for(label), options)
    pair_key = diff_pair_key(differ, baseline_key, label_key) \
        if store is not None else None

    result = DiffShardResult(shard_index=index, shard_count=count,
                             partial=None, ranks={})  # type: ignore[arg-type]
    roster = load_roster(store, pair_key) if store is not None else None
    baseline = variant = None

    def built_pair():
        nonlocal baseline, variant
        if baseline is None:
            baseline = build_variant(workload, "baseline", options, cache)
            variant = build_variant(workload, label, options, cache)
        return baseline, variant

    if roster is None:
        base, var = built_pair()
        roster = {
            "units": tuple(differ.shard_units(base.binary)),
            "original": base.binary.name, "obfuscated": var.binary.name,
            "original_functions": len(base.binary.functions),
            "obfuscated_functions": len(var.binary.functions),
        }
        if store is not None:
            persist_roster(store, pair_key, roster["units"],
                           roster["original"], roster["obfuscated"],
                           roster["original_functions"],
                           roster["obfuscated_functions"])
    units: Tuple[str, ...] = tuple(roster["units"])

    if not granular:
        payload = load_whole(store, pair_key) if store is not None else None
        if payload is not None and set(payload["matches"]) == set(units):
            result.partial = PartialDiff(
                tool=differ.name, original=roster["original"],
                obfuscated=roster["obfuscated"], units=units, sources=units,
                matches=payload["matches"],
                original_functions=roster["original_functions"],
                obfuscated_functions=roster["obfuscated_functions"],
                similarity_score=payload["similarity_score"])
            result.ranks = dict(payload["ranks"])
            result.units_from_store = len(units)
            return result
        base, var = built_pair()
        result.features_adopted = _warm_pair_features(
            store, baseline_key, label_key, base, var)
        partial = differ.partial_diff(base.binary, var.binary)
        result.partial = partial
        result.ranks = {unit: rank_of_correct(partial.matches.get(unit, []),
                                              unit, var.provenance)
                        for unit in units}
        result.units_scored = len(units)
        if store is not None:
            result.features_persisted = _persist_pair_features(
                store, baseline_key, label_key, base, var)
            persist_whole(store, pair_key, partial.matches,
                          partial.similarity_score, result.ranks)
            result.diff_payloads_persisted = 1
        return result

    mine = units[index::count]
    if store is not None:
        # a warm remote shard would otherwise pay one round trip per unit;
        # coalesce them into batch fetches (no-op on local/storeless paths)
        store.prefetch(KIND_DIFF, [unit_key(pair_key, unit)
                                   for unit in mine])
    stored: Dict[str, Dict] = {}
    missing: List[str] = []
    for unit in mine:
        payload = load_unit(store, pair_key, unit) if store is not None else None
        if payload is None:
            missing.append(unit)
        else:
            stored[unit] = payload
    fresh: Optional[PartialDiff] = None
    if missing:
        base, var = built_pair()
        result.features_adopted = _warm_pair_features(
            store, baseline_key, label_key, base, var)
        fresh = differ.partial_diff(base.binary, var.binary, tuple(missing))
        if store is not None:
            result.features_persisted = _persist_pair_features(
                store, baseline_key, label_key, base, var)
    matches: Dict[str, list] = {}
    channels: Dict[str, Dict[str, list]] = {}
    for unit in mine:
        if unit in stored:
            payload = stored[unit]
            matches[unit] = payload["ranked"]
            unit_channels = payload["channels"]
            rank = payload["rank"]
        else:
            matches[unit] = fresh.matches[unit]
            unit_channels = {name: ranked[unit]
                            for name, ranked in fresh.channels.items()}
            rank = rank_of_correct(matches[unit], unit,
                                   built_pair()[1].provenance)
            if store is not None:
                persist_unit(store, pair_key, unit, matches[unit],
                             unit_channels, rank)
                result.diff_payloads_persisted += 1
        for name, ranked in unit_channels.items():
            channels.setdefault(name, {})[unit] = ranked
        result.ranks[unit] = rank
    result.units_scored = len(missing)
    result.units_from_store = len(stored)
    result.partial = PartialDiff(
        tool=differ.name, original=roster["original"],
        obfuscated=roster["obfuscated"], units=units, sources=mine,
        matches=matches, channels=channels,
        original_functions=roster["original_functions"],
        obfuscated_functions=roster["obfuscated_functions"])
    return result


def _warm_pair_features(store, baseline_key, label_key, baseline, variant) -> int:
    """Adopt both binaries' persisted ``FeatureIndex`` payloads; count them."""
    if store is None:
        return 0
    return (warm_features(store, baseline_key, baseline.binary)
            + warm_features(store, label_key, variant.binary))


def _persist_pair_features(store, baseline_key, label_key, baseline,
                           variant) -> int:
    """Persist both binaries' feature payloads; count the writes."""
    written = 0
    if persist_features(store, baseline_key, baseline.binary) is not None:
        written += 1
    if persist_features(store, label_key, variant.binary) is not None:
        written += 1
    return written


#: One merged cell: (workload, label, differ, unit roster, DiffResult, ranks).
MergedCell = Tuple[WorkloadProgram, str, BinaryDiffer, Tuple[str, ...],
                   DiffResult, Dict[str, Optional[int]]]


def diff_shard_key(shard: DiffShard) -> Tuple:
    """The value-based checkpoint identity of one diff shard.

    Built from the same ingredients as the per-unit diff payload keys (tool
    config × variant keys × modular slice), so it is stable across
    processes, machines and schedulers — which is what lets an interrupted
    run resume and two overlapping matrices (fig8 and fig10 share cells)
    reuse each other's journaled shards.
    """
    workload, label, differ, options, index, count = shard
    return ("diffshard", differ.cache_key(),
            variant_key(workload, "baseline", options),
            variant_key(workload, obfuscator_for(label), options),
            index, count)


def _normalize_resumed(result: DiffShardResult) -> DiffShardResult:
    """Rewrite a revived shard's counters as the pure store read it was.

    A resumed shard scored nothing, adopted no features and persisted
    nothing in *this* run — exactly like a fully warm shard — so the
    zero-rebuild stats assertions hold across a resume.
    """
    return replace(result, units_scored=0,
                   units_from_store=len(result.partial.sources),
                   features_adopted=0, features_persisted=0,
                   diff_payloads_persisted=0)


def _merged_cells(workloads: Sequence[WorkloadProgram],
                  labels: Sequence[str],
                  differs: Sequence[BinaryDiffer],
                  options: Optional[OptOptions],
                  jobs: Optional[int],
                  shards_per_cell: Optional[int],
                  stats: Optional[DiffShardStats],
                  run_stats: Optional[ShardRunStats] = None
                  ) -> List[MergedCell]:
    """Run the sharded matrix and merge each cell deterministically.

    Shards fan out with ``chunksize=1`` — unlike the cell-granular executor
    path there is no one-workload-per-worker chunking, because the whole
    point is splitting below a cell; variant reuse across shards comes from
    the shared store (or each worker's in-memory cache without one).  With
    a store the run checkpoints: each shard's result is journaled on
    completion and revived on a restart instead of re-scored.
    """
    shards = shard_diff_matrix(workloads, labels, differs, options,
                               shards_per_cell)
    keys = [diff_shard_key(shard) for shard in shards]
    results = run_checkpointed(_diff_shard, shards, keys,
                               ("fig8-10", tuple(keys)), jobs=jobs,
                               chunksize=1, normalize=_normalize_resumed,
                               stats=run_stats)
    return merge_shard_results(workloads, labels, differs, shards, results,
                               stats)


def merge_shard_results(workloads: Sequence[WorkloadProgram],
                        labels: Sequence[str],
                        differs: Sequence[BinaryDiffer],
                        shards: Sequence[DiffShard],
                        results: Sequence[DiffShardResult],
                        stats: Optional[DiffShardStats] = None
                        ) -> List[MergedCell]:
    """Deterministically reassemble cells from shard results in matrix order.

    ``results[i]`` must be the outcome of ``shards[i]`` — any scheduler
    (serial, executor pool, multi-worker coordinator) that preserves that
    pairing merges to identical cells, which is the bit-identity contract.
    """
    cells: List[MergedCell] = []
    position = 0
    for workload in workloads:
        for label in labels:
            for differ in differs:
                count = shards[position][5]
                cell_results = results[position:position + count]
                position += count
                merged = differ.merge_partials(
                    [r.partial for r in cell_results])
                ranks: Dict[str, Optional[int]] = {}
                for cell_result in cell_results:
                    ranks.update(cell_result.ranks)
                    if stats is not None:
                        stats.add(cell_result)
                cells.append((workload, label, differ,
                              cell_results[0].partial.units, merged, ranks))
    return cells


def precision_report_from_cells(cells: Sequence[MergedCell]
                                ) -> PrecisionReport:
    """Figure 8 rows from merged cells (shared by every scheduler)."""
    report = PrecisionReport()
    for workload, label, differ, units, merged, ranks in cells:
        correct = sum(1 for unit in units if ranks.get(unit) == 1)
        precision = correct / len(units) if units else 0.0
        report.rows.append(PrecisionRow(
            program=workload.name, suite=workload.suite, tool=differ.name,
            label=label, precision=precision,
            similarity_score=merged.similarity_score))
    return report


def escape_report_from_cells(cells: Sequence[MergedCell]) -> EscapeReport:
    """Figure 10 rows from merged cells (shared by every scheduler)."""
    report = EscapeReport()
    for workload, label, differ, units, _merged, ranks in cells:
        unit_set = set(units)
        for function_name in workload.vulnerable_functions:
            if function_name not in unit_set:
                continue
            report.rows.append(EscapeRow(
                program=workload.name, function=function_name,
                tool=differ.name, label=label,
                rank_of_correct=ranks[function_name]))
    return report


def measure_precision_sharded(workloads: Sequence[WorkloadProgram],
                              labels: Sequence[str] = ALL_LABELS,
                              differs: Optional[Sequence[BinaryDiffer]] = None,
                              options: Optional[OptOptions] = None,
                              jobs: Optional[int] = None,
                              shards_per_cell: Optional[int] = None,
                              stats: Optional[DiffShardStats] = None,
                              run_stats: Optional[ShardRunStats] = None
                              ) -> PrecisionReport:
    """Figure 8 through function-granularity shards.

    Row-for-row and bit-for-bit identical to the serial
    :func:`~repro.evaluation.precision.measure_precision`: Precision@1 is
    the fraction of units whose correct match ranks first (every unit's rank
    rides in its shard result) and the similarity score comes from the
    tool's deterministic merge.
    """
    differs = list(differs) if differs is not None else all_differs()
    return precision_report_from_cells(_merged_cells(
        workloads, labels, differs, options, jobs, shards_per_cell, stats,
        run_stats))


def measure_escape_sharded(workloads: Sequence[WorkloadProgram],
                           labels: Sequence[str] = ESCAPE_LABELS,
                           differs: Optional[Sequence[BinaryDiffer]] = None,
                           options: Optional[OptOptions] = None,
                           jobs: Optional[int] = None,
                           shards_per_cell: Optional[int] = None,
                           stats: Optional[DiffShardStats] = None,
                           run_stats: Optional[ShardRunStats] = None
                           ) -> EscapeReport:
    """Figure 10 through function-granularity shards (serial-identical)."""
    differs = list(differs) if differs is not None else escape_differs()
    vulnerable_workloads = [w for w in workloads if w.vulnerable_functions]
    return escape_report_from_cells(_merged_cells(
        vulnerable_workloads, labels, differs, options, jobs,
        shards_per_cell, stats, run_stats))


# -- figure 9: binary-pair shards ------------------------------------------------------

#: One figure-9 shard: a workload's binaries under one protection scheme,
#: diffed against every opt-level reference.
BinTunerShard = Tuple[WorkloadProgram, str, int]


def shard_bintuner_matrix(workloads: Sequence[WorkloadProgram],
                          tuner_iterations: int) -> List[BinTunerShard]:
    """One shard per (workload, protection): Figure 9's binary-pair units."""
    return [(workload, protection, tuner_iterations)
            for workload in workloads
            for protection in ("bintuner", "khaos")]


def _bintuner_shard(shard: BinTunerShard) -> Tuple[List[float], Optional[float]]:
    """Diff one protection scheme's binary against every opt-level reference.

    The opt-level references and the Khaos build are store-keyed variants
    (fetched, not rebuilt, from a warm shared tree); the BinTuner search is
    seeded, so the tuned binary is deterministic per (workload, iterations).
    Returns the four similarity scores in :data:`OPT_LEVELS` order plus, for
    the ``bintuner`` shard, the runtime-overhead factor.
    """
    workload, protection, tuner_iterations = shard
    with obs_tracing.span("shard.fig9", cat="diff", workload=workload.name,
                          protection=protection):
        return _bintuner_shard_impl(shard)


def _bintuner_shard_impl(shard: BinTunerShard
                         ) -> Tuple[List[float], Optional[float]]:
    workload, protection, tuner_iterations = shard
    cache = worker_cache()
    differ = BinDiff()
    references = {}
    for level in OPT_LEVELS:
        level_options = OptOptions(level=level, lto=level >= 2)
        references[level] = build_variant(workload, "baseline", level_options,
                                          cache).binary
    overhead: Optional[float] = None
    if protection == "bintuner":
        tuned = BinTuner(iterations=tuner_iterations).tune(workload.build())
        target = tuned.best_binary
        baseline_run = run_program(
            build_variant(workload, "baseline", None, cache).program)
        tuned_run = run_program(optimize_program(workload.build(),
                                                 tuned.best_options))
        base = baseline_run.cycles or 1
        overhead = (tuned_run.cycles - base) / base
    else:
        target = build_variant(workload, "fufi.all", None, cache).binary
    similarities = [differ.diff(references[level], target).similarity_score
                    for level in OPT_LEVELS]
    return similarities, overhead


def bintuner_shard_key(shard: BinTunerShard) -> Tuple:
    """The value-based checkpoint identity of one figure-9 shard."""
    workload, protection, iterations = shard
    return ("fig9shard", variant_key(workload, "baseline", None),
            protection, iterations)


def bintuner_report_from_results(workloads: Sequence[WorkloadProgram],
                                 results: Sequence[Tuple[List[float],
                                                         Optional[float]]]
                                 ) -> BinTunerReport:
    """Figure 9 rows from shard results in :func:`shard_bintuner_matrix`
    order: per opt level bintuner then khaos, overhead geomean in workload
    order — the serial drivers' row order, shared by every scheduler."""
    report = BinTunerReport()
    overheads: List[float] = []
    for position, workload in enumerate(workloads):
        bintuner_sims, overhead = results[2 * position]
        khaos_sims, _ = results[2 * position + 1]
        for level, bintuner_sim, khaos_sim in zip(OPT_LEVELS, bintuner_sims,
                                                  khaos_sims):
            report.rows.append(SimilarityRow(
                program=workload.name, protection="bintuner",
                opt_level=level, similarity=bintuner_sim))
            report.rows.append(SimilarityRow(
                program=workload.name, protection="khaos",
                opt_level=level, similarity=khaos_sim))
        overheads.append(overhead)
    report.bintuner_overhead_percent = geometric_mean(overheads) * 100.0
    return report


def measure_bintuner_sharded(workloads: Sequence[WorkloadProgram],
                             tuner_iterations: int = 6,
                             jobs: Optional[int] = None,
                             run_stats: Optional[ShardRunStats] = None
                             ) -> BinTunerReport:
    """Figure 9 through binary-pair shards, bit-identical to the serial loop.

    The merge interleaves each workload's two protection shards back into
    the serial row order (per opt level: bintuner, then khaos) and
    aggregates the overhead geomean in workload order.
    """
    shards = shard_bintuner_matrix(workloads, tuner_iterations)
    keys = [bintuner_shard_key(shard) for shard in shards]
    # with a shared store the opt-level references are fetched, not rebuilt,
    # so the two protection shards of one workload can land anywhere;
    # without one, chunk them onto the same worker so its in-memory cache
    # builds each workload's references once instead of once per shard
    chunksize = 1 if store_dir_from_env() else 2
    results = run_checkpointed(_bintuner_shard, shards, keys,
                               ("fig9", tuple(keys)), jobs=jobs,
                               chunksize=chunksize, stats=run_stats)
    return bintuner_report_from_results(workloads, results)
