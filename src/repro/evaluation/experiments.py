"""Registry of the paper's tables and figures and how to regenerate them.

Each entry maps an experiment identifier (``figure6`` … ``table3``) to a
callable that produces the corresponding report, plus a short description.
``run_experiment(name, quick=True)`` is what the benchmark harness and the
examples call; ``quick=False`` removes the subset limits and reproduces the
full-size experiment (slow in pure Python).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List

from ..diffing import tool_table
from ..workloads.suites import EMBEDDED_VULNERABILITIES
from .bintuner_compare import figure9
from .escape import figure10
from .internals import table2
from .opcode_distance import figure11
from .overhead import figure6, figure7
from .precision import figure8


@dataclass
class Experiment:
    name: str
    description: str
    quick: Callable[[], object]
    full: Callable[[], object]


def _table1() -> List[Dict[str, str]]:
    return tool_table()


def _table3() -> Dict[str, tuple]:
    return dict(EMBEDDED_VULNERABILITIES)


EXPERIMENTS: Dict[str, Experiment] = {
    "figure6": Experiment(
        "figure6",
        "Runtime overhead of Fission/Fusion/FuFi.* on SPEC CPU 2006 & 2017",
        quick=lambda: figure6(limit=4),
        full=lambda: figure6(limit=None)),
    "figure7": Experiment(
        "figure7",
        "Runtime overhead of O-LLVM (Sub/Bog/Fla/Fla-10) vs Khaos",
        quick=lambda: figure7(limit=3),
        full=lambda: figure7(limit=None)),
    "figure8": Experiment(
        "figure8",
        "Precision@1 of the five diffing tools under eight obfuscations",
        quick=lambda: figure8(limit_spec=2, limit_coreutils=2),
        full=lambda: figure8(limit_spec=None, limit_coreutils=None)),
    "figure9": Experiment(
        "figure9",
        "BinDiff similarity score: BinTuner vs Khaos across O0-O3",
        quick=lambda: figure9(limit=2),
        full=lambda: figure9(limit=None)),
    "figure10": Experiment(
        "figure10",
        "escape@1/10/50 of the T-III vulnerable functions",
        quick=lambda: figure10(limit=2),
        full=lambda: figure10(limit=None)),
    "figure11": Experiment(
        "figure11",
        "Normalised opcode histogram distance of obfuscated binaries",
        quick=lambda: figure11(limit=3),
        full=lambda: figure11(limit=None)),
    "table1": Experiment(
        "table1",
        "Characteristics of the chosen diffing tools",
        quick=_table1, full=_table1),
    "table2": Experiment(
        "table2",
        "Fission/fusion internal statistics (ratios, #BB, RR, #RP, #HBB)",
        quick=lambda: table2(limit=3),
        full=lambda: table2(limit=None)),
    "table3": Experiment(
        "table3",
        "Vulnerable functions and CVEs of the T-III programs",
        quick=_table3, full=_table3),
}


def experiment_names() -> List[str]:
    return sorted(EXPERIMENTS)


def run_experiment(name: str, quick: bool = True):
    if name not in EXPERIMENTS:
        raise KeyError(f"unknown experiment {name!r}; "
                       f"expected one of {experiment_names()}")
    experiment = EXPERIMENTS[name]
    return experiment.quick() if quick else experiment.full()
