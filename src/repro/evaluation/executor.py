"""Process-parallel execution of the evaluation experiment matrices.

The diffing experiments (Figures 8, 9 and 10) iterate a (program × label ×
tool) matrix in which every cell is a pure function of its inputs: workload
synthesis, the obfuscators and the optimizer are all seeded, so a cell
computes the same rows no matter where or when it runs.  That makes the
matrix embarrassingly parallel — this module fans the cells across worker
processes with :mod:`concurrent.futures` while keeping the results
bit-identical to a serial run:

* tasks are submitted and collected with ``ProcessPoolExecutor.map``, which
  preserves submission order, and the serial order is exactly the loop order
  of the corresponding ``measure_*`` driver;
* each worker process keeps one :class:`~repro.core.variant_cache.VariantCache`
  (:func:`worker_cache`), so the baseline and the obfuscated variants are
  built once per worker rather than once per cell, and optionally pre-loads
  it from ``REPRO_VARIANT_CACHE_DIR`` (see
  :meth:`~repro.core.variant_cache.VariantCache.load`);
* ``jobs`` defaults to the ``REPRO_JOBS`` environment variable and, absent
  that, to 1 — results stay deterministic and tier-1-safe with no worker
  processes at all.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from typing import Callable, Iterable, List, Optional, TypeVar

from ..core.variant_cache import VariantCache, cache_file_path

Task = TypeVar("Task")
Result = TypeVar("Result")


def resolve_jobs(jobs: Optional[int] = None) -> int:
    """Worker-process count: explicit ``jobs``, else ``REPRO_JOBS``, else 1.

    ``0`` (or any non-positive count) means "all cores".  ``1`` runs the
    tasks serially in-process — the default, so experiment results stay
    deterministic and reproducible without any executor involvement.
    """
    if jobs is None:
        raw = os.environ.get("REPRO_JOBS", "").strip()
        if not raw:
            return 1
        try:
            jobs = int(raw)
        except ValueError:
            return 1
    if jobs <= 0:
        return os.cpu_count() or 1
    return jobs


# -- per-worker variant cache ---------------------------------------------------------

_WORKER_CACHE: Optional[VariantCache] = None

#: Default LRU bound of each worker's cache.  Tasks are chunked one workload
#: per worker (see :func:`matrix_chunksize`), so the working set is one
#: workload's baseline + variants; an unbounded memo would instead pin every
#: artifact a long-lived worker ever builds.  Override with
#: ``REPRO_WORKER_CACHE_ENTRIES``.
DEFAULT_WORKER_CACHE_ENTRIES = 32


def _worker_cache_bound() -> Optional[int]:
    raw = os.environ.get("REPRO_WORKER_CACHE_ENTRIES", "").strip()
    if raw:
        try:
            bound = int(raw)
            return bound if bound > 0 else None  # <= 0 means unbounded
        except ValueError:
            pass
    return DEFAULT_WORKER_CACHE_ENTRIES


def worker_cache() -> VariantCache:
    """The process-local :class:`VariantCache` used by executor tasks.

    Created on first use in each worker; if ``REPRO_VARIANT_CACHE_DIR``
    names a directory with a saved cache, the worker starts from it (a
    corrupt or incompatible file is ignored, not fatal).
    """
    global _WORKER_CACHE
    if _WORKER_CACHE is None:
        _WORKER_CACHE = _initial_cache()
    return _WORKER_CACHE


def _initial_cache() -> VariantCache:
    bound = _worker_cache_bound()
    directory = os.environ.get("REPRO_VARIANT_CACHE_DIR")
    if directory:
        path = cache_file_path(directory)
        if os.path.exists(path):
            try:
                return VariantCache.load(path, max_entries=bound)
            except Exception:
                # best-effort preload: a corrupt, truncated or stale file
                # (UnpicklingError, AttributeError on renamed classes, ...)
                # must never kill a worker — builds are deterministic, so
                # starting empty only costs time
                pass
    return VariantCache(max_entries=bound)


def reset_worker_cache() -> None:
    """Drop the process-local cache (tests use this to isolate scenarios)."""
    global _WORKER_CACHE
    _WORKER_CACHE = None


# -- experiment-matrix helpers --------------------------------------------------------


def parallel_matrix(jobs: Optional[int], cache) -> bool:
    """Should a ``measure_*`` driver dispatch its matrix to the executor?

    True when the effective job count exceeds one — unless the caller passed
    an explicit ``cache`` and only the ambient ``REPRO_JOBS`` asked for
    parallelism: an explicit argument is never vetoed by the environment
    (workers cannot share the caller's in-process cache).
    """
    return resolve_jobs(jobs) > 1 and (cache is None or jobs is not None)


def matrix_chunksize(labels, differs) -> int:
    """Chunk one workload's whole (label × tool) block per worker.

    Task lists are workload-major, so this keeps each workload's baseline
    and variants on exactly one process — no duplicated builds.
    """
    return max(1, len(labels) * len(differs))


def ephemeral_cache(labels) -> VariantCache:
    """The serial drivers' per-call cache: one workload's working set.

    Keeps the pre-executor loops' build reuse (baseline built once per
    workload, each variant once per label) without pinning the whole
    matrix's artifacts in memory like an unbounded memo would.
    """
    return VariantCache(max_entries=len(labels) + 1)


# -- the map primitive ----------------------------------------------------------------


def run_tasks(task_fn: Callable[[Task], Result], tasks: Iterable[Task],
              jobs: Optional[int] = None, chunksize: int = 1) -> List[Result]:
    """Apply ``task_fn`` to every task, preserving task order in the results.

    With ``jobs <= 1`` this is a plain in-process loop (no pickling, caller's
    caches apply).  With more, tasks and results cross process boundaries, so
    both must be picklable and ``task_fn`` must be a module-level callable.
    """
    tasks = list(tasks)
    jobs = resolve_jobs(jobs)
    if jobs <= 1 or len(tasks) <= 1:
        return [task_fn(task) for task in tasks]
    workers = min(jobs, len(tasks))
    with ProcessPoolExecutor(max_workers=workers) as pool:
        return list(pool.map(task_fn, tasks, chunksize=chunksize))
