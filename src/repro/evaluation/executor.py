"""Process-parallel execution of the evaluation experiment matrices.

The experiment matrices (Figures 6–10) iterate (program × label [× tool])
grids in which every cell is a pure function of its inputs: workload
synthesis, the obfuscators and the optimizer are all seeded, so a cell
computes the same rows no matter where or when it runs.  That makes the
matrices embarrassingly parallel — this module fans the cells across worker
processes while keeping the results bit-identical to a serial run.

Since PR 8 the pool path is a **supervised executor** rather than a bare
``ProcessPoolExecutor.map``:

* every task is an individual future carrying a configurable timeout
  (``REPRO_TASK_TIMEOUT``, seconds; unset/0 disables) and a bounded retry
  budget with exponential backoff + jitter (``REPRO_TASK_RETRIES``,
  default 2; ``REPRO_TASK_BACKOFF`` scales the base delay);
* a hung worker — one whose task exceeds the timeout — is killed together
  with its pool, the pool is respawned, the hung task retried and the
  innocent in-flight tasks resubmitted without burning a retry;
* a crashed worker (``BrokenProcessPool``: segfault, OOM kill, injected
  ``worker_crash``) likewise respawns the pool; after
  :data:`MAX_POOL_FAILURES` consecutive pool deaths with no completed task
  in between the run degrades gracefully to serial in-process execution
  instead of thrashing;
* results are collected **by submission index**, so ``jobs>1`` stays
  bit-identical to the serial loop regardless of completion order;
* a task that fails every attempt aborts the run cleanly with
  :class:`ExecutorTaskError` carrying the task's identity.

``REPRO_EXECUTOR=legacy`` selects the PR 5 ``pool.map`` scheduler — kept as
the supervision layer's own differential reference (and the baseline of the
``fault_overhead`` bench section).  The worker-side task wrapper is where
seeded chaos (:mod:`repro.faults`, ``REPRO_FAULTS``) injects crashes, hangs
and task errors; the serial in-process path never injects, so it stays the
untouched differential reference.

Each worker process keeps one
:class:`~repro.core.variant_cache.VariantCache` (:func:`worker_cache`); with
``REPRO_STORE_DIR`` set, every worker *attaches* to the one shared on-disk
:class:`~repro.store.artifact_store.ArtifactStore` tree — artifacts built by
any process are read (not rebuilt) by all the others.  The deprecated
``REPRO_VARIANT_CACHE_DIR`` is still honoured: pointing at a store tree it
acts as an alias for ``REPRO_STORE_DIR``; pointing at a legacy
``variants.pkl`` it seeds each worker's in-memory layer.  ``jobs`` defaults
to ``REPRO_JOBS`` and, absent that, to 1 — deterministic and tier-1-safe
with no worker processes at all.
"""

from __future__ import annotations

import logging
import os
import random
import time
from collections import deque
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from typing import Callable, Dict, Iterable, List, Optional, Tuple, TypeVar

from ..core.variant_cache import VariantCache, cache_file_path
from ..faults import active_injector
from ..obs import metrics as obs_metrics
from ..obs import tracing as obs_tracing
from ..obs.collect import flush as flush_telemetry
from ..store.artifact_store import (ArtifactStore, StoreError,
                                    store_dir_from_env, store_from_env,
                                    store_url_from_env)

Task = TypeVar("Task")
Result = TypeVar("Result")

logger = logging.getLogger(__name__)

#: Consecutive pool deaths (no task completed in between) before the
#: supervisor stops respawning pools and finishes the run serially
#: in-process.  Pool deaths separated by progress reset the count.
#: Override with ``REPRO_MAX_POOL_FAILURES`` (chaos runs raise it to keep
#: the pool path exercised under high crash rates).
MAX_POOL_FAILURES = 3


def _max_pool_failures() -> int:
    raw = os.environ.get("REPRO_MAX_POOL_FAILURES", "").strip()
    if raw:
        try:
            value = int(raw)
            if value > 0:
                return value
        except ValueError:
            pass
    return MAX_POOL_FAILURES

#: Default retry budget per task (attempts = retries + 1).
DEFAULT_TASK_RETRIES = 2

#: Base of the exponential backoff between retry attempts, seconds.
DEFAULT_TASK_BACKOFF = 0.05


def resolve_positive_int(value: Optional[int], env_var: str, default: int,
                         param: str, hint: str = "") -> int:
    """Shared parser of the executor's positive-integer knobs.

    An explicit argument wins over the environment; anything that is not a
    positive integer — ``0``, a negative count, a float, ``"many"`` in the
    environment — raises :class:`ValueError` here, at entry, rather than
    surfacing later as an opaque pool failure.
    """
    if value is None:
        raw = os.environ.get(env_var, "").strip()
        if not raw:
            return default
        try:
            value = int(raw)
        except ValueError:
            raise ValueError(
                f"{env_var} must be a positive integer, got {raw!r}")
        if value <= 0:
            raise ValueError(
                f"{env_var} must be a positive integer, got {raw!r}")
        return value
    if isinstance(value, bool) or not isinstance(value, int) or value <= 0:
        raise ValueError(
            f"{param} must be a positive integer, got {value!r}{hint}")
    return value


def resolve_jobs(jobs: Optional[int] = None) -> int:
    """Worker-process count: explicit ``jobs``, else ``REPRO_JOBS``, else 1.

    ``1`` runs the tasks serially in-process — the default, so experiment
    results stay deterministic and reproducible without any executor
    involvement.  Invalid counts raise :class:`ValueError` at entry (see
    :func:`resolve_positive_int`).
    """
    return resolve_positive_int(
        jobs, "REPRO_JOBS", 1, "jobs",
        hint=" (use jobs=os.cpu_count() for one worker per core)")


def resolve_task_retries(retries: Optional[int] = None) -> int:
    """Retry budget per task: explicit, else ``REPRO_TASK_RETRIES``, else 2.

    ``0`` is valid (fail fast on the first error); negatives and
    non-integers raise :class:`ValueError` at entry.
    """
    if retries is None:
        raw = os.environ.get("REPRO_TASK_RETRIES", "").strip()
        if not raw:
            return DEFAULT_TASK_RETRIES
        try:
            retries = int(raw)
        except ValueError:
            raise ValueError(
                f"REPRO_TASK_RETRIES must be a non-negative integer, "
                f"got {raw!r}")
        if retries < 0:
            raise ValueError(
                f"REPRO_TASK_RETRIES must be a non-negative integer, "
                f"got {raw!r}")
        return retries
    if (isinstance(retries, bool) or not isinstance(retries, int)
            or retries < 0):
        raise ValueError(
            f"retries must be a non-negative integer, got {retries!r}")
    return retries


def resolve_task_timeout(timeout: Optional[float] = None) -> Optional[float]:
    """Per-task timeout in seconds: explicit, else ``REPRO_TASK_TIMEOUT``.

    ``None`` (and an env value of ``0``) disables timeout supervision — a
    hung worker then stalls the run, exactly like the pre-supervision
    executor.  Negative or unparsable values raise :class:`ValueError`.
    """
    if timeout is None:
        raw = os.environ.get("REPRO_TASK_TIMEOUT", "").strip()
        if not raw:
            return None
        try:
            timeout = float(raw)
        except ValueError:
            raise ValueError(
                f"REPRO_TASK_TIMEOUT must be a number of seconds, got {raw!r}")
        if timeout < 0:
            raise ValueError(
                f"REPRO_TASK_TIMEOUT must be non-negative, got {raw!r}")
        return timeout or None
    if isinstance(timeout, bool) or not isinstance(timeout, (int, float)) \
            or timeout <= 0:
        raise ValueError(
            f"timeout must be a positive number of seconds, got {timeout!r}")
    return float(timeout)


def _backoff_base() -> float:
    raw = os.environ.get("REPRO_TASK_BACKOFF", "").strip()
    if raw:
        try:
            value = float(raw)
            if value >= 0:
                return value
        except ValueError:
            pass
    return DEFAULT_TASK_BACKOFF


def executor_mode() -> str:
    """``supervised`` (default) or ``legacy`` (the PR 5 ``pool.map`` path)."""
    mode = os.environ.get("REPRO_EXECUTOR", "").strip() or "supervised"
    if mode not in ("supervised", "legacy"):
        raise ValueError(
            f"REPRO_EXECUTOR must be 'supervised' or 'legacy', got {mode!r}")
    return mode


class ExecutorTaskError(RuntimeError):
    """A task failed every attempt; carries the task's identity.

    ``index`` is the task's submission position, ``task`` a truncated
    ``repr`` of the task payload — enough to re-run the failing cell by
    hand — and ``attempts`` how many times it was tried.
    """

    def __init__(self, index: int, task: object, attempts: int,
                 cause: str):
        text = repr(task)
        if len(text) > 200:
            text = text[:197] + "..."
        self.index = index
        self.task_repr = text
        self.attempts = attempts
        super().__init__(
            f"task {index} failed after {attempts} attempt(s): {cause} "
            f"[task: {text}]")


# -- per-worker variant cache ---------------------------------------------------------

_WORKER_CACHE: Optional[VariantCache] = None

#: Operator-facing counters of worker-cache startup degradations: a corrupt
#: legacy seed file or an unusable store tree is survivable (builds are
#: deterministic) but must be *visible*, not silent — a worker that starts
#: cold because the seed was corrupt looks identical to one that starts
#: cold because there was no seed, unless these counters say otherwise.
#: Since the telemetry PR they live in the process-global metrics registry
#: under this prefix; :func:`worker_cache_events` is a façade over it.
_CACHE_EVENTS_PREFIX = "executor.cache"

#: Default LRU bound of each worker's in-memory layer.  Shards keep a small
#: working set (one workload's baseline + variants at a time); an unbounded
#: memo would instead pin every artifact a long-lived worker ever touches.
#: Override with
#: ``REPRO_WORKER_CACHE_ENTRIES``.  With a shared store attached the bound
#: only limits *memory* — evicted artifacts remain one disk read away.
DEFAULT_WORKER_CACHE_ENTRIES = 32


def _worker_cache_bound() -> Optional[int]:
    raw = os.environ.get("REPRO_WORKER_CACHE_ENTRIES", "").strip()
    if raw:
        try:
            bound = int(raw)
            return bound if bound > 0 else None  # <= 0 means unbounded
        except ValueError:
            pass
    return DEFAULT_WORKER_CACHE_ENTRIES


def worker_cache() -> VariantCache:
    """The process-local :class:`VariantCache` used by executor tasks.

    Created on first use in each worker.  With ``REPRO_STORE_DIR`` (or a
    store tree behind the deprecated ``REPRO_VARIANT_CACHE_DIR`` alias) the
    cache attaches to the shared on-disk artifact store; a legacy
    ``variants.pkl`` under ``REPRO_VARIANT_CACHE_DIR`` additionally seeds
    the in-memory layer.  A corrupt or incompatible tree/file is logged and
    counted (:func:`worker_cache_events`), never fatal — builds are
    deterministic, so starting cold only costs time.
    """
    global _WORKER_CACHE
    if _WORKER_CACHE is None:
        _WORKER_CACHE = _initial_cache()
    return _WORKER_CACHE


def worker_cache_events() -> Dict[str, int]:
    """Counters of best-effort worker-cache startups that degraded.

    ``preload_failures`` — legacy ``variants.pkl`` seed files that could not
    be imported; ``store_attach_failures`` — shared store trees that could
    not be attached.  Both also emit one ``WARNING`` log line with the
    cause, so an operator can tell a corrupt seed file from a cold start.
    (A façade over the :mod:`repro.obs` metrics registry; the dict shape
    predates it.)
    """
    registry = obs_metrics.REGISTRY
    return {"preload_failures":
            int(registry.get(f"{_CACHE_EVENTS_PREFIX}.preload_failures")),
            "store_attach_failures":
            int(registry.get(f"{_CACHE_EVENTS_PREFIX}.store_attach_failures"))}


def _initial_cache() -> VariantCache:
    bound = _worker_cache_bound()
    store: Optional[ArtifactStore] = None
    target = store_url_from_env() or store_dir_from_env()
    if target:
        try:
            store = store_from_env(max_memory_entries=bound)
        except (StoreError, OSError) as error:
            # an unusable shared tree (or unreachable store server) must
            # never kill a worker — but it must not silently cost a full
            # rebuild either
            obs_metrics.counter(
                f"{_CACHE_EVENTS_PREFIX}.store_attach_failures")
            logger.warning(
                "worker cache: cannot attach store %s (%s: %s); "
                "building storeless", target, type(error).__name__, error)
            store = None
    cache = VariantCache(max_entries=bound, store=store)
    directory = os.environ.get("REPRO_VARIANT_CACHE_DIR")
    if directory:
        path = cache_file_path(directory)
        if os.path.exists(path):
            try:
                cache.import_legacy(path)
            except Exception as error:
                # best-effort preload: a corrupt, truncated or stale file
                # (UnpicklingError, AttributeError on renamed classes, ...)
                # must never kill a worker — builds are deterministic, so
                # starting empty only costs time.  One warning + a counter
                # so the degradation is diagnosable, not silent.
                obs_metrics.counter(
                    f"{_CACHE_EVENTS_PREFIX}.preload_failures")
                logger.warning(
                    "worker cache: preload from %s failed (%s: %s); "
                    "starting cold", path, type(error).__name__, error)
    return cache


def reset_worker_cache() -> None:
    """Drop the process-local cache (tests use this to isolate scenarios)."""
    global _WORKER_CACHE
    _WORKER_CACHE = None
    obs_metrics.REGISTRY.reset(_CACHE_EVENTS_PREFIX)


# -- experiment-matrix helpers --------------------------------------------------------


def rooted_store(cache) -> Optional[ArtifactStore]:
    """The cache's persistent artifact store (local tree or remote), if any."""
    store = getattr(cache, "store", None)
    return store if store is not None and store.persistent else None


def parallel_matrix(jobs: Optional[int], cache) -> bool:
    """Should a ``measure_*`` driver dispatch its matrix to the executor?

    True when the effective job count exceeds one — unless the caller passed
    an explicit ``cache`` and only the ambient ``REPRO_JOBS`` asked for
    parallelism: an explicit argument is never vetoed by the environment
    (workers cannot share the caller's in-process cache).
    """
    return resolve_jobs(jobs) > 1 and (cache is None or jobs is not None)


def ephemeral_cache(labels) -> VariantCache:
    """The serial drivers' per-call cache: one workload's working set.

    Keeps the pre-executor loops' build reuse (baseline built once per
    workload, each variant once per label) without pinning the whole
    matrix's artifacts in memory like an unbounded memo would.
    """
    return VariantCache(max_entries=len(labels) + 1)


# -- the supervised map primitive -----------------------------------------------------


def _supervised_entry(payload: Tuple) -> object:
    """Worker-side task wrapper: the chaos injection point.

    Runs in the worker process.  With ``REPRO_FAULTS`` set (workers inherit
    the environment) the injector may crash the process, stall the task or
    raise before the real task function runs; the firing decision is a pure
    function of (seed, task index, attempt), so chaos runs are reproducible.

    Also the telemetry task boundary: the task runs under a ``task`` span
    and the worker's buffered spans + metrics snapshot are flushed to its
    per-pid shard file afterwards (a no-op without an active telemetry run),
    so even a worker that is killed later has handed over everything up to
    its last completed task.
    """
    task_fn, task, index, attempt = payload
    injector = active_injector()
    if injector is not None:
        token = f"task:{index}"
        injector.maybe_crash(token, attempt)
        injector.maybe_hang(token, attempt)
        injector.maybe_error(token, attempt)
    try:
        with obs_tracing.span("task", cat="task", index=index,
                              attempt=attempt):
            result = task_fn(task)
        obs_metrics.counter("executor.tasks_completed")
        return result
    finally:
        flush_telemetry()


def _kill_pool(pool: ProcessPoolExecutor) -> None:
    """Tear a pool down *now*, killing workers that will never finish."""
    processes = getattr(pool, "_processes", None) or {}
    for process in list(processes.values()):
        try:
            process.kill()
        except (OSError, AttributeError):  # already gone
            pass
    pool.shutdown(wait=False, cancel_futures=True)


def _run_supervised(task_fn: Callable[[Task], Result], tasks: List[Task],
                    workers: int, timeout: Optional[float], retries: int,
                    on_result: Optional[Callable[[int, Result], None]]
                    ) -> List[Result]:
    """The supervision loop: per-task futures, retry, kill, respawn.

    In-flight futures are capped at the worker count, so every in-flight
    task is actually *running* and its submission timestamp approximates its
    start — which is what makes the timeout meaningful without any
    cooperation from the task function.
    """
    backoff = _backoff_base()
    jitter = random.Random()  # timing only; results never depend on it
    total = len(tasks)
    results: Dict[int, Result] = {}
    pending = deque((index, 0) for index in range(total))
    inflight: Dict[object, Tuple[int, int, float]] = {}
    pool: Optional[ProcessPoolExecutor] = None
    pool_failures = 0
    failure_limit = _max_pool_failures()

    def record(index: int, value: Result) -> None:
        results[index] = value
        if on_result is not None:
            on_result(index, value)

    def recycle_pool() -> None:
        nonlocal pool
        if pool is not None:
            obs_metrics.counter("executor.pool_respawns")
            obs_tracing.event("executor.pool_respawn", cat="coordinate",
                              consecutive_failures=pool_failures)
            _kill_pool(pool)
            pool = None

    def requeue(index: int, attempt: int, burn_retry: bool,
                cause: str) -> None:
        """Put a task back on the queue, aborting if its budget is spent."""
        next_attempt = attempt + 1 if burn_retry else attempt
        if burn_retry:
            obs_metrics.counter("executor.retries")
            obs_tracing.event("executor.retry", cat="task", index=index,
                              attempt=attempt, cause=cause)
        if next_attempt > retries:
            recycle_pool()
            raise ExecutorTaskError(index, tasks[index], attempt + 1, cause)
        pending.append((index, next_attempt))

    def run_serially() -> None:
        """Graceful degradation: finish the remaining tasks in-process."""
        obs_metrics.counter("executor.serial_degradations")
        obs_tracing.event("executor.serial_degradation", cat="coordinate",
                          remaining=len(pending) + len(inflight))
        logger.warning(
            "executor: %d consecutive pool failures; finishing %d task(s) "
            "serially in-process", pool_failures,
            len(pending) + len(inflight))
        for future, (index, _attempt, _started) in list(inflight.items()):
            pending.append((index, 0))
        inflight.clear()
        for index, _attempt in sorted(pending):
            if index not in results:
                record(index, task_fn(tasks[index]))
        pending.clear()

    try:
        while pending or inflight:
            if pool_failures >= failure_limit:
                recycle_pool()
                run_serially()
                break
            if pool is None:
                pool = ProcessPoolExecutor(max_workers=workers)
            # keep at most one running task per worker, so submission time
            # approximates start time for the timeout below
            broken = False
            while pending and len(inflight) < workers:
                index, attempt = pending.popleft()
                if index in results:  # already satisfied by a racing retry
                    continue
                try:
                    future = pool.submit(
                        _supervised_entry, (task_fn, tasks[index], index,
                                            attempt))
                except (BrokenProcessPool, RuntimeError):
                    pending.appendleft((index, attempt))
                    broken = True
                    break
                inflight[future] = (index, attempt, time.monotonic())
            if broken:
                pool_failures += 1
                recycle_pool()
                for future, (index, attempt, _started) in inflight.items():
                    requeue(index, attempt, burn_retry=True,
                            cause="process pool broke")
                inflight.clear()
                continue
            if not inflight:
                continue

            tick = None
            if timeout is not None:
                now = time.monotonic()
                tick = max(0.0,
                           min(started + timeout for (_i, _a, started)
                               in inflight.values()) - now)
            done, _not_done = wait(set(inflight), timeout=tick,
                                   return_when=FIRST_COMPLETED)

            pool_broke = False
            broken_tasks: List[Tuple[int, int]] = []
            for future in done:
                index, attempt, _started = inflight.pop(future)
                error = future.exception()
                if error is None:
                    record(index, future.result())
                    pool_failures = 0
                elif isinstance(error, BrokenProcessPool):
                    # the worker died (crash, OOM, kill); which in-flight
                    # task was the culprit is unknowable, so all of them
                    # burn a retry below — and every requeue advances the
                    # attempt, so a crash decision keyed on (task, attempt)
                    # re-rolls instead of firing forever
                    pool_broke = True
                    broken_tasks.append((index, attempt))
                else:
                    delay = backoff * (2 ** attempt)
                    requeue(index, attempt, burn_retry=True,
                            cause=f"{type(error).__name__}: {error}")
                    if delay > 0:
                        time.sleep(delay * (0.5 + jitter.random()))
            if pool_broke:
                pool_failures += 1
                recycle_pool()
                for index, attempt in broken_tasks:
                    requeue(index, attempt, burn_retry=True,
                            cause="process pool broke")
                for future, (index, attempt, _started) in inflight.items():
                    requeue(index, attempt, burn_retry=True,
                            cause="process pool broke")
                inflight.clear()
                continue

            if timeout is not None and inflight:
                now = time.monotonic()
                hung = {future: entry for future, entry in inflight.items()
                        if now - entry[2] > timeout}
                if hung:
                    # a hung worker can only be stopped by killing it, and
                    # killing it takes the pool down: respawn, retry the hung
                    # task(s), resubmit the innocent in-flight ones for free
                    recycle_pool()
                    for future, (index, attempt, _started) in inflight.items():
                        if future in hung:
                            obs_metrics.counter("executor.timeouts")
                            obs_tracing.event(
                                "executor.timeout", cat="task", index=index,
                                attempt=attempt, timeout=timeout)
                            logger.warning(
                                "executor: task %d exceeded %.3gs timeout "
                                "(attempt %d); killing worker and retrying",
                                index, timeout, attempt + 1)
                            requeue(index, attempt, burn_retry=True,
                                    cause=f"timed out after {timeout}s")
                        else:
                            requeue(index, attempt, burn_retry=False,
                                    cause="")
                    inflight.clear()
    finally:
        if pool is not None:
            pool.shutdown(wait=False, cancel_futures=True)
    return [results[index] for index in range(total)]


def run_tasks(task_fn: Callable[[Task], Result], tasks: Iterable[Task],
              jobs: Optional[int] = None, chunksize: int = 1,
              timeout: Optional[float] = None, retries: Optional[int] = None,
              on_result: Optional[Callable[[int, Result], None]] = None
              ) -> List[Result]:
    """Apply ``task_fn`` to every task, preserving task order in the results.

    With ``jobs <= 1`` this is a plain in-process loop (no pickling, caller's
    caches apply, no supervision, no fault injection) — the differential
    reference.  With more, tasks and results cross process boundaries, so
    both must be picklable and ``task_fn`` must be a module-level callable;
    the supervised scheduler adds per-task timeout, bounded retry, pool
    respawn and serial degradation (module docstring).  ``chunksize`` only
    applies to the ``REPRO_EXECUTOR=legacy`` map path — supervision is
    per-task by construction.

    ``on_result(index, result)`` is invoked in the *calling* process as each
    task's result is accepted (completion order, not submission order) —
    the checkpoint layer journals completed shard units through it.
    """
    tasks = list(tasks)
    jobs = resolve_jobs(jobs)
    effective_timeout = resolve_task_timeout(timeout)
    effective_retries = resolve_task_retries(retries)
    if jobs <= 1 or len(tasks) <= 1:
        results = []
        for index, task in enumerate(tasks):
            value = task_fn(task)
            if on_result is not None:
                on_result(index, value)
            results.append(value)
        return results
    workers = min(jobs, len(tasks))
    if executor_mode() == "legacy":
        with ProcessPoolExecutor(max_workers=workers) as pool:
            results = list(pool.map(task_fn, tasks, chunksize=chunksize))
        if on_result is not None:
            for index, value in enumerate(results):
                on_result(index, value)
        return results
    return _run_supervised(task_fn, tasks, workers, effective_timeout,
                           effective_retries, on_result)
