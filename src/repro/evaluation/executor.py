"""Process-parallel execution of the evaluation experiment matrices.

The experiment matrices (Figures 6–10) iterate (program × label [× tool])
grids in which every cell is a pure function of its inputs: workload
synthesis, the obfuscators and the optimizer are all seeded, so a cell
computes the same rows no matter where or when it runs.  That makes the
matrices embarrassingly parallel — this module fans the cells across worker
processes with :mod:`concurrent.futures` while keeping the results
bit-identical to a serial run:

* tasks are submitted and collected with ``ProcessPoolExecutor.map``, which
  preserves submission order, and the serial order is exactly the loop order
  of the corresponding ``measure_*`` driver;
* each worker process keeps one :class:`~repro.core.variant_cache.VariantCache`
  (:func:`worker_cache`); with ``REPRO_STORE_DIR`` set, every worker
  *attaches* to the one shared on-disk
  :class:`~repro.store.artifact_store.ArtifactStore` tree — artifacts built
  by any process are read (not rebuilt) by all the others.  The deprecated
  ``REPRO_VARIANT_CACHE_DIR`` is still honoured: pointing at a store tree it
  acts as an alias for ``REPRO_STORE_DIR``; pointing at a legacy
  ``variants.pkl`` it seeds each worker's in-memory layer (the pre-store
  behaviour);
* ``jobs`` defaults to the ``REPRO_JOBS`` environment variable and, absent
  that, to 1 — results stay deterministic and tier-1-safe with no worker
  processes at all.  Invalid counts (zero, negative, non-integer) raise
  :class:`ValueError` at entry instead of failing deep inside the pool.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from typing import Callable, Iterable, List, Optional, TypeVar

from ..core.variant_cache import VariantCache, cache_file_path
from ..store.artifact_store import (ArtifactStore, StoreError,
                                    store_dir_from_env)

Task = TypeVar("Task")
Result = TypeVar("Result")


def resolve_positive_int(value: Optional[int], env_var: str, default: int,
                         param: str, hint: str = "") -> int:
    """Shared parser of the executor's positive-integer knobs.

    An explicit argument wins over the environment; anything that is not a
    positive integer — ``0``, a negative count, a float, ``"many"`` in the
    environment — raises :class:`ValueError` here, at entry, rather than
    surfacing later as an opaque pool failure.
    """
    if value is None:
        raw = os.environ.get(env_var, "").strip()
        if not raw:
            return default
        try:
            value = int(raw)
        except ValueError:
            raise ValueError(
                f"{env_var} must be a positive integer, got {raw!r}")
        if value <= 0:
            raise ValueError(
                f"{env_var} must be a positive integer, got {raw!r}")
        return value
    if isinstance(value, bool) or not isinstance(value, int) or value <= 0:
        raise ValueError(
            f"{param} must be a positive integer, got {value!r}{hint}")
    return value


def resolve_jobs(jobs: Optional[int] = None) -> int:
    """Worker-process count: explicit ``jobs``, else ``REPRO_JOBS``, else 1.

    ``1`` runs the tasks serially in-process — the default, so experiment
    results stay deterministic and reproducible without any executor
    involvement.  Invalid counts raise :class:`ValueError` at entry (see
    :func:`resolve_positive_int`).
    """
    return resolve_positive_int(
        jobs, "REPRO_JOBS", 1, "jobs",
        hint=" (use jobs=os.cpu_count() for one worker per core)")


# -- per-worker variant cache ---------------------------------------------------------

_WORKER_CACHE: Optional[VariantCache] = None

#: Default LRU bound of each worker's in-memory layer.  Shards keep a small
#: working set (one workload's baseline + variants at a time); an unbounded
#: memo would instead pin every artifact a long-lived worker ever touches.
#: Override with
#: ``REPRO_WORKER_CACHE_ENTRIES``.  With a shared store attached the bound
#: only limits *memory* — evicted artifacts remain one disk read away.
DEFAULT_WORKER_CACHE_ENTRIES = 32


def _worker_cache_bound() -> Optional[int]:
    raw = os.environ.get("REPRO_WORKER_CACHE_ENTRIES", "").strip()
    if raw:
        try:
            bound = int(raw)
            return bound if bound > 0 else None  # <= 0 means unbounded
        except ValueError:
            pass
    return DEFAULT_WORKER_CACHE_ENTRIES


def worker_cache() -> VariantCache:
    """The process-local :class:`VariantCache` used by executor tasks.

    Created on first use in each worker.  With ``REPRO_STORE_DIR`` (or a
    store tree behind the deprecated ``REPRO_VARIANT_CACHE_DIR`` alias) the
    cache attaches to the shared on-disk artifact store; a legacy
    ``variants.pkl`` under ``REPRO_VARIANT_CACHE_DIR`` additionally seeds
    the in-memory layer.  A corrupt or incompatible tree/file is ignored,
    not fatal — builds are deterministic, so starting cold only costs time.
    """
    global _WORKER_CACHE
    if _WORKER_CACHE is None:
        _WORKER_CACHE = _initial_cache()
    return _WORKER_CACHE


def _initial_cache() -> VariantCache:
    bound = _worker_cache_bound()
    store: Optional[ArtifactStore] = None
    store_dir = store_dir_from_env()
    if store_dir:
        try:
            store = ArtifactStore.attach(store_dir, max_memory_entries=bound)
        except (StoreError, OSError):
            # an unusable shared tree must never kill a worker
            store = None
    cache = VariantCache(max_entries=bound, store=store)
    directory = os.environ.get("REPRO_VARIANT_CACHE_DIR")
    if directory:
        path = cache_file_path(directory)
        if os.path.exists(path):
            try:
                cache.import_legacy(path)
            except Exception:
                # best-effort preload: a corrupt, truncated or stale file
                # (UnpicklingError, AttributeError on renamed classes, ...)
                # must never kill a worker — builds are deterministic, so
                # starting empty only costs time
                pass
    return cache


def reset_worker_cache() -> None:
    """Drop the process-local cache (tests use this to isolate scenarios)."""
    global _WORKER_CACHE
    _WORKER_CACHE = None


# -- experiment-matrix helpers --------------------------------------------------------


def rooted_store(cache) -> Optional[ArtifactStore]:
    """The cache's on-disk artifact store, when it has one."""
    store = getattr(cache, "store", None)
    return store if store is not None and store.root is not None else None


def parallel_matrix(jobs: Optional[int], cache) -> bool:
    """Should a ``measure_*`` driver dispatch its matrix to the executor?

    True when the effective job count exceeds one — unless the caller passed
    an explicit ``cache`` and only the ambient ``REPRO_JOBS`` asked for
    parallelism: an explicit argument is never vetoed by the environment
    (workers cannot share the caller's in-process cache).
    """
    return resolve_jobs(jobs) > 1 and (cache is None or jobs is not None)


def ephemeral_cache(labels) -> VariantCache:
    """The serial drivers' per-call cache: one workload's working set.

    Keeps the pre-executor loops' build reuse (baseline built once per
    workload, each variant once per label) without pinning the whole
    matrix's artifacts in memory like an unbounded memo would.
    """
    return VariantCache(max_entries=len(labels) + 1)


# -- the map primitive ----------------------------------------------------------------


def run_tasks(task_fn: Callable[[Task], Result], tasks: Iterable[Task],
              jobs: Optional[int] = None, chunksize: int = 1) -> List[Result]:
    """Apply ``task_fn`` to every task, preserving task order in the results.

    With ``jobs <= 1`` this is a plain in-process loop (no pickling, caller's
    caches apply).  With more, tasks and results cross process boundaries, so
    both must be picklable and ``task_fn`` must be a module-level callable.
    """
    tasks = list(tasks)
    jobs = resolve_jobs(jobs)
    if jobs <= 1 or len(tasks) <= 1:
        return [task_fn(task) for task in tasks]
    workers = min(jobs, len(tasks))
    with ProcessPoolExecutor(max_workers=workers) as pool:
        return list(pool.map(task_fn, tasks, chunksize=chunksize))
