"""Vulnerable-code-hiding experiment: Figure 10 (escape@1/10/50 on T-III).

The five embedded programs each contain at least one function with a known
CVE (Table 3).  For every obfuscation, each diffing tool ranks candidate
matches for each vulnerable function; the function *escapes* at rank *n* if no
correct match (per provenance) appears in the top *n*.  Following the paper,
only VulSeeker, Asm2Vec and SAFE are used (BinDiff and DeepBinDiff report only
their top-1 match) and Fla runs at a 100% ratio here.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from ..diffing import Asm2Vec, Safe, VulSeeker
from ..diffing.base import BinaryDiffer, escape_at_n
from ..opt.pass_manager import OptOptions
from ..toolchain import build_baseline, build_obfuscated, obfuscator_for
from ..workloads.suites import WorkloadProgram, embedded_programs

ESCAPE_LABELS = ("sub", "bog", "fla", "fufi.sep", "fufi.ori", "fufi.all")
ESCAPE_RANKS = (1, 10, 50)


@dataclass
class EscapeRow:
    program: str
    function: str
    tool: str
    label: str
    rank_of_correct: Optional[int]

    def escaped(self, n: int) -> bool:
        return self.rank_of_correct is None or self.rank_of_correct > n


@dataclass
class EscapeReport:
    rows: List[EscapeRow] = field(default_factory=list)

    def escape_ratio(self, tool: str, label: str, n: int) -> float:
        relevant = [row for row in self.rows
                    if row.tool == tool and row.label == label]
        if not relevant:
            return 0.0
        return sum(1 for row in relevant if row.escaped(n)) / len(relevant)

    def matrix(self, n: int) -> Dict[str, Dict[str, float]]:
        tools = sorted({row.tool for row in self.rows})
        labels = []
        for row in self.rows:
            if row.label not in labels:
                labels.append(row.label)
        return {tool: {label: self.escape_ratio(tool, label, n)
                       for label in labels}
                for tool in tools}


def escape_differs() -> List[BinaryDiffer]:
    return [VulSeeker(), Asm2Vec(), Safe()]


def measure_escape(workloads: Sequence[WorkloadProgram],
                   labels: Sequence[str] = ESCAPE_LABELS,
                   differs: Optional[Sequence[BinaryDiffer]] = None,
                   options: Optional[OptOptions] = None) -> EscapeReport:
    differs = list(differs) if differs is not None else escape_differs()
    report = EscapeReport()
    for workload in workloads:
        vulnerable = workload.vulnerable_functions
        if not vulnerable:
            continue
        baseline = build_baseline(workload.build(), options)
        for label in labels:
            variant = build_obfuscated(workload.build(), obfuscator_for(label),
                                       options)
            for differ in differs:
                result = differ.diff(baseline.binary, variant.binary)
                for function_name in vulnerable:
                    if function_name not in result.matches:
                        continue
                    rank = result.rank_of_correct(function_name,
                                                  variant.provenance)
                    report.rows.append(EscapeRow(
                        program=workload.name, function=function_name,
                        tool=differ.name, label=label, rank_of_correct=rank))
    return report


def figure10(labels: Sequence[str] = ESCAPE_LABELS,
             options: Optional[OptOptions] = None,
             limit: Optional[int] = None) -> EscapeReport:
    """Figure 10: escape@1/10/50 of the T-III vulnerable functions."""
    workloads = embedded_programs()
    if limit is not None:
        workloads = workloads[:limit]
    return measure_escape(workloads, labels, options=options)
