"""Vulnerable-code-hiding experiment: Figure 10 (escape@1/10/50 on T-III).

The five embedded programs each contain at least one function with a known
CVE (Table 3).  For every obfuscation, each diffing tool ranks candidate
matches for each vulnerable function; the function *escapes* at rank *n* if no
correct match (per provenance) appears in the top *n*.  Following the paper,
only VulSeeker, Asm2Vec and SAFE are used (BinDiff and DeepBinDiff report only
their top-1 match) and Fla runs at a 100% ratio here.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..core.variant_cache import VariantCache
from ..diffing import Asm2Vec, Safe, VulSeeker
from ..diffing.base import BinaryDiffer, escape_at_n
from ..opt.pass_manager import OptOptions
from ..workloads.suites import WorkloadProgram, embedded_programs
from .executor import (ephemeral_cache, matrix_chunksize, parallel_matrix,
                       run_tasks, worker_cache)
from .overhead import build_variant

ESCAPE_LABELS = ("sub", "bog", "fla", "fufi.sep", "fufi.ori", "fufi.all")
ESCAPE_RANKS = (1, 10, 50)


@dataclass
class EscapeRow:
    program: str
    function: str
    tool: str
    label: str
    rank_of_correct: Optional[int]

    def escaped(self, n: int) -> bool:
        return self.rank_of_correct is None or self.rank_of_correct > n


@dataclass
class EscapeReport:
    rows: List[EscapeRow] = field(default_factory=list)

    def escape_ratio(self, tool: str, label: str, n: int) -> float:
        relevant = [row for row in self.rows
                    if row.tool == tool and row.label == label]
        if not relevant:
            return 0.0
        return sum(1 for row in relevant if row.escaped(n)) / len(relevant)

    def matrix(self, n: int) -> Dict[str, Dict[str, float]]:
        tools = sorted({row.tool for row in self.rows})
        labels = []
        for row in self.rows:
            if row.label not in labels:
                labels.append(row.label)
        return {tool: {label: self.escape_ratio(tool, label, n)
                       for label in labels}
                for tool in tools}


def escape_differs() -> List[BinaryDiffer]:
    return [VulSeeker(), Asm2Vec(), Safe()]


#: One cell of the figure-10 matrix, picklable for the process executor.
EscapeTask = Tuple[WorkloadProgram, str, BinaryDiffer, Optional[OptOptions]]


def _escape_cell(workload: WorkloadProgram, label: str, differ: BinaryDiffer,
                 options: Optional[OptOptions],
                 cache: Optional[VariantCache]) -> List[EscapeRow]:
    """Rank one (program, label, tool) cell's vulnerable functions."""
    baseline = build_variant(workload, "baseline", options, cache)
    variant = build_variant(workload, label, options, cache)
    result = differ.diff(baseline.binary, variant.binary)
    rows: List[EscapeRow] = []
    for function_name in workload.vulnerable_functions:
        if function_name not in result.matches:
            continue
        rank = result.rank_of_correct(function_name, variant.provenance)
        rows.append(EscapeRow(
            program=workload.name, function=function_name,
            tool=differ.name, label=label, rank_of_correct=rank))
    return rows


def _escape_task(task: EscapeTask) -> List[EscapeRow]:
    """Executor entry point: one cell against the worker's variant cache."""
    workload, label, differ, options = task
    return _escape_cell(workload, label, differ, options, worker_cache())


def measure_escape(workloads: Sequence[WorkloadProgram],
                   labels: Sequence[str] = ESCAPE_LABELS,
                   differs: Optional[Sequence[BinaryDiffer]] = None,
                   options: Optional[OptOptions] = None,
                   cache: Optional[VariantCache] = None,
                   jobs: Optional[int] = None) -> EscapeReport:
    """Rank the vulnerable functions of every workload under every label.

    ``jobs > 1`` (or ``REPRO_JOBS``) distributes (program × label × tool)
    cells across processes; every cell is deterministic, so the report is
    bit-identical to a serial run.  An *explicit* ``cache`` is never
    overridden by the ambient ``REPRO_JOBS`` (only an explicit ``jobs``
    argument engages the executor then).
    """
    differs = list(differs) if differs is not None else escape_differs()
    vulnerable_workloads = [w for w in workloads if w.vulnerable_functions]
    report = EscapeReport()
    if parallel_matrix(jobs, cache):
        tasks: List[EscapeTask] = [
            (workload, label, differ, options)
            for workload in vulnerable_workloads
            for label in labels for differ in differs]
        for rows in run_tasks(_escape_task, tasks, jobs=jobs,
                              chunksize=matrix_chunksize(labels, differs)):
            report.rows.extend(rows)
        return report
    if cache is None:
        cache = ephemeral_cache(labels)
    for workload in vulnerable_workloads:
        for label in labels:
            for differ in differs:
                report.rows.extend(_escape_cell(workload, label, differ,
                                                options, cache))
    return report


def figure10(labels: Sequence[str] = ESCAPE_LABELS,
             options: Optional[OptOptions] = None,
             limit: Optional[int] = None,
             jobs: Optional[int] = None) -> EscapeReport:
    """Figure 10: escape@1/10/50 of the T-III vulnerable functions."""
    workloads = embedded_programs()
    if limit is not None:
        workloads = workloads[:limit]
    return measure_escape(workloads, labels, options=options, jobs=jobs)
