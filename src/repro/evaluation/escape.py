"""Vulnerable-code-hiding experiment: Figure 10 (escape@1/10/50 on T-III).

The five embedded programs each contain at least one function with a known
CVE (Table 3).  For every obfuscation, each diffing tool ranks candidate
matches for each vulnerable function; the function *escapes* at rank *n* if no
correct match (per provenance) appears in the top *n*.  Following the paper,
only VulSeeker, Asm2Vec and SAFE are used (BinDiff and DeepBinDiff report only
their top-1 match) and Fla runs at a 100% ratio here.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from ..core.variant_cache import VariantCache
from ..diffing import Asm2Vec, Safe, VulSeeker
from ..diffing.base import BinaryDiffer
from ..opt.pass_manager import OptOptions
from ..workloads.suites import WorkloadProgram, embedded_programs
from .executor import ephemeral_cache, parallel_matrix
from .overhead import build_variant

ESCAPE_LABELS = ("sub", "bog", "fla", "fufi.sep", "fufi.ori", "fufi.all")
ESCAPE_RANKS = (1, 10, 50)


@dataclass
class EscapeRow:
    program: str
    function: str
    tool: str
    label: str
    rank_of_correct: Optional[int]

    def escaped(self, n: int) -> bool:
        return self.rank_of_correct is None or self.rank_of_correct > n


@dataclass
class EscapeReport:
    rows: List[EscapeRow] = field(default_factory=list)

    def escape_ratio(self, tool: str, label: str, n: int) -> float:
        relevant = [row for row in self.rows
                    if row.tool == tool and row.label == label]
        if not relevant:
            return 0.0
        return sum(1 for row in relevant if row.escaped(n)) / len(relevant)

    def matrix(self, n: int) -> Dict[str, Dict[str, float]]:
        tools = sorted({row.tool for row in self.rows})
        labels = []
        for row in self.rows:
            if row.label not in labels:
                labels.append(row.label)
        return {tool: {label: self.escape_ratio(tool, label, n)
                       for label in labels}
                for tool in tools}


def escape_differs() -> List[BinaryDiffer]:
    return [VulSeeker(), Asm2Vec(), Safe()]


def _escape_cell(workload: WorkloadProgram, label: str, differ: BinaryDiffer,
                 options: Optional[OptOptions],
                 cache: Optional[VariantCache]) -> List[EscapeRow]:
    """Rank one (program, label, tool) cell's vulnerable functions."""
    baseline = build_variant(workload, "baseline", options, cache)
    variant = build_variant(workload, label, options, cache)
    result = differ.diff(baseline.binary, variant.binary)
    rows: List[EscapeRow] = []
    for function_name in workload.vulnerable_functions:
        if function_name not in result.matches:
            continue
        rank = result.rank_of_correct(function_name, variant.provenance)
        rows.append(EscapeRow(
            program=workload.name, function=function_name,
            tool=differ.name, label=label, rank_of_correct=rank))
    return rows


def measure_escape(workloads: Sequence[WorkloadProgram],
                   labels: Sequence[str] = ESCAPE_LABELS,
                   differs: Optional[Sequence[BinaryDiffer]] = None,
                   options: Optional[OptOptions] = None,
                   cache: Optional[VariantCache] = None,
                   jobs: Optional[int] = None) -> EscapeReport:
    """Rank the vulnerable functions of every workload under every label.

    ``jobs > 1`` (or ``REPRO_JOBS``) shards the (program × label × tool)
    matrix at *function* granularity across processes (see
    :mod:`~repro.evaluation.diff_sharding`); every unit is deterministic and
    the merge is too, so the report is bit-identical to a serial run.  An
    *explicit* ``cache`` is never overridden by the ambient ``REPRO_JOBS``
    (only an explicit ``jobs`` argument engages the executor then).
    """
    differs = list(differs) if differs is not None else escape_differs()
    vulnerable_workloads = [w for w in workloads if w.vulnerable_functions]
    report = EscapeReport()
    if parallel_matrix(jobs, cache):
        from .diff_sharding import measure_escape_sharded
        return measure_escape_sharded(workloads, labels, differs, options,
                                      jobs=jobs)
    if cache is None:
        cache = ephemeral_cache(labels)
    for workload in vulnerable_workloads:
        for label in labels:
            for differ in differs:
                report.rows.extend(_escape_cell(workload, label, differ,
                                                options, cache))
    return report


def figure10(labels: Sequence[str] = ESCAPE_LABELS,
             options: Optional[OptOptions] = None,
             limit: Optional[int] = None,
             jobs: Optional[int] = None) -> EscapeReport:
    """Figure 10: escape@1/10/50 of the T-III vulnerable functions."""
    workloads = embedded_programs()
    if limit is not None:
        workloads = workloads[:limit]
    return measure_escape(workloads, labels, options=options, jobs=jobs)
