"""Fault injection under the evaluation namespace.

The harness itself lives in :mod:`repro.faults` so the store can consult it
without importing the evaluation layer; this module re-exports it where the
executor documentation points operators.
"""

from ..faults import (CRASH_EXIT_CODE, DEFAULT_HANG_SECONDS, FAULT_KINDS,
                      FaultInjected, FaultInjector, FaultRule,
                      active_injector, parse_faults, reset_injector)

__all__ = [
    "CRASH_EXIT_CODE", "DEFAULT_HANG_SECONDS", "FAULT_KINDS",
    "FaultInjected", "FaultInjector", "FaultRule",
    "active_injector", "parse_faults", "reset_injector",
]
