"""Diffing accuracy experiment: Figure 8 (Precision@1 per tool per obfuscation).

For every workload program the original (un-obfuscated, un-stripped) binary is
diffed against each obfuscated build by each of the five tools; Precision@1 is
computed with the relaxed pairing rule (provenance-based).  Figure 8 reports
the average per (tool, obfuscation) pair over T-I and T-II.

``jobs`` (or ``REPRO_JOBS``) fans the matrix across worker processes at
*function* granularity via :mod:`repro.evaluation.diff_sharding`; every cell
is a pure function of seeded inputs and the merge layer is deterministic, so
the parallel report is bit-identical to the serial one (the default, and the
differential reference).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from ..core.variant_cache import VariantCache, variant_key
from ..diffing import all_differs, precision_at_1
from ..diffing.base import BinaryDiffer
from ..opt.pass_manager import OptOptions
from ..store.feature_payloads import persist_features, warm_features
from ..toolchain import ALL_LABELS, obfuscator_for
from ..workloads.suites import (WorkloadProgram, coreutils_programs,
                                spec2006_programs, spec2017_programs)
from .executor import ephemeral_cache, parallel_matrix, rooted_store
from .overhead import build_variant


@dataclass
class PrecisionRow:
    program: str
    suite: str
    tool: str
    label: str
    precision: float
    similarity_score: float


@dataclass
class PrecisionReport:
    rows: List[PrecisionRow] = field(default_factory=list)

    def average(self, tool: str, label: str) -> float:
        values = [row.precision for row in self.rows
                  if row.tool == tool and row.label == label]
        if not values:
            return 0.0
        return sum(values) / len(values)

    def tools(self) -> List[str]:
        seen: List[str] = []
        for row in self.rows:
            if row.tool not in seen:
                seen.append(row.tool)
        return seen

    def labels(self) -> List[str]:
        seen: List[str] = []
        for row in self.rows:
            if row.label not in seen:
                seen.append(row.label)
        return seen

    def matrix(self) -> Dict[str, Dict[str, float]]:
        return {tool: {label: self.average(tool, label) for label in self.labels()}
                for tool in self.tools()}


def _precision_cell(workload: WorkloadProgram, label: str,
                    differ: BinaryDiffer, options: Optional[OptOptions],
                    cache: Optional[VariantCache]) -> PrecisionRow:
    """Diff one (program, label, tool) cell — the unit of work of figure 8.

    With a store-backed cache the memoised diffing features of both binaries
    ride along in the artifact store (kind ``"features"``): warmed before the
    diff, persisted after.  Features are pure functions of the binaries, so
    this only ever skips re-extraction — rows are identical with or without
    the store.
    """
    baseline = build_variant(workload, "baseline", options, cache)
    variant = build_variant(workload, label, options, cache)
    store = rooted_store(cache)
    if store is not None:
        baseline_key = variant_key(workload, "baseline", options)
        label_key = variant_key(workload, obfuscator_for(label), options)
        warm_features(store, baseline_key, baseline.binary)
        warm_features(store, label_key, variant.binary)
    original_names = [f.name for f in baseline.binary.functions]
    result = differ.diff(baseline.binary, variant.binary)
    precision = precision_at_1(result, variant.provenance, original_names)
    if store is not None:
        persist_features(store, baseline_key, baseline.binary)
        persist_features(store, label_key, variant.binary)
    return PrecisionRow(
        program=workload.name, suite=workload.suite,
        tool=differ.name, label=label, precision=precision,
        similarity_score=result.similarity_score)


def measure_precision(workloads: Sequence[WorkloadProgram],
                      labels: Sequence[str] = ALL_LABELS,
                      differs: Optional[Sequence[BinaryDiffer]] = None,
                      options: Optional[OptOptions] = None,
                      cache: Optional[VariantCache] = None,
                      jobs: Optional[int] = None) -> PrecisionReport:
    """Diff every obfuscated build against its baseline with every tool.

    A shared :class:`~repro.core.variant_cache.VariantCache` lets this reuse
    the variants the overhead experiments already built (and vice versa).
    ``jobs > 1`` (or ``REPRO_JOBS``) shards the matrix at *function*
    granularity across processes (see
    :mod:`~repro.evaluation.diff_sharding`); workers build through their own
    store-backed caches, so a passed ``cache`` applies to serial runs only —
    and an *explicit* ``cache`` is never overridden by the ambient
    ``REPRO_JOBS`` (only an explicit ``jobs`` argument engages the executor
    then).  Row order and row contents are identical either way; the serial
    loop remains the default and the differential reference.
    """
    differs = list(differs) if differs is not None else all_differs()
    report = PrecisionReport()
    if parallel_matrix(jobs, cache):
        from .diff_sharding import measure_precision_sharded
        return measure_precision_sharded(workloads, labels, differs, options,
                                         jobs=jobs)
    if cache is None:
        cache = ephemeral_cache(labels)
    for workload in workloads:
        for label in labels:
            for differ in differs:
                report.rows.append(_precision_cell(workload, label, differ,
                                                   options, cache))
    return report


def figure8(limit_spec: Optional[int] = 4, limit_coreutils: Optional[int] = 4,
            labels: Sequence[str] = ALL_LABELS,
            differs: Optional[Sequence[BinaryDiffer]] = None,
            options: Optional[OptOptions] = None,
            cache: Optional[VariantCache] = None,
            jobs: Optional[int] = None) -> PrecisionReport:
    """Figure 8 on a configurable subset of T-I and T-II.

    The full suites (47 SPEC + 108 CoreUtils programs x 8 obfuscations x 5
    tools) take a long time in pure Python; the defaults use a representative
    subset, and passing ``None`` for the limits reproduces the full figure.
    """
    spec = spec2006_programs() + spec2017_programs()
    core = coreutils_programs()
    if limit_spec is not None:
        spec = spec[:limit_spec]
    if limit_coreutils is not None:
        core = core[:limit_coreutils]
    return measure_precision(spec + core, labels, differs, options, cache,
                             jobs=jobs)
