"""Opcode histogram distance experiment: Figure 11.

The paper disassembles every binary (objdump), builds opcode histograms and
reports, per program, the vector distance between the original and each
obfuscated binary, normalised by the largest distance observed for that
program.  FuFi.all is expected to have the largest distance, followed by
FuFi.sep and FuFi.ori.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from ..backend.disassembler import normalised_distances
from ..baselines.bintuner import BinTuner
from ..opt.pass_manager import OptOptions
from ..toolchain import build_baseline, build_obfuscated, obfuscator_for
from ..workloads.suites import WorkloadProgram, spec2006_programs, spec2017_programs

DISTANCE_LABELS = ("sub", "bog", "fla-10", "bintuner", "fission", "fusion",
                   "fufi.sep", "fufi.ori", "fufi.all")


@dataclass
class DistanceReport:
    # program -> label -> normalised distance
    distances: Dict[str, Dict[str, float]] = field(default_factory=dict)

    def labels(self) -> List[str]:
        seen: List[str] = []
        for per_program in self.distances.values():
            for label in per_program:
                if label not in seen:
                    seen.append(label)
        return seen

    def average(self, label: str) -> float:
        values = [per_program[label] for per_program in self.distances.values()
                  if label in per_program]
        if not values:
            return 0.0
        return sum(values) / len(values)


def measure_opcode_distance(workloads: Sequence[WorkloadProgram],
                            labels: Sequence[str] = DISTANCE_LABELS,
                            options: Optional[OptOptions] = None,
                            tuner_iterations: int = 4) -> DistanceReport:
    report = DistanceReport()
    for workload in workloads:
        baseline = build_baseline(workload.build(), options)
        obfuscated = {}
        for label in labels:
            if label == "bintuner":
                tuner = BinTuner(iterations=tuner_iterations)
                obfuscated[label] = tuner.tune(workload.build()).best_binary
            else:
                obfuscated[label] = build_obfuscated(
                    workload.build(), obfuscator_for(label), options).binary
        report.distances[workload.name] = normalised_distances(
            baseline.binary, obfuscated)
    return report


def figure11(limit: Optional[int] = 6,
             options: Optional[OptOptions] = None) -> DistanceReport:
    """Figure 11 on a subset of T-I (``limit=None`` reproduces the full figure)."""
    workloads = spec2006_programs() + spec2017_programs()
    if limit is not None:
        workloads = workloads[:limit]
    return measure_opcode_distance(workloads, options=options)
