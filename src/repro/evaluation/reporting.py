"""Plain-text rendering of the experiment reports (paper-style rows)."""

from __future__ import annotations

from typing import List, Mapping, Optional, Sequence


def format_table(headers: Sequence[str], rows: Sequence[Sequence[object]],
                 title: str = "") -> str:
    """Render a fixed-width text table."""
    columns = [list(map(str, column)) for column in
               zip(*([headers] + [list(map(_fmt, row)) for row in rows]))] \
        if rows else [[h] for h in headers]
    widths = [max(len(cell) for cell in column) for column in columns]

    def render_row(cells: Sequence[object]) -> str:
        return " | ".join(str(_fmt(cell)).ljust(width)
                          for cell, width in zip(cells, widths))

    lines: List[str] = []
    if title:
        lines.append(title)
    lines.append(render_row(headers))
    lines.append("-+-".join("-" * width for width in widths))
    lines.extend(render_row(row) for row in rows)
    return "\n".join(lines)


def _fmt(value: object) -> object:
    if isinstance(value, float):
        return f"{value:.3f}"
    return value


def matrix_table(matrix: Mapping[str, Mapping[str, float]],
                 row_title: str = "row", title: str = "") -> str:
    """Render a nested mapping {row: {column: value}} as a table."""
    rows = list(matrix)
    columns: List[str] = []
    for row in rows:
        for column in matrix[row]:
            if column not in columns:
                columns.append(column)
    table_rows = [[row] + [matrix[row].get(column, "") for column in columns]
                  for row in rows]
    return format_table([row_title] + columns, table_rows, title=title)


def overhead_table(report, suites: Optional[Sequence[str]] = None,
                   title: str = "") -> str:
    """Per-program overhead rows plus the geometric-mean row (Figures 6/7)."""
    labels = report.labels()
    rows = []
    for program in report.programs():
        row = [program]
        for label in labels:
            value = report.overhead(program, label)
            row.append("" if value is None else f"{value:.1f}%")
        rows.append(row)
    geomean_row = ["GEOMEAN"]
    for label in labels:
        geomean_row.append(f"{report.geomean(label):.1f}%")
    rows.append(geomean_row)
    return format_table(["program"] + list(labels), rows, title=title)
