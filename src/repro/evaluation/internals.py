"""Khaos internal statistics: Table 2.

The table reports, separately for SPEC CPU 2006, SPEC CPU 2017 and CoreUtils:

* fission ratio (#sepFuncs / #oriFuncs), average sepFunc size in basic blocks
  (#BB) and the reduction ratio of the split functions (RR);
* fusion ratio (fraction of candidates aggregated), parameters saved by the
  compression (#RP) and innocuous blocks per fused function (#HBB).

The statistics come from running the fission and fusion primitives
individually (no combination), exactly as the paper describes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from ..core.config import KhaosConfig, Mode
from ..core.obfuscator import Khaos
from ..workloads.suites import (WorkloadProgram, coreutils_programs,
                                spec2006_programs, spec2017_programs)


@dataclass
class InternalsRow:
    suite: str
    fission_ratio: float
    avg_sepfunc_blocks: float
    reduction_ratio: float
    fusion_ratio: float
    avg_reduced_params: float
    avg_innocuous_blocks: float

    def as_dict(self) -> Dict[str, float]:
        return {
            "Fission Ratio": self.fission_ratio,
            "#BB": self.avg_sepfunc_blocks,
            "RR": self.reduction_ratio,
            "Fusion Ratio": self.fusion_ratio,
            "#RP": self.avg_reduced_params,
            "#HBB": self.avg_innocuous_blocks,
        }


@dataclass
class InternalsReport:
    rows: Dict[str, InternalsRow] = field(default_factory=dict)

    def as_table(self) -> Dict[str, Dict[str, float]]:
        return {suite: row.as_dict() for suite, row in self.rows.items()}


def measure_internals(workloads_by_suite: Dict[str, Sequence[WorkloadProgram]],
                      seed: int = 0x5EED) -> InternalsReport:
    report = InternalsReport()
    for suite, workloads in workloads_by_suite.items():
        fission_ratios: List[float] = []
        sepfunc_blocks: List[float] = []
        reductions: List[float] = []
        fusion_ratios: List[float] = []
        reduced_params: List[float] = []
        innocuous: List[float] = []

        for workload in workloads:
            fission = Khaos(KhaosConfig(mode=Mode.FISSION, seed=seed)).obfuscate(
                workload.build())
            fusion = Khaos(KhaosConfig(mode=Mode.FUSION, seed=seed)).obfuscate(
                workload.build())
            fission_ratios.append(fission.stats.fission.ratio)
            sepfunc_blocks.append(fission.stats.fission.avg_sepfunc_blocks)
            reductions.append(fission.stats.fission.reduction_ratio)
            fusion_ratios.append(fusion.stats.fusion.ratio)
            reduced_params.append(fusion.stats.fusion.avg_reduced_params)
            innocuous.append(fusion.stats.fusion.avg_innocuous_blocks)

        def mean(values: List[float]) -> float:
            return sum(values) / len(values) if values else 0.0

        report.rows[suite] = InternalsRow(
            suite=suite,
            fission_ratio=mean(fission_ratios),
            avg_sepfunc_blocks=mean(sepfunc_blocks),
            reduction_ratio=mean(reductions),
            fusion_ratio=mean(fusion_ratios),
            avg_reduced_params=mean(reduced_params),
            avg_innocuous_blocks=mean(innocuous))
    return report


def table2(limit: Optional[int] = 5) -> InternalsReport:
    """Table 2 over (a subset of) SPEC 2006, SPEC 2017 and CoreUtils."""
    def cut(workloads: List[WorkloadProgram]) -> List[WorkloadProgram]:
        return workloads if limit is None else workloads[:limit]

    return measure_internals({
        "SPEC CPU 2006": cut(spec2006_programs()),
        "SPEC CPU 2017": cut(spec2017_programs()),
        "CoreUtils": cut(coreutils_programs()),
    })
