"""Compiler-option comparison: Figure 9 (BinDiff similarity, BinTuner vs Khaos).

Following section 4.2 ("Compared with compiler options"), BinTuner iteratively
searches compiler options against an O0 baseline, Khaos uses FuFi.all on the
standard O2 + LTO build, and both resulting binaries are compared by BinDiff
against the program compiled at O0, O1, O2 and O3.  The paper additionally
reports BinTuner's runtime overhead against the O2 + LTO baseline (30.35%).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from ..baselines.bintuner import BinTuner
from ..backend.lowering import lower_program
from ..diffing.bindiff import BinDiff
from ..opt.pass_manager import OptOptions
from ..opt.pipelines import optimize_program
from ..toolchain import build_obfuscated, obfuscator_for
from ..utils import geometric_mean
from ..vm.machine import run_program
from ..workloads.suites import (SPECINT_2006, SPECSPEED_2017, WorkloadProgram,
                                find_program)
from .executor import run_tasks

OPT_LEVELS = (0, 1, 2, 3)


@dataclass
class SimilarityRow:
    program: str
    protection: str          # "bintuner" or "khaos"
    opt_level: int
    similarity: float


@dataclass
class BinTunerReport:
    rows: List[SimilarityRow] = field(default_factory=list)
    bintuner_overhead_percent: float = 0.0

    def similarity(self, protection: str, opt_level: int) -> float:
        values = [row.similarity for row in self.rows
                  if row.protection == protection and row.opt_level == opt_level]
        if not values:
            return 0.0
        return sum(values) / len(values)

    def geomean(self, protection: str, opt_level: int) -> float:
        values = [row.similarity for row in self.rows
                  if row.protection == protection and row.opt_level == opt_level]
        if not values:
            return 0.0
        return geometric_mean([v - 1.0 for v in values]) + 1.0


def default_programs() -> List[WorkloadProgram]:
    names = list(SPECINT_2006) + list(SPECSPEED_2017)
    return [find_program(name) for name in names]


#: One figure-9 task (a whole workload), picklable for the process executor.
BinTunerTask = Tuple[WorkloadProgram, int]


def _bintuner_task(task: BinTunerTask) -> Tuple[List[SimilarityRow], float]:
    """Tune, obfuscate and diff one workload against every opt level.

    The unit of work of figure 9; returns the workload's similarity rows plus
    its BinTuner overhead factor (aggregated by the caller in workload order).
    """
    workload, tuner_iterations = task
    differ = BinDiff()
    rows: List[SimilarityRow] = []

    level_binaries = {}
    for level in OPT_LEVELS:
        options = OptOptions(level=level, lto=level >= 2)
        level_binaries[level] = lower_program(
            optimize_program(workload.build(), options))

    tuner = BinTuner(iterations=tuner_iterations)
    tuned = tuner.tune(workload.build())
    khaos = build_obfuscated(workload.build(), obfuscator_for("fufi.all"))

    for level in OPT_LEVELS:
        reference = level_binaries[level]
        rows.append(SimilarityRow(
            program=workload.name, protection="bintuner", opt_level=level,
            similarity=differ.diff(reference, tuned.best_binary).similarity_score))
        rows.append(SimilarityRow(
            program=workload.name, protection="khaos", opt_level=level,
            similarity=differ.diff(reference, khaos.binary).similarity_score))

    # BinTuner overhead vs the O2+LTO baseline (paper: 30.35%)
    baseline_run = run_program(optimize_program(workload.build(), OptOptions()))
    tuned_run = run_program(optimize_program(workload.build(),
                                             tuned.best_options))
    base = baseline_run.cycles or 1
    overhead = (tuned_run.cycles - base) / base
    return rows, overhead


def measure_bintuner(workloads: Sequence[WorkloadProgram],
                     tuner_iterations: int = 6,
                     jobs: Optional[int] = None) -> BinTunerReport:
    """Figure 9's measurement loop.

    ``jobs > 1`` (or ``REPRO_JOBS``) shards each workload into one task per
    protection scheme across processes (see
    :func:`~repro.evaluation.diff_sharding.measure_bintuner_sharded`,
    binary-pair granularity — the row value is the whole-binary similarity);
    rows and the overhead geomean are assembled in workload order, so the
    report is bit-identical to the serial loop, which stays the default and
    the differential reference.
    """
    from .executor import parallel_matrix
    if parallel_matrix(jobs, None):
        from .diff_sharding import measure_bintuner_sharded
        return measure_bintuner_sharded(workloads, tuner_iterations,
                                        jobs=jobs)
    report = BinTunerReport()
    overheads: List[float] = []
    tasks: List[BinTunerTask] = [(workload, tuner_iterations)
                                 for workload in workloads]
    for rows, overhead in run_tasks(_bintuner_task, tasks, jobs=jobs):
        report.rows.extend(rows)
        overheads.append(overhead)
    report.bintuner_overhead_percent = geometric_mean(overheads) * 100.0
    return report


def figure9(limit: Optional[int] = 4,
            tuner_iterations: int = 6,
            jobs: Optional[int] = None) -> BinTunerReport:
    """Figure 9 on a subset of SPECint 2006 + SPECspeed 2017 (``limit=None`` = all)."""
    workloads = default_programs()
    if limit is not None:
        workloads = workloads[:limit]
    return measure_bintuner(workloads, tuner_iterations=tuner_iterations,
                            jobs=jobs)
