"""Multi-worker coordination of the sharded experiment matrices.

The sharded fig8/9/10 drivers already reduce a matrix run to a
deterministic list of value-keyed shard units whose results live in the
shared :class:`~repro.store.artifact_store.ArtifactStore` — which means
"run this matrix on N machines" is pure scheduling: partition the shard
list, point every partition at the same store (a local tree today, a
``REPRO_STORE_URL`` server for a fleet), and merge the results through
the same :func:`~repro.evaluation.diff_sharding.merge_shard_results` /
``merge_partials`` contract the serial drivers use.  This module is that
scheduler:

* :func:`partition_round_robin` deals shard indices round-robin across
  ``workers`` partitions — deterministic, balanced (cells interleave
  instead of clustering), and independent of scheduling order;
* each partition executes as **one supervised task**
  (:func:`_coordinate_partition`): inside the worker process it runs its
  shard slice serially through
  :func:`~repro.evaluation.checkpoint.run_checkpointed` with the *same*
  run identity as the serial sharded driver, so all partitions journal
  into one shared run manifest (``O_APPEND``-interleaved by design).  A
  partition killed mid-flight re-executes only its unjournaled shards —
  the supervisor's retry and the checkpoint layer compose;
* results reassemble in shard order and merge exactly like the serial
  path, so a coordinated run is **bit-identical** to the serial driver
  over the same matrix (``tests/test_coordinate.py`` asserts it), and a
  warm rerun — local or remote — re-scores zero units.

Workers are processes on this machine today; because every unit of state
they share lives behind the store (objects, journals, telemetry), the
same partitioning runs on remote-store-attached hosts tomorrow — each
host runs its partition list against ``REPRO_STORE_URL`` and the merge
happens wherever the journal-complete shard results are read back.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple, TypeVar

from ..diffing import all_differs
from ..diffing.base import BinaryDiffer
from ..obs import metrics as obs_metrics
from ..obs import tracing as obs_tracing
from ..obs.collect import open_run
from ..opt.pass_manager import OptOptions
from ..store.artifact_store import store_dir_from_env
from ..toolchain import ALL_LABELS
from ..workloads.suites import WorkloadProgram
from .bintuner_compare import BinTunerReport
from .checkpoint import ShardRunStats, run_checkpointed, run_id
from .diff_sharding import (DiffShardStats, MergedCell, _diff_shard,
                            _bintuner_shard, _normalize_resumed,
                            bintuner_report_from_results, bintuner_shard_key,
                            diff_shard_key, escape_report_from_cells,
                            merge_shard_results, precision_report_from_cells,
                            shard_bintuner_matrix, shard_diff_matrix)
from .escape import ESCAPE_LABELS, EscapeReport, escape_differs
from .executor import resolve_positive_int, run_tasks
from .precision import PrecisionReport

Task = TypeVar("Task")
Result = TypeVar("Result")

#: Default worker (partition) count.  Override with ``REPRO_COORD_WORKERS``
#: or the ``workers`` argument.
DEFAULT_WORKERS = 2


def resolve_workers(workers: Optional[int] = None) -> int:
    """Coordinator width: explicit, else ``REPRO_COORD_WORKERS``, else 2."""
    return resolve_positive_int(workers, "REPRO_COORD_WORKERS",
                                DEFAULT_WORKERS, "workers")


def partition_round_robin(count: int, workers: int) -> List[List[int]]:
    """Deal ``count`` shard indices across ``workers`` partitions.

    Partition ``k`` takes indices ``k, k + workers, k + 2·workers, ...`` —
    matrix cells interleave across workers instead of one worker getting a
    whole workload's (expensive) cells.  Empty partitions are dropped, so
    ``workers > count`` degrades gracefully.
    """
    if count < 0:
        raise ValueError(f"count must be >= 0, got {count}")
    if workers <= 0:
        raise ValueError(f"workers must be positive, got {workers}")
    parts = [list(range(k, count, workers)) for k in range(workers)]
    return [part for part in parts if part]


@dataclass
class CoordinatorStats:
    """Partitioning + resume accounting of one coordinated run."""

    workers: int = 0
    #: shard-unit counts per (non-empty) partition, in partition order
    partitions: List[int] = field(default_factory=list)
    planned: int = 0
    resumed: int = 0
    executed: int = 0
    journaled: int = 0

    def add_run(self, run_stats: Dict[str, int]) -> None:
        self.planned += run_stats.get("planned", 0)
        self.resumed += run_stats.get("resumed", 0)
        self.executed += run_stats.get("executed", 0)
        self.journaled += run_stats.get("journaled", 0)

    def as_dict(self) -> Dict[str, object]:
        return {"workers": self.workers, "partitions": list(self.partitions),
                "planned": self.planned, "resumed": self.resumed,
                "executed": self.executed, "journaled": self.journaled}


#: One partition's picklable work order:
#: (task_fn, tasks, keys, run_parts, normalize).
_PartitionPayload = Tuple[Callable, List, List, object, Optional[Callable]]


def _coordinate_partition(payload: _PartitionPayload
                          ) -> Tuple[List, Dict[str, int]]:
    """Worker entry point: run one partition's shards serially, journaled.

    Runs under the supervised executor, so worker-side chaos (crash, hang)
    applies at partition granularity; the inner ``run_checkpointed`` call
    journals each completed shard into the run's shared manifest, so a
    retried partition revives everything its previous incarnation finished.
    """
    task_fn, tasks, keys, run_parts, normalize = payload
    stats = ShardRunStats()
    with obs_tracing.span("coordinate.partition", cat="coordinate",
                          shards=len(tasks)):
        results = run_checkpointed(task_fn, tasks, keys, run_parts,
                                   jobs=1, chunksize=1, normalize=normalize,
                                   stats=stats)
    return results, stats.as_dict()


def coordinate_tasks(task_fn: Callable[[Task], Result],
                     tasks: Sequence[Task], task_keys: Sequence[object],
                     run_parts: object, workers: Optional[int] = None,
                     normalize: Optional[Callable[[Result], Result]] = None,
                     stats: Optional[CoordinatorStats] = None
                     ) -> List[Result]:
    """Partition a shard list across workers; results come back in order.

    The coordinated analogue of
    :func:`~repro.evaluation.checkpoint.run_checkpointed` — same task/key
    discipline, same ``run_parts`` identity (so serial and coordinated
    runs of one matrix share a journal and resume each other's work),
    but each worker owns a whole partition instead of single tasks.
    """
    tasks = list(tasks)
    keys = list(task_keys)
    if len(tasks) != len(keys):
        raise ValueError(
            f"coordinate_tasks: {len(tasks)} tasks but {len(keys)} keys")
    width = resolve_workers(workers)
    parts = partition_round_robin(len(tasks), width)
    identity = run_id(run_parts)
    if stats is not None:
        stats.workers = width
        stats.partitions = [len(part) for part in parts]
    obs_metrics.counter("coordinator.runs")
    obs_metrics.counter("coordinator.partitions", len(parts))
    obs_metrics.counter("coordinator.units", len(tasks))
    payloads: List[_PartitionPayload] = [
        (task_fn, [tasks[i] for i in part], [keys[i] for i in part],
         run_parts, normalize)
        for part in parts]
    # the telemetry run wraps the whole coordinated matrix; partition
    # workers inherit it through the environment and flush into its shard
    # files, exactly like executor tasks do
    with open_run(store_dir_from_env(), identity):
        with obs_tracing.span("coordinate", cat="coordinate",
                              run_id=identity, workers=len(parts),
                              units=len(tasks)):
            outcomes = run_tasks(_coordinate_partition, payloads,
                                 jobs=max(1, len(parts)), chunksize=1)
    results: List[object] = [None] * len(tasks)
    for part, (part_results, run_stats) in zip(parts, outcomes):
        for offset, index in enumerate(part):
            results[index] = part_results[offset]
        if stats is not None:
            stats.add_run(run_stats)
    return results  # type: ignore[return-value]


# -- figure 8/10: coordinated function-granularity diff matrices ----------------------


def coordinate_diff_cells(workloads: Sequence[WorkloadProgram],
                          labels: Sequence[str],
                          differs: Sequence[BinaryDiffer],
                          options: Optional[OptOptions] = None,
                          workers: Optional[int] = None,
                          shards_per_cell: Optional[int] = None,
                          stats: Optional[DiffShardStats] = None,
                          coord_stats: Optional[CoordinatorStats] = None
                          ) -> List[MergedCell]:
    """The coordinated analogue of ``_merged_cells``: same shards, same
    keys, same run identity, same merge — different scheduler."""
    shards = shard_diff_matrix(workloads, labels, differs, options,
                               shards_per_cell)
    keys = [diff_shard_key(shard) for shard in shards]
    results = coordinate_tasks(_diff_shard, shards, keys,
                               ("fig8-10", tuple(keys)), workers=workers,
                               normalize=_normalize_resumed,
                               stats=coord_stats)
    return merge_shard_results(workloads, labels, differs, shards, results,
                               stats)


def measure_precision_coordinated(workloads: Sequence[WorkloadProgram],
                                  labels: Sequence[str] = ALL_LABELS,
                                  differs: Optional[Sequence[BinaryDiffer]]
                                  = None,
                                  options: Optional[OptOptions] = None,
                                  workers: Optional[int] = None,
                                  shards_per_cell: Optional[int] = None,
                                  stats: Optional[DiffShardStats] = None,
                                  coord_stats: Optional[CoordinatorStats]
                                  = None) -> PrecisionReport:
    """Figure 8 across N workers — bit-identical to the serial drivers."""
    differs = list(differs) if differs is not None else all_differs()
    return precision_report_from_cells(coordinate_diff_cells(
        workloads, labels, differs, options, workers, shards_per_cell,
        stats, coord_stats))


def measure_escape_coordinated(workloads: Sequence[WorkloadProgram],
                               labels: Sequence[str] = ESCAPE_LABELS,
                               differs: Optional[Sequence[BinaryDiffer]]
                               = None,
                               options: Optional[OptOptions] = None,
                               workers: Optional[int] = None,
                               shards_per_cell: Optional[int] = None,
                               stats: Optional[DiffShardStats] = None,
                               coord_stats: Optional[CoordinatorStats] = None
                               ) -> EscapeReport:
    """Figure 10 across N workers — bit-identical to the serial drivers."""
    differs = list(differs) if differs is not None else escape_differs()
    vulnerable_workloads = [w for w in workloads if w.vulnerable_functions]
    return escape_report_from_cells(coordinate_diff_cells(
        vulnerable_workloads, labels, differs, options, workers,
        shards_per_cell, stats, coord_stats))


# -- figure 9: coordinated binary-pair shards -----------------------------------------


def measure_bintuner_coordinated(workloads: Sequence[WorkloadProgram],
                                 tuner_iterations: int = 6,
                                 workers: Optional[int] = None,
                                 coord_stats: Optional[CoordinatorStats]
                                 = None) -> BinTunerReport:
    """Figure 9 across N workers — bit-identical to the serial drivers."""
    shards = shard_bintuner_matrix(workloads, tuner_iterations)
    keys = [bintuner_shard_key(shard) for shard in shards]
    results = coordinate_tasks(_bintuner_shard, shards, keys,
                               ("fig9", tuple(keys)), workers=workers,
                               stats=coord_stats)
    return bintuner_report_from_results(workloads, results)
