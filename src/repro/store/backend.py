"""Store backends: where the artifact bytes live.

:class:`~repro.store.artifact_store.ArtifactStore` owns the *semantic*
layer — key freezing, content addressing, the pickle envelope, the LRU,
quarantine policy, counters.  A :class:`StoreBackend` owns the *byte*
layer underneath it: opaque serialized envelopes addressed by
``(kind, digest)``.  Two implementations:

* :class:`LocalBackend` — the original on-disk object tree
  (``objects/<kind>/<aa>/<digest>.pkl``) with the single-writer atomic
  protocol, now crash-durable: the payload temp file is ``fsync``\\ ed
  before ``os.replace`` publishes it and the containing directory is
  ``fsync``\\ ed after, so a power loss can neither publish a torn object
  nor lose a published rename (``REPRO_STORE_FSYNC=off`` trades that
  durability back for speed on throwaway trees);
* :class:`RemoteBackend` — an HTTP client for ``scripts/store_server.py``
  (``REPRO_STORE_URL``).  Single-object ``GET``/``PUT``/``HEAD`` plus
  coalesced batch endpoints (``POST /batch/get`` fetches many objects in
  one framed response, fanned out over a small thread pool), an optional
  read-through :class:`LocalBackend` cache tier
  (``REPRO_STORE_CACHE_DIR``), per-object SHA-256 verification on read,
  and a seeded-chaos-aware retry/backoff loop: every failed attempt is
  counted per-cause in ``store.remote_errors.<cause>`` and retried with
  exponential backoff; exhausting the budget raises
  :class:`RemoteStoreError` — a remote failure is never silently
  downgraded to a miss (the same "never swallow" rule the quarantine
  path follows).

Backends are deliberately *dumb about payloads*: they move bytes, verify
transport integrity, and report what happened.  Envelope validation,
corruption quarantine and rebuild policy stay in ``ArtifactStore`` so the
local and remote paths share one semantic implementation.
"""

from __future__ import annotations

import hashlib
import http.client
import json
import os
import socket
import time
import urllib.error
import urllib.parse
import urllib.request
from concurrent.futures import ThreadPoolExecutor
from typing import Dict, List, Optional, Sequence, Tuple

from ..faults import active_injector
from ..obs import metrics as obs_metrics
from ..obs import tracing as obs_tracing

#: A backend-level object address: ``(kind, digest)``.
ObjectRef = Tuple[str, str]

#: Subdirectory holding the content-addressed object files.
OBJECTS_DIR = "objects"

#: Subdirectory corrupt objects are moved into (with a reason record).
QUARANTINE_DIR = "quarantine"

#: Response/request header carrying the SHA-256 of the object bytes —
#: transport integrity, independent of the (key-derived) content address.
CHECKSUM_HEADER = "X-Repro-Sha256"

#: Request header marking a last-writer-wins put.
OVERWRITE_HEADER = "X-Repro-Overwrite"


def _fsync_enabled(environ=os.environ) -> bool:
    return environ.get("REPRO_STORE_FSYNC", "").strip().lower() not in (
        "0", "off", "no", "false")


def fsync_directory(path: str) -> None:
    """Best-effort directory fsync — makes a completed rename durable."""
    try:
        fd = os.open(path, os.O_RDONLY)
    except OSError:
        return
    try:
        os.fsync(fd)
    except OSError:
        pass
    finally:
        os.close(fd)


class RemoteStoreError(ConnectionError):
    """A remote-store request that failed for good (retry budget spent,
    or a non-retryable client error).  Subclasses :class:`ConnectionError`
    so the executor's attach-failure degradation (``except OSError``)
    catches it, while the store read path re-raises it *before* its
    corrupt-read handling — a dead server must never read as a miss."""

    def __init__(self, message: str, cause: str = "error"):
        super().__init__(message)
        self.cause = cause


class _ChecksumMismatch(Exception):
    """Transport-integrity failure on a fetched object (retryable)."""


#: One failed attempt of these classes is retried with backoff; anything
#: else is a client-side bug and propagates immediately.
RETRYABLE_ERRORS = (urllib.error.URLError, ConnectionError, TimeoutError,
                    http.client.HTTPException, socket.timeout,
                    _ChecksumMismatch)


def _env_float(name: str, default: float) -> float:
    raw = os.environ.get(name, "").strip()
    if not raw:
        return default
    try:
        value = float(raw)
    except ValueError:
        raise ValueError(f"{name} must be a number, got {raw!r}")
    if value <= 0:
        raise ValueError(f"{name} must be positive, got {raw!r}")
    return value


def _env_int(name: str, default: int, minimum: int = 0) -> int:
    raw = os.environ.get(name, "").strip()
    if not raw:
        return default
    try:
        value = int(raw)
    except ValueError:
        raise ValueError(f"{name} must be an integer, got {raw!r}")
    if value < minimum:
        raise ValueError(f"{name} must be >= {minimum}, got {raw!r}")
    return value


class StoreBackend:
    """The byte-level store interface.

    ``get``/``put``/``contains`` move single serialized envelopes;
    ``get_many``/``put_many``/``contains_many`` are the batched forms a
    network backend coalesces (the local backend just loops).
    ``persistent`` distinguishes a real backend from the pure in-memory
    LRU; ``batched`` marks backends whose ``*_many`` calls are cheaper
    than N singles (the store only prefetches through those).
    """

    name = "abstract"
    persistent = True
    batched = False

    def __init__(self) -> None:
        self.metrics: obs_metrics.MetricsRegistry = obs_metrics.REGISTRY

    def bind_metrics(self, registry: obs_metrics.MetricsRegistry) -> None:
        """Attach this backend's counters to a store's instance registry."""
        self.metrics = registry

    # -- single-object protocol --------------------------------------------------

    def describe(self) -> str:
        raise NotImplementedError

    def manifest(self) -> Dict[str, object]:
        """The tree's schema stamps (``store_schema``/``key_schema``/...)."""
        raise NotImplementedError

    def get(self, kind: str, digest: str) -> Optional[bytes]:
        """The object's bytes, or ``None`` when it does not exist."""
        raise NotImplementedError

    def put(self, kind: str, digest: str, data: bytes,
            overwrite: bool = False) -> bool:
        """Store the bytes; ``True`` if written, ``False`` if an existing
        object was kept (first-writer-kept)."""
        raise NotImplementedError

    def contains(self, kind: str, digest: str) -> bool:
        raise NotImplementedError

    def delete(self, kind: str, digest: str) -> bool:
        """Remove the object (GC sweep); ``True`` if something was removed."""
        raise NotImplementedError

    def quarantine(self, kind: str, digest: str,
                   record: Dict[str, object]) -> bool:
        """Move a corrupt object aside with ``record`` as the reason.
        Best-effort; ``True`` only when the object was actually moved."""
        raise NotImplementedError

    def list_refs(self, kind: Optional[str] = None) -> List[ObjectRef]:
        """Every stored ``(kind, digest)`` (of one kind, if given)."""
        raise NotImplementedError

    # -- batched protocol (default: loop over the single-object calls) -----------

    def get_many(self, refs: Sequence[ObjectRef]) -> Dict[ObjectRef, bytes]:
        found: Dict[ObjectRef, bytes] = {}
        for kind, digest in refs:
            data = self.get(kind, digest)
            if data is not None:
                found[(kind, digest)] = data
        return found

    def put_many(self, items: Sequence[Tuple[str, str, bytes]],
                 overwrite: bool = False) -> int:
        written = 0
        for kind, digest, data in items:
            if self.put(kind, digest, data, overwrite=overwrite):
                written += 1
        return written

    def contains_many(self, refs: Sequence[ObjectRef]) -> Dict[ObjectRef, bool]:
        return {(kind, digest): self.contains(kind, digest)
                for kind, digest in refs}


class LocalBackend(StoreBackend):
    """The on-disk object tree, with crash-durable atomic writes."""

    name = "local"
    batched = False

    def __init__(self, root: str, durable: Optional[bool] = None):
        super().__init__()
        self.root = os.path.abspath(root)
        #: ``None`` re-reads ``REPRO_STORE_FSYNC`` per write (workers may
        #: mutate their environment); a bool pins it (tests, cache tiers).
        self._durable = durable

    def describe(self) -> str:
        return f"local:{self.root}"

    def ensure_tree(self) -> None:
        os.makedirs(os.path.join(self.root, OBJECTS_DIR), exist_ok=True)

    def durable(self) -> bool:
        return self._durable if self._durable is not None else _fsync_enabled()

    # -- paths -------------------------------------------------------------------

    def object_path(self, kind: str, digest: str) -> str:
        return os.path.join(self.root, OBJECTS_DIR, kind, digest[:2],
                            f"{digest}.pkl")

    def quarantine_path(self, kind: str, digest: str) -> str:
        return os.path.join(self.root, QUARANTINE_DIR, kind, f"{digest}.pkl")

    # -- protocol ----------------------------------------------------------------

    def manifest(self) -> Dict[str, object]:
        from .generation_log import GenerationLog
        log = GenerationLog.load(self.root)
        if log is None:
            return {}
        return {"store_schema": log.store_schema,
                "key_schema": log.key_schema,
                "generation": log.generation}

    def get(self, kind: str, digest: str) -> Optional[bytes]:
        try:
            with open(self.object_path(kind, digest), "rb") as fh:
                return fh.read()
        except FileNotFoundError:
            return None

    def put(self, kind: str, digest: str, data: bytes,
            overwrite: bool = False) -> bool:
        path = self.object_path(kind, digest)
        if not overwrite and os.path.exists(path):
            return False  # first-writer-kept
        parent = os.path.dirname(path)
        os.makedirs(parent, exist_ok=True)
        tmp_path = f"{path}.tmp.{os.getpid()}"
        durable = self.durable()
        try:
            with open(tmp_path, "wb") as fh:
                fh.write(data)
                if durable:
                    # make the payload durable *before* the rename publishes
                    # it — otherwise a power loss can keep the rename (in the
                    # journaled directory) while dropping the data, i.e. a
                    # torn object that only surfaces later as a quarantine
                    fh.flush()
                    os.fsync(fh.fileno())
            os.replace(tmp_path, path)
        except OSError:
            try:
                os.unlink(tmp_path)
            except OSError:
                pass
            raise
        if durable:
            fsync_directory(parent)
        return True

    def contains(self, kind: str, digest: str) -> bool:
        return os.path.exists(self.object_path(kind, digest))

    def delete(self, kind: str, digest: str) -> bool:
        path = self.object_path(kind, digest)
        try:
            os.unlink(path)
        except FileNotFoundError:
            return False
        if self.durable():
            fsync_directory(os.path.dirname(path))
        return True

    def quarantine(self, kind: str, digest: str,
                   record: Dict[str, object]) -> bool:
        path = self.object_path(kind, digest)
        destination = self.quarantine_path(kind, digest)
        durable = self.durable()
        try:
            os.makedirs(os.path.dirname(destination), exist_ok=True)
            os.replace(path, destination)
            tmp = f"{destination}.reason.tmp.{os.getpid()}"
            with open(tmp, "w", encoding="utf-8") as fh:
                json.dump(record, fh, sort_keys=True)
                if durable:
                    # the reason record is the evidence trail for the damage;
                    # persist it as carefully as the object it explains
                    fh.flush()
                    os.fsync(fh.fileno())
            os.replace(tmp, f"{destination[:-len('.pkl')]}.reason.json")
        except OSError:
            return False
        if durable:
            fsync_directory(os.path.dirname(destination))
            fsync_directory(os.path.dirname(path))
        return True

    def list_refs(self, kind: Optional[str] = None) -> List[ObjectRef]:
        refs: List[ObjectRef] = []
        objects = os.path.join(self.root, OBJECTS_DIR)
        try:
            kinds = [kind] if kind is not None else sorted(os.listdir(objects))
        except OSError:
            return refs
        for one_kind in kinds:
            kind_dir = os.path.join(objects, one_kind)
            if not os.path.isdir(kind_dir):
                continue
            for shard in sorted(os.listdir(kind_dir)):
                shard_dir = os.path.join(kind_dir, shard)
                if not os.path.isdir(shard_dir):
                    continue
                for name in sorted(os.listdir(shard_dir)):
                    if name.endswith(".pkl"):
                        refs.append((one_kind, name[:-len(".pkl")]))
        return refs


class RemoteBackend(StoreBackend):
    """HTTP client for a ``scripts/store_server.py`` tree.

    Knobs (all env-overridable): ``REPRO_REMOTE_TIMEOUT`` (seconds per
    request, default 10), ``REPRO_REMOTE_RETRIES`` (extra attempts after
    the first, default 3), ``REPRO_REMOTE_BACKOFF`` (base sleep, doubled
    per retry, default 0.05s), ``REPRO_REMOTE_BATCH`` (objects per batch
    request, default 64), ``REPRO_REMOTE_PARALLEL`` (concurrent batch
    requests, default 4).
    """

    name = "remote"
    batched = True

    def __init__(self, url: str, cache_dir: Optional[str] = None,
                 timeout: Optional[float] = None,
                 retries: Optional[int] = None,
                 backoff: Optional[float] = None,
                 batch_size: Optional[int] = None,
                 parallel: Optional[int] = None):
        super().__init__()
        parsed = urllib.parse.urlsplit(url)
        if parsed.scheme not in ("http", "https") or not parsed.netloc:
            raise ValueError(f"REPRO_STORE_URL must be an http(s) URL, "
                             f"got {url!r}")
        self.url = url.rstrip("/")
        self.timeout = (timeout if timeout is not None
                        else _env_float("REPRO_REMOTE_TIMEOUT", 10.0))
        self.retries = (retries if retries is not None
                        else _env_int("REPRO_REMOTE_RETRIES", 3))
        self.backoff = (backoff if backoff is not None
                        else _env_float("REPRO_REMOTE_BACKOFF", 0.05))
        self.batch_size = (batch_size if batch_size is not None
                           else _env_int("REPRO_REMOTE_BATCH", 64, minimum=1))
        self.parallel = (parallel if parallel is not None
                         else _env_int("REPRO_REMOTE_PARALLEL", 4, minimum=1))
        #: Read-through cache tier: fetched objects land here so the next
        #: process (or the next run) on this host skips the network.  The
        #: cache holds verified bytes only and is itself content-addressed,
        #: so sharing it between attached stores is safe.
        self.cache: Optional[LocalBackend] = None
        if cache_dir:
            self.cache = LocalBackend(cache_dir)
            self.cache.ensure_tree()

    def describe(self) -> str:
        if self.cache is not None:
            return f"remote:{self.url} (cache {self.cache.root})"
        return f"remote:{self.url}"

    # -- request plumbing --------------------------------------------------------

    def _count(self, name: str, value: int = 1) -> None:
        self.metrics.counter(name, value)

    def _with_retries(self, token: str, attempt_fn):
        """Run one request attempt function under the retry/backoff loop.

        ``attempt_fn`` performs a full attempt (request + response
        validation) and may raise any :data:`RETRYABLE_ERRORS` member;
        each failed attempt is counted per-cause, and the seeded
        ``remote_fault`` injector fires *before* the attempt so chaos
        tests exercise exactly this loop.
        """
        last_error: Optional[BaseException] = None
        for attempt in range(self.retries + 1):
            try:
                injector = active_injector()
                if injector is not None:
                    injector.maybe_remote_fault(token, attempt)
                self._count("store.remote.requests")
                return attempt_fn()
            except RemoteStoreError:
                raise  # already classified as non-retryable
            except RETRYABLE_ERRORS as error:
                cause = type(error).__name__
                if isinstance(error, urllib.error.HTTPError):
                    cause = f"http_{error.code}"
                self._count(f"store.remote_errors.{cause}")
                obs_tracing.event("store.remote.error", cat="store.remote",
                                  token=token, cause=cause, attempt=attempt)
                last_error = error
                if attempt < self.retries:
                    self._count("store.remote.retries")
                    time.sleep(self.backoff * (2 ** attempt))
        cause = type(last_error).__name__ if last_error else "error"
        raise RemoteStoreError(
            f"remote store request {token!r} failed after "
            f"{self.retries + 1} attempts: {last_error}", cause=cause)

    def _open(self, method: str, path: str, body: Optional[bytes] = None,
              headers: Optional[Dict[str, str]] = None):
        request = urllib.request.Request(self.url + path, data=body,
                                         method=method,
                                         headers=dict(headers or {}))
        return urllib.request.urlopen(request, timeout=self.timeout)

    def _request(self, method: str, path: str, body: Optional[bytes] = None,
                 headers: Optional[Dict[str, str]] = None,
                 ok_missing: bool = False):
        """One retried request; returns ``(status, headers, bytes)``.

        404 returns ``(404, ..., b"")`` when ``ok_missing`` (a miss is an
        answer, not an error); other 4xx raise :class:`RemoteStoreError`
        immediately (a client bug will not improve with retries); 5xx and
        transport errors go through the retry loop.
        """
        token = f"{method}:{path}"

        def attempt():
            try:
                with obs_tracing.span("store.remote.request",
                                      cat="store.remote", method=method,
                                      path=path):
                    with self._open(method, path, body, headers) as response:
                        return (response.status, dict(response.headers),
                                response.read())
            except urllib.error.HTTPError as error:
                if error.code == 404 and ok_missing:
                    return (404, dict(error.headers or {}), b"")
                if 400 <= error.code < 500:
                    raise RemoteStoreError(
                        f"remote store rejected {method} {path}: "
                        f"{error.code} {error.reason}",
                        cause=f"http_{error.code}")
                raise

        return self._with_retries(token, attempt)

    @staticmethod
    def _verify(data: bytes, expected: Optional[str], context: str) -> None:
        if expected and hashlib.sha256(data).hexdigest() != expected:
            raise _ChecksumMismatch(
                f"checksum mismatch fetching {context}")

    # -- protocol ----------------------------------------------------------------

    def manifest(self) -> Dict[str, object]:
        status, _, data = self._request("GET", "/manifest")
        payload = json.loads(data.decode("utf-8"))
        if not isinstance(payload, dict):
            raise RemoteStoreError(f"malformed manifest from {self.url}",
                                   cause="bad_manifest")
        return payload

    def get(self, kind: str, digest: str) -> Optional[bytes]:
        if self.cache is not None:
            cached = self.cache.get(kind, digest)
            if cached is not None:
                self._count("store.remote.cache_hits")
                return cached
        path = f"/objects/{kind}/{digest}"
        token = f"GET:{path}"

        def attempt():
            try:
                with obs_tracing.span("store.remote.request",
                                      cat="store.remote", method="GET",
                                      path=path):
                    with self._open("GET", path) as response:
                        data = response.read()
                        self._verify(data,
                                     response.headers.get(CHECKSUM_HEADER),
                                     f"{kind}/{digest[:12]}")
                        return data
            except urllib.error.HTTPError as error:
                if error.code == 404:
                    return None
                if 400 <= error.code < 500:
                    raise RemoteStoreError(
                        f"remote store rejected GET {path}: {error.code}",
                        cause=f"http_{error.code}")
                raise

        data = self._with_retries(token, attempt)
        if data is None:
            return None
        self._count("store.remote.objects_fetched")
        self._count("store.remote.bytes_fetched", len(data))
        self._cache_fill(kind, digest, data)
        return data

    def _cache_fill(self, kind: str, digest: str, data: bytes) -> None:
        if self.cache is None:
            return
        try:
            self.cache.put(kind, digest, data)
        except OSError:
            pass  # the cache tier is an optimisation, never a failure

    def put(self, kind: str, digest: str, data: bytes,
            overwrite: bool = False) -> bool:
        headers = {CHECKSUM_HEADER: hashlib.sha256(data).hexdigest(),
                   "Content-Type": "application/octet-stream"}
        if overwrite:
            headers[OVERWRITE_HEADER] = "1"
        status, _, _ = self._request("PUT", f"/objects/{kind}/{digest}",
                                     body=data, headers=headers)
        self._count("store.remote.puts")
        self._cache_fill(kind, digest, data)
        return status == 201  # 200 = existing object kept

    def contains(self, kind: str, digest: str) -> bool:
        if self.cache is not None and self.cache.contains(kind, digest):
            return True
        status, _, _ = self._request("HEAD", f"/objects/{kind}/{digest}",
                                     ok_missing=True)
        return status == 200

    def delete(self, kind: str, digest: str) -> bool:
        status, _, _ = self._request("DELETE", f"/objects/{kind}/{digest}",
                                     ok_missing=True)
        if self.cache is not None:
            self.cache.delete(kind, digest)
        return status == 200

    def quarantine(self, kind: str, digest: str,
                   record: Dict[str, object]) -> bool:
        """Ask the server to move the object aside (mirrors the local
        semantics, so a post-quarantine rebuild publishes into a clean
        slot server-side too) and drop any cached copy.  Best-effort:
        failures are already counted per-cause by the retry loop."""
        if self.cache is not None:
            self.cache.delete(kind, digest)
        body = json.dumps(record, sort_keys=True).encode("utf-8")
        try:
            status, _, _ = self._request(
                "POST", f"/quarantine/{kind}/{digest}", body=body,
                headers={"Content-Type": "application/json"},
                ok_missing=True)
        except RemoteStoreError:
            return False
        return status == 200

    def list_refs(self, kind: Optional[str] = None) -> List[ObjectRef]:
        path = "/list" if kind is None else f"/list?kind={kind}"
        _, _, data = self._request("GET", path)
        payload = json.loads(data.decode("utf-8"))
        return [(str(k), str(d)) for k, d in payload.get("refs", [])]

    # -- batched protocol --------------------------------------------------------

    def get_many(self, refs: Sequence[ObjectRef]) -> Dict[ObjectRef, bytes]:
        """Coalesced parallel fetch: cache first, then the misses in
        ``batch_size`` chunks over ``parallel`` concurrent requests."""
        found: Dict[ObjectRef, bytes] = {}
        misses: List[ObjectRef] = []
        for ref in refs:
            if self.cache is not None:
                cached = self.cache.get(*ref)
                if cached is not None:
                    self._count("store.remote.cache_hits")
                    found[ref] = cached
                    continue
            misses.append(ref)
        if not misses:
            return found
        chunks = [misses[i:i + self.batch_size]
                  for i in range(0, len(misses), self.batch_size)]
        if len(chunks) == 1:
            results = [self._batch_get(chunks[0])]
        else:
            with ThreadPoolExecutor(
                    max_workers=min(self.parallel, len(chunks))) as pool:
                results = list(pool.map(self._batch_get, chunks))
        for chunk_found in results:
            found.update(chunk_found)
        return found

    def _batch_get(self, refs: List[ObjectRef]) -> Dict[ObjectRef, bytes]:
        body = json.dumps({"items": [[kind, digest] for kind, digest
                                     in refs]}).encode("utf-8")
        token = "POST:/batch/get"

        def attempt():
            with obs_tracing.span("store.remote.batch", cat="store.remote",
                                  count=len(refs)):
                with self._open("POST", "/batch/get", body,
                                {"Content-Type": "application/json"}) \
                        as response:
                    raw = response.read()
            newline = raw.index(b"\n")
            index = json.loads(raw[:newline].decode("utf-8"))
            blobs = raw[newline + 1:]
            out: Dict[ObjectRef, bytes] = {}
            offset = 0
            position = 0
            for ref, present in zip(refs, index["found"]):
                if not present:
                    continue
                size = index["sizes"][position]
                data = blobs[offset:offset + size]
                self._verify(data, index["sha256"][position],
                             f"{ref[0]}/{ref[1][:12]}")
                out[ref] = data
                offset += size
                position += 1
            if offset != len(blobs):
                raise _ChecksumMismatch("batch framing mismatch")
            return out

        self._count("store.remote.batch_requests")
        out = self._with_retries(token, attempt)
        self._count("store.remote.objects_fetched", len(out))
        self._count("store.remote.bytes_fetched",
                    sum(len(data) for data in out.values()))
        for (kind, digest), data in out.items():
            self._cache_fill(kind, digest, data)
        return out

    def put_many(self, items: Sequence[Tuple[str, str, bytes]],
                 overwrite: bool = False) -> int:
        written = 0
        chunks = [list(items[i:i + self.batch_size])
                  for i in range(0, len(items), self.batch_size)]
        for chunk in chunks:
            written += self._batch_put(chunk, overwrite)
        return written

    def _batch_put(self, items: List[Tuple[str, str, bytes]],
                   overwrite: bool) -> int:
        index = {"items": [[kind, digest, len(data),
                            hashlib.sha256(data).hexdigest()]
                           for kind, digest, data in items],
                 "overwrite": bool(overwrite)}
        body = (json.dumps(index, sort_keys=True).encode("utf-8") + b"\n"
                + b"".join(data for _, _, data in items))
        self._count("store.remote.batch_requests")
        _, _, response = self._request(
            "POST", "/batch/put", body=body,
            headers={"Content-Type": "application/octet-stream"})
        payload = json.loads(response.decode("utf-8"))
        for (kind, digest, data) in items:
            self._cache_fill(kind, digest, data)
        self._count("store.remote.puts", len(items))
        return sum(1 for flag in payload.get("written", []) if flag)

    def contains_many(self, refs: Sequence[ObjectRef]) -> Dict[ObjectRef, bool]:
        out: Dict[ObjectRef, bool] = {}
        remote: List[ObjectRef] = []
        for ref in refs:
            if self.cache is not None and self.cache.contains(*ref):
                out[ref] = True
            else:
                remote.append(ref)
        for i in range(0, len(remote), self.batch_size):
            chunk = remote[i:i + self.batch_size]
            body = json.dumps({"items": [[k, d] for k, d in chunk]}
                              ).encode("utf-8")
            self._count("store.remote.batch_requests")
            _, _, data = self._request(
                "POST", "/batch/head", body=body,
                headers={"Content-Type": "application/json"})
            payload = json.loads(data.decode("utf-8"))
            for ref, present in zip(chunk, payload.get("found", [])):
                out[ref] = bool(present)
        return out

    # -- run journals ------------------------------------------------------------
    # The checkpoint layer's run journals must live next to the objects they
    # reference (GC marks journal-reachable objects live), so a remote store
    # also hosts the journals.

    def fetch_run_journal(self, identity: str) -> str:
        status, _, data = self._request("GET", f"/runs/{identity}",
                                        ok_missing=True)
        if status == 404:
            return ""
        return data.decode("utf-8")

    def append_run_journal(self, identity: str, text: str) -> None:
        self._request("POST", f"/runs/{identity}",
                      body=text.encode("utf-8"),
                      headers={"Content-Type": "text/plain"})
