"""Content-addressed artifact store shared by every experiment process.

The evaluation pipeline's artifacts — built variants
(:class:`~repro.toolchain.BuildArtifact`), lowered
:class:`~repro.backend.binary.Binary` objects, memoised
:class:`~repro.diffing.index.FeatureIndex` payloads — are pure functions of
their configuration: workload synthesis is profile-seeded, every obfuscator
advertises a seeded ``cache_key()``, and the optimizer is deterministic.
:class:`ArtifactStore` exploits that purity to compute each artifact once
per *machine* rather than once per process:

* keys are the frozen tuples of :func:`~repro.core.variant_cache.variant_key`
  (workload profile × obfuscator ``cache_key()`` × ``OptOptions``), hashed
  into a stable content address (:func:`store_digest`) under a *kind*
  namespace (``"variant"``, ``"binary"``, ``"features"``);
* an in-process LRU layer serves repeated lookups without touching disk;
* the on-disk tree (``objects/<kind>/<aa>/<digest>.pkl``) is written with a
  single-writer atomic protocol — temp file + ``os.replace`` — so any number
  of concurrent executor workers can attach to one tree: a reader never sees
  a half-written object, racing writers of one deterministic artifact simply
  last-write an identical file, and a writer never clobbers an object that
  already exists (first-writer-kept at the API level);
* a :class:`~repro.store.generation_log.GenerationLog` manifest at the root
  stamps the schema versions and ledgers the written digests, so a warm tree
  is validated with one JSON read instead of an object scan.

``root=None`` degrades to a pure in-memory LRU — exactly the pre-store
:class:`~repro.core.variant_cache.VariantCache` behaviour, which is now a
façade over this class.
"""

from __future__ import annotations

import enum
import hashlib
import json
import os
import pickle
import time
from collections import OrderedDict
from typing import Callable, Dict, List, Optional, Tuple, TypeVar

from ..faults import active_injector
from ..obs import metrics as obs_metrics
from ..obs import tracing as obs_tracing
from .backend import (OBJECTS_DIR, QUARANTINE_DIR, LocalBackend,
                      RemoteBackend, RemoteStoreError, StoreBackend)
from .generation_log import GenerationLog
from .keys import KEY_SCHEMA as _KEY_SCHEMA

T = TypeVar("T")

#: Bump when the object file layout or payload envelope changes incompatibly.
#: 2: the ``diff`` kind landed (persisted per-function partial diff results).
#: (The ``shard`` kind and the quarantine subtree are backward-compatible
#: additions — old trees stay attachable, so no bump.)
#: Attaching refuses a tree stamped with an older schema (StoreError; the
#: executor then degrades to storeless builds) — delete or repoint
#: ``REPRO_STORE_DIR`` to get a fresh tree; artifacts are deterministic, so
#: repopulating it only costs time.
STORE_SCHEMA = 2

#: The artifact kinds the evaluation pipeline persists.
KIND_VARIANT = "variant"
KIND_BINARY = "binary"
KIND_FEATURES = "features"
KIND_DIFF = "diff"
#: Completed shard-unit results journaled by the checkpoint layer (PR 8):
#: a resumed matrix run loads these instead of re-executing the shard.
KIND_SHARD = "shard"

#: The concrete exception classes a damaged object file can raise on read:
#: I/O failures, torn/truncated pickles, and unpickling payloads whose
#: classes moved or changed shape between pipeline versions.  Anything
#: outside this tuple is a bug and propagates.
CORRUPT_READ_ERRORS = (OSError, pickle.UnpicklingError, EOFError,
                       ValueError, TypeError, AttributeError, ImportError,
                       IndexError, KeyError)


def canonical_key(key: object) -> str:
    """A stable textual form of a frozen cache key.

    Keys are built by :func:`~repro.store.keys._freeze`, so they normally
    only contain ``None``, booleans, numbers, strings, bytes and nested
    tuples — all of which ``repr`` deterministically across processes and
    sessions.  :class:`enum.Enum` members (singletons addressed by module /
    class / member name) are accepted too, so pre-store cache keys that
    embedded an enum keep working through the façade.  Anything else is
    rejected: an identity-hashed component would silently never match again
    after a round trip.
    """
    if key is None or isinstance(key, (bool, int, float, str, bytes)):
        return repr(key)
    if isinstance(key, enum.Enum):
        cls = type(key)
        return f"enum:{cls.__module__}.{cls.__qualname__}.{key.name}"
    if isinstance(key, tuple):
        return "(" + ",".join(canonical_key(item) for item in key) + ")"
    raise TypeError(
        f"store keys must be frozen value tuples, got {type(key).__name__}")


def store_digest(kind: str, key: object) -> str:
    """The content address of ``key`` inside the ``kind`` namespace."""
    text = f"{kind}\n{canonical_key(key)}"
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


def is_store_tree(root: str) -> bool:
    """Does ``root`` look like an :class:`ArtifactStore` tree?"""
    return (os.path.isdir(os.path.join(root, OBJECTS_DIR))
            or os.path.exists(GenerationLog.path_for(root)))


def store_dir_from_env(environ=os.environ) -> Optional[str]:
    """The shared store directory: ``REPRO_STORE_DIR``, with the deprecated
    ``REPRO_VARIANT_CACHE_DIR`` honoured as an alias when it already holds a
    store tree (a legacy ``variants.pkl``-only directory is not a store)."""
    explicit = environ.get("REPRO_STORE_DIR")
    if explicit:
        return explicit
    alias = environ.get("REPRO_VARIANT_CACHE_DIR")
    if alias and is_store_tree(alias):
        return alias
    return None


def store_url_from_env(environ=os.environ) -> Optional[str]:
    """The remote store server URL (``REPRO_STORE_URL``), if any."""
    url = environ.get("REPRO_STORE_URL", "").strip()
    return url or None


def store_from_env(max_memory_entries: Optional[int] = None,
                   environ=os.environ) -> Optional["ArtifactStore"]:
    """The store the environment selects, or ``None`` for storeless runs.

    ``REPRO_STORE_URL`` wins (remote backend, with
    ``REPRO_STORE_CACHE_DIR`` as its optional read-through cache tier);
    otherwise ``REPRO_STORE_DIR`` (local tree); otherwise ``None``.
    Raises :class:`StoreError` on schema mismatch and
    :class:`~repro.store.backend.RemoteStoreError` (an ``OSError``) on an
    unreachable server — callers that must degrade (the executor's worker
    attach) catch both.
    """
    url = store_url_from_env(environ)
    if url:
        return ArtifactStore.connect(
            url, max_memory_entries=max_memory_entries,
            cache_dir=environ.get("REPRO_STORE_CACHE_DIR", "").strip() or None)
    root = store_dir_from_env(environ)
    if root:
        return ArtifactStore.attach(root,
                                    max_memory_entries=max_memory_entries)
    return None


class StoreError(ValueError):
    """An on-disk tree that cannot be used (schema mismatch, damaged manifest)."""


class ArtifactStore:
    """LRU-fronted, content-addressed, multi-process-safe artifact store.

    One instance per process; any number of processes may attach to the same
    ``root``.  All lookups go memory → disk → build; every build is persisted
    before it is returned, so sibling workers observe it on their next miss.
    """

    def __init__(self, root: Optional[str] = None,
                 max_memory_entries: Optional[int] = None,
                 backend: Optional[StoreBackend] = None,
                 url: Optional[str] = None,
                 cache_dir: Optional[str] = None):
        if max_memory_entries is not None and max_memory_entries <= 0:
            raise ValueError("max_memory_entries must be positive or None")
        if sum(1 for given in (root, backend, url) if given) > 1:
            raise ValueError("give at most one of root, backend, url")
        self.root = os.path.abspath(root) if root else None
        self.max_memory_entries = max_memory_entries
        self._memory: "OrderedDict[Tuple[str, str], object]" = OrderedDict()
        #: (kind, digest) -> key, kept alongside the LRU for introspection
        self._keys: Dict[Tuple[str, str], object] = {}
        #: The store's counters live in a per-instance metrics registry
        #: chained to the process-global one: ``stats()`` and the counter
        #: properties read the instance view (resettable, one per store
        #: object — the shape the tests assert), while every increment also
        #: lands in :data:`repro.obs.metrics.REGISTRY` for telemetry.
        self.metrics = obs_metrics.MetricsRegistry(parent=obs_metrics.REGISTRY)
        self._log: Optional[GenerationLog] = None
        self._backend: Optional[StoreBackend] = None
        if url:
            backend = RemoteBackend(url, cache_dir=cache_dir)
        if backend is not None:
            self._backend = backend
            backend.bind_metrics(self.metrics)
            if isinstance(backend, LocalBackend):
                self.root = backend.root
                self._attach_tree()
            else:
                self._attach_remote()
        elif self.root is not None:
            self._backend = LocalBackend(self.root)
            self._backend.bind_metrics(self.metrics)
            self._attach_tree()

    # -- attach / validation -----------------------------------------------------

    @classmethod
    def attach(cls, root: str,
               max_memory_entries: Optional[int] = None) -> "ArtifactStore":
        """Attach to (creating if needed) the store tree at ``root``.

        Raises :class:`StoreError` when the tree was written by an
        incompatible pipeline — a stale tree must never serve artifacts.
        """
        return cls(root=root, max_memory_entries=max_memory_entries)

    @classmethod
    def connect(cls, url: str, max_memory_entries: Optional[int] = None,
                cache_dir: Optional[str] = None) -> "ArtifactStore":
        """Attach to a remote store server (``scripts/store_server.py``).

        Validates the server's schema stamps exactly like a local attach
        validates ``generation.json`` — :class:`StoreError` on mismatch,
        :class:`~repro.store.backend.RemoteStoreError` when unreachable.
        """
        return cls(url=url, max_memory_entries=max_memory_entries,
                   cache_dir=cache_dir)

    def _attach_tree(self) -> None:
        assert self.root is not None
        os.makedirs(os.path.join(self.root, OBJECTS_DIR), exist_ok=True)
        try:
            log = GenerationLog.load(self.root)
        except ValueError as error:
            raise StoreError(f"cannot attach store at {self.root!r}: {error}")
        if log is None:
            log = GenerationLog(store_schema=STORE_SCHEMA,
                                key_schema=_KEY_SCHEMA)
            log.save(self.root)
        elif (log.store_schema != STORE_SCHEMA
                or log.key_schema != _KEY_SCHEMA):
            raise StoreError(
                f"incompatible store at {self.root!r}: tree has "
                f"store_schema={log.store_schema} key_schema={log.key_schema}, "
                f"this pipeline needs {STORE_SCHEMA}/{_KEY_SCHEMA}")
        self._log = log

    def _attach_remote(self) -> None:
        assert self._backend is not None
        manifest = self._backend.manifest()
        self._remote_manifest = manifest
        if (manifest.get("store_schema") != STORE_SCHEMA
                or manifest.get("key_schema") != _KEY_SCHEMA):
            raise StoreError(
                f"incompatible remote store at {self._backend.describe()}: "
                f"server has store_schema={manifest.get('store_schema')} "
                f"key_schema={manifest.get('key_schema')}, this pipeline "
                f"needs {STORE_SCHEMA}/{_KEY_SCHEMA}")
        # the ledger lives (and is appended) server-side; self._log stays
        # None and warm_entries() reports the manifest's advertised count

    @property
    def generation_log(self) -> Optional[GenerationLog]:
        return self._log

    @property
    def backend(self) -> Optional[StoreBackend]:
        return self._backend

    @property
    def persistent(self) -> bool:
        """Does this store outlive the process (local tree or remote)?"""
        return self._backend is not None

    @property
    def url(self) -> Optional[str]:
        backend = self._backend
        return backend.url if isinstance(backend, RemoteBackend) else None

    def warm_entries(self, kind: Optional[str] = None) -> int:
        """Entries the manifest advertises — the cheap warm-start signal.

        For a remote store this is the count the server advertised at
        attach time (per-kind breakdown comes from the same snapshot)."""
        if self._log is not None:
            return self._log.count(kind)
        manifest = getattr(self, "_remote_manifest", None)
        if manifest is not None:
            entries = manifest.get("entries")
            if kind is None:
                return int(entries) if isinstance(entries, int) else 0
            kinds = manifest.get("kinds")
            if isinstance(kinds, dict):
                return int(kinds.get(kind, 0))
        return 0

    # -- paths -------------------------------------------------------------------

    def object_path(self, kind: str, digest: str) -> str:
        if not isinstance(self._backend, LocalBackend):
            raise ValueError("store has no local object paths")
        return self._backend.object_path(kind, digest)

    def quarantine_path(self, kind: str, digest: str) -> str:
        if not isinstance(self._backend, LocalBackend):
            raise ValueError("store has no local quarantine")
        return self._backend.quarantine_path(kind, digest)

    # -- the lookup protocol -----------------------------------------------------

    def get_or_build(self, kind: str, key: object,
                     builder: Callable[[], T]) -> T:
        """The artifact for ``(kind, key)``: memory, then disk, then build.

        A freshly built artifact is persisted (root permitting) before it is
        returned.  Artifacts are shared between callers and processes, so
        they must be treated as immutable.
        """
        digest = store_digest(kind, key)
        slot = (kind, digest)
        try:
            payload = self._memory[slot]
        except KeyError:
            pass
        else:
            self.metrics.counter("store.memory_hits")
            self._memory.move_to_end(slot)
            return payload  # type: ignore[return-value]
        payload = self._read_object(kind, digest, key)
        if payload is not _MISSING:
            self.metrics.counter("store.disk_hits")
            self._remember(slot, key, payload)
            return payload  # type: ignore[return-value]
        self.metrics.counter("store.misses")
        payload = builder()
        self._remember(slot, key, payload)
        self._write_object(kind, digest, key, payload)
        return payload

    def get(self, kind: str, key: object, default: object = None) -> object:
        """The stored artifact, or ``default`` — never builds."""
        digest = store_digest(kind, key)
        slot = (kind, digest)
        if slot in self._memory:
            self.metrics.counter("store.memory_hits")
            self._memory.move_to_end(slot)
            return self._memory[slot]
        payload = self._read_object(kind, digest, key)
        if payload is _MISSING:
            return default
        self.metrics.counter("store.disk_hits")
        self._remember(slot, key, payload)
        return payload

    def put(self, kind: str, key: object, payload: object,
            overwrite: bool = False) -> str:
        """Store ``payload`` under ``(kind, key)``; returns its digest.

        By default first-writer-kept: an object already on disk is left
        untouched (deterministic artifacts make both copies identical
        anyway).  ``overwrite=True`` replaces it atomically —
        last-writer-wins, used for payloads that grow over time (e.g. merged
        feature snapshots); a reader still only ever sees a complete file.
        """
        digest = store_digest(kind, key)
        self._remember((kind, digest), key, payload)
        self._write_object(kind, digest, key, payload, overwrite=overwrite)
        return digest

    def contains(self, kind: str, key: object) -> bool:
        digest = store_digest(kind, key)
        if (kind, digest) in self._memory:
            return True
        if self._backend is None:
            return False
        return self._backend.contains(kind, digest)

    def entry_count(self, kind: str) -> int:
        """Distinct artifacts of ``kind`` reachable through this store."""
        digests = {digest for (k, digest) in self._memory if k == kind}
        if self._backend is not None:
            digests.update(digest for _, digest
                           in self._backend.list_refs(kind))
        return len(digests)

    def prefetch(self, kind: str, keys: List[object]) -> int:
        """Batch-fetch objects of ``kind`` into the memory layer.

        Only meaningful on batched (remote) backends — one coalesced
        round trip instead of N; a no-op otherwise, so callers sprinkle
        it without changing local-path behaviour or counters.  Returns
        the number of objects loaded.  Prefetching is an optimisation:
        an exhausted retry budget degrades to the per-object path (which
        raises if the server is really gone) instead of failing here.
        """
        backend = self._backend
        if backend is None or not backend.batched:
            return 0
        wanted: Dict[Tuple[str, str], object] = {}
        for key in keys:
            digest = store_digest(kind, key)
            if (kind, digest) not in self._memory:
                wanted[(kind, digest)] = key
        if not wanted:
            return 0
        try:
            with obs_tracing.span("store.prefetch", cat="store.remote",
                                  kind=kind, count=len(wanted)):
                blobs = backend.get_many(list(wanted))
        except RemoteStoreError:
            return 0  # every failed attempt is already counted per-cause
        loaded = 0
        for (ref_kind, ref_digest), data in blobs.items():
            payload = self._decode_envelope(ref_kind, ref_digest,
                                            wanted[(ref_kind, ref_digest)],
                                            data)
            if payload is not _MISSING:
                self._remember((ref_kind, ref_digest),
                               wanted[(ref_kind, ref_digest)], payload)
                loaded += 1
        self.metrics.counter("store.prefetched", loaded)
        return loaded

    def keys(self, kind: str) -> List[object]:
        """The keys of ``kind`` held in the memory layer, LRU order."""
        return [self._keys[slot] for slot in self._memory if slot[0] == kind]

    def memory_items(self, kind: str) -> List[Tuple[object, object]]:
        """``(key, payload)`` pairs of the memory layer, LRU order."""
        return [(self._keys[slot], payload)
                for slot, payload in self._memory.items() if slot[0] == kind]

    def preload(self, kind: str, key: object, payload: object) -> None:
        """Seed the memory layer without touching disk or any counter.

        Used to import artifacts from the legacy single-pickle cache format:
        they become ordinary memory entries (subject to the LRU bound) but
        are not re-persisted — the legacy file stays the owner of its copy.
        """
        self._remember((kind, store_digest(kind, key)), key, payload)

    # -- memory layer ------------------------------------------------------------

    def _remember(self, slot: Tuple[str, str], key: object,
                  payload: object) -> None:
        self._memory[slot] = payload
        self._memory.move_to_end(slot)
        self._keys[slot] = key
        if (self.max_memory_entries is not None
                and len(self._memory) > self.max_memory_entries):
            evicted, _ = self._memory.popitem(last=False)
            self._keys.pop(evicted, None)

    def clear_memory(self) -> None:
        """Drop the in-process layer (disk objects are untouched)."""
        self._memory.clear()
        self._keys.clear()

    def reset_counters(self) -> None:
        """Zero this store's counter view (process-global totals survive)."""
        self.metrics.reset()

    # -- disk layer --------------------------------------------------------------

    def _read_object(self, kind: str, digest: str, key: object) -> object:
        if self._backend is None:
            return _MISSING
        try:
            with obs_tracing.span("store.read", cat="store", kind=kind):
                data = self._backend.get(kind, digest)
        except RemoteStoreError:
            # every failed attempt was counted per-cause by the backend
            # (``store.remote_errors.*``); a dead or misbehaving server is
            # an error the caller must see, never a warm tree reading cold
            raise
        except CORRUPT_READ_ERRORS as error:
            self._quarantine(kind, digest,
                             f"{type(error).__name__}: {error}",
                             cause=type(error).__name__)
            return _MISSING
        if data is None:
            return _MISSING
        self.metrics.counter("store.bytes_read", len(data))
        return self._decode_envelope(kind, digest, key, data)

    def _decode_envelope(self, kind: str, digest: str, key: object,
                         data: bytes) -> object:
        """Unpickle + validate one serialized envelope; quarantines and
        returns :data:`_MISSING` on damage (shared by read and prefetch)."""
        try:
            envelope = pickle.loads(data)
        except CORRUPT_READ_ERRORS as error:
            # a damaged object is *evidence*, not just a miss: move it to
            # quarantine/ with the cause, count it, and let the caller
            # rebuild into the now-clean slot (builds are deterministic)
            self._quarantine(kind, digest,
                             f"{type(error).__name__}: {error}",
                             cause=type(error).__name__)
            return _MISSING
        if (not isinstance(envelope, dict)
                or envelope.get("store_schema") != STORE_SCHEMA
                or envelope.get("key_schema") != _KEY_SCHEMA
                or envelope.get("kind") != kind
                or envelope.get("key") != key
                or "payload" not in envelope):
            self._quarantine(kind, digest,
                             "envelope failed schema/kind/key validation",
                             cause="envelope_mismatch")
            return _MISSING
        return envelope["payload"]

    def _quarantine(self, kind: str, digest: str, reason: str,
                    cause: str) -> None:
        """Move a corrupt object aside with a reason record.

        Best-effort: on a read-only tree (or when a racing reader already
        moved the file) the read still degrades to a miss — but the
        ``corrupt_reads`` counter always advances, so silent degradation is
        impossible either way.
        """
        self.metrics.counter(f"store.corrupt_reads.{cause}")
        obs_tracing.event("store.quarantine", cat="store", kind=kind,
                          digest=digest[:12], cause=cause)
        if self._backend is None:
            return
        record = {"kind": kind, "digest": digest, "reason": reason,
                  "cause": cause, "pid": os.getpid(),
                  "quarantined_at": time.time()}
        if self._backend.quarantine(kind, digest, record):
            self.metrics.counter("store.quarantined")

    def _write_object(self, kind: str, digest: str, key: object,
                      payload: object, overwrite: bool = False) -> None:
        if self._backend is None:
            return
        envelope = {"store_schema": STORE_SCHEMA, "key_schema": _KEY_SCHEMA,
                    "kind": kind, "key": key, "payload": payload}
        try:
            if not overwrite and self._backend.contains(kind, digest):
                return  # first-writer-kept (the backend re-checks under race)
            with obs_tracing.span("store.write", cat="store", kind=kind):
                data = pickle.dumps(envelope,
                                    protocol=pickle.HIGHEST_PROTOCOL)
                injector = active_injector()
                if injector is not None:
                    # seeded chaos (REPRO_FAULTS store_corrupt): damage the
                    # bytes on their way to disk, at most once per object
                    # per process
                    data = injector.corrupt_payload(f"{kind}:{digest}", data)
                written = self._backend.put(kind, digest, data,
                                            overwrite=overwrite)
        except (RemoteStoreError, OSError, pickle.PicklingError, TypeError,
                AttributeError) as error:
            # persistence is an optimisation; never fail the build for an
            # unwritable tree, an unreachable server or an unpicklable
            # payload — but never silently either
            self.metrics.counter(
                f"store.put_failures.{type(error).__name__}")
            return
        if not written:
            return  # a racing writer got there first; its copy is kept
        self.metrics.counter("store.puts")
        self.metrics.counter("store.bytes_written", len(data))
        if self._log is not None:
            try:
                self._log.append_entry(self.root, digest, kind,
                                       note=_key_note(key))
            except OSError:
                # the ledger is advisory; losing a line only dims the
                # warm-start signal, never the artifacts
                self._log.record(digest, kind, note=_key_note(key))

    # -- reporting ---------------------------------------------------------------
    # The counter attributes of the pre-telemetry store are now read-only
    # views over the instance metrics registry — same names, same semantics,
    # so ``store.misses``-style callers and the ``stats()`` dict shape are
    # unchanged.

    @property
    def memory_hits(self) -> int:
        return int(self.metrics.get("store.memory_hits"))

    @property
    def disk_hits(self) -> int:
        return int(self.metrics.get("store.disk_hits"))

    @property
    def misses(self) -> int:
        return int(self.metrics.get("store.misses"))

    @property
    def puts(self) -> int:
        return int(self.metrics.get("store.puts"))

    @property
    def quarantined(self) -> int:
        return int(self.metrics.get("store.quarantined"))

    @property
    def corrupt_reads(self) -> Dict[str, int]:
        """Corrupt object reads by cause — concrete exception class name
        (``"UnpicklingError"``, ``"EOFError"``, ...) or
        ``"envelope_mismatch"`` for files that unpickle but fail schema /
        kind / key validation."""
        return {cause: int(count) for cause, count
                in self.metrics.prefixed("store.corrupt_reads").items()}

    @property
    def remote_errors(self) -> Dict[str, int]:
        """Failed remote-store request attempts by cause — HTTP status
        (``"http_503"``), transport exception class
        (``"ConnectionResetError"``, ``"TimeoutError"``) or
        ``"_ChecksumMismatch"`` for transport-integrity failures.  Every
        attempt counts, including the ones a retry then recovered — a
        flaky server is visible even when the run succeeds."""
        return {cause: int(count) for cause, count
                in self.metrics.prefixed("store.remote_errors").items()}

    @property
    def hits(self) -> int:
        return self.memory_hits + self.disk_hits

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def stats(self) -> Dict[str, object]:
        return {
            "root": self.root,
            "backend": (self._backend.describe()
                        if self._backend is not None else "memory"),
            "memory_entries": len(self._memory),
            "memory_hits": self.memory_hits,
            "disk_hits": self.disk_hits,
            "misses": self.misses,
            "puts": self.puts,
            "hit_rate": round(self.hit_rate, 4),
            "corrupt_reads": dict(self.corrupt_reads),
            "quarantined": self.quarantined,
            "remote_errors": dict(self.remote_errors),
        }


class _Missing:
    __slots__ = ()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "<missing>"


_MISSING = _Missing()


def _key_note(key: object, limit: int = 120) -> str:
    """A short human-readable summary of a key for the generation log."""
    try:
        text = canonical_key(key)
    except TypeError:
        text = repr(key)
    return text if len(text) <= limit else text[:limit - 3] + "..."
