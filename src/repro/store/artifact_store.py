"""Content-addressed artifact store shared by every experiment process.

The evaluation pipeline's artifacts — built variants
(:class:`~repro.toolchain.BuildArtifact`), lowered
:class:`~repro.backend.binary.Binary` objects, memoised
:class:`~repro.diffing.index.FeatureIndex` payloads — are pure functions of
their configuration: workload synthesis is profile-seeded, every obfuscator
advertises a seeded ``cache_key()``, and the optimizer is deterministic.
:class:`ArtifactStore` exploits that purity to compute each artifact once
per *machine* rather than once per process:

* keys are the frozen tuples of :func:`~repro.core.variant_cache.variant_key`
  (workload profile × obfuscator ``cache_key()`` × ``OptOptions``), hashed
  into a stable content address (:func:`store_digest`) under a *kind*
  namespace (``"variant"``, ``"binary"``, ``"features"``);
* an in-process LRU layer serves repeated lookups without touching disk;
* the on-disk tree (``objects/<kind>/<aa>/<digest>.pkl``) is written with a
  single-writer atomic protocol — temp file + ``os.replace`` — so any number
  of concurrent executor workers can attach to one tree: a reader never sees
  a half-written object, racing writers of one deterministic artifact simply
  last-write an identical file, and a writer never clobbers an object that
  already exists (first-writer-kept at the API level);
* a :class:`~repro.store.generation_log.GenerationLog` manifest at the root
  stamps the schema versions and ledgers the written digests, so a warm tree
  is validated with one JSON read instead of an object scan.

``root=None`` degrades to a pure in-memory LRU — exactly the pre-store
:class:`~repro.core.variant_cache.VariantCache` behaviour, which is now a
façade over this class.
"""

from __future__ import annotations

import enum
import hashlib
import json
import os
import pickle
import time
from collections import OrderedDict
from typing import Callable, Dict, List, Optional, Tuple, TypeVar

from ..faults import active_injector
from ..obs import metrics as obs_metrics
from ..obs import tracing as obs_tracing
from .generation_log import GenerationLog
from .keys import KEY_SCHEMA as _KEY_SCHEMA

T = TypeVar("T")

#: Bump when the object file layout or payload envelope changes incompatibly.
#: 2: the ``diff`` kind landed (persisted per-function partial diff results).
#: (The ``shard`` kind and the quarantine subtree are backward-compatible
#: additions — old trees stay attachable, so no bump.)
#: Attaching refuses a tree stamped with an older schema (StoreError; the
#: executor then degrades to storeless builds) — delete or repoint
#: ``REPRO_STORE_DIR`` to get a fresh tree; artifacts are deterministic, so
#: repopulating it only costs time.
STORE_SCHEMA = 2

#: The artifact kinds the evaluation pipeline persists.
KIND_VARIANT = "variant"
KIND_BINARY = "binary"
KIND_FEATURES = "features"
KIND_DIFF = "diff"
#: Completed shard-unit results journaled by the checkpoint layer (PR 8):
#: a resumed matrix run loads these instead of re-executing the shard.
KIND_SHARD = "shard"

#: Subdirectory holding the content-addressed object files.
OBJECTS_DIR = "objects"

#: Subdirectory corrupt objects are moved into (with a reason record) by the
#: read path, so damage is preserved for diagnosis instead of silently
#: re-missed — and so the next lookup rebuilds into a clean slot.
QUARANTINE_DIR = "quarantine"

#: The concrete exception classes a damaged object file can raise on read:
#: I/O failures, torn/truncated pickles, and unpickling payloads whose
#: classes moved or changed shape between pipeline versions.  Anything
#: outside this tuple is a bug and propagates.
CORRUPT_READ_ERRORS = (OSError, pickle.UnpicklingError, EOFError,
                       ValueError, TypeError, AttributeError, ImportError,
                       IndexError, KeyError)


def canonical_key(key: object) -> str:
    """A stable textual form of a frozen cache key.

    Keys are built by :func:`~repro.store.keys._freeze`, so they normally
    only contain ``None``, booleans, numbers, strings, bytes and nested
    tuples — all of which ``repr`` deterministically across processes and
    sessions.  :class:`enum.Enum` members (singletons addressed by module /
    class / member name) are accepted too, so pre-store cache keys that
    embedded an enum keep working through the façade.  Anything else is
    rejected: an identity-hashed component would silently never match again
    after a round trip.
    """
    if key is None or isinstance(key, (bool, int, float, str, bytes)):
        return repr(key)
    if isinstance(key, enum.Enum):
        cls = type(key)
        return f"enum:{cls.__module__}.{cls.__qualname__}.{key.name}"
    if isinstance(key, tuple):
        return "(" + ",".join(canonical_key(item) for item in key) + ")"
    raise TypeError(
        f"store keys must be frozen value tuples, got {type(key).__name__}")


def store_digest(kind: str, key: object) -> str:
    """The content address of ``key`` inside the ``kind`` namespace."""
    text = f"{kind}\n{canonical_key(key)}"
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


def is_store_tree(root: str) -> bool:
    """Does ``root`` look like an :class:`ArtifactStore` tree?"""
    return (os.path.isdir(os.path.join(root, OBJECTS_DIR))
            or os.path.exists(GenerationLog.path_for(root)))


def store_dir_from_env(environ=os.environ) -> Optional[str]:
    """The shared store directory: ``REPRO_STORE_DIR``, with the deprecated
    ``REPRO_VARIANT_CACHE_DIR`` honoured as an alias when it already holds a
    store tree (a legacy ``variants.pkl``-only directory is not a store)."""
    explicit = environ.get("REPRO_STORE_DIR")
    if explicit:
        return explicit
    alias = environ.get("REPRO_VARIANT_CACHE_DIR")
    if alias and is_store_tree(alias):
        return alias
    return None


class StoreError(ValueError):
    """An on-disk tree that cannot be used (schema mismatch, damaged manifest)."""


class ArtifactStore:
    """LRU-fronted, content-addressed, multi-process-safe artifact store.

    One instance per process; any number of processes may attach to the same
    ``root``.  All lookups go memory → disk → build; every build is persisted
    before it is returned, so sibling workers observe it on their next miss.
    """

    def __init__(self, root: Optional[str] = None,
                 max_memory_entries: Optional[int] = None):
        if max_memory_entries is not None and max_memory_entries <= 0:
            raise ValueError("max_memory_entries must be positive or None")
        self.root = os.path.abspath(root) if root else None
        self.max_memory_entries = max_memory_entries
        self._memory: "OrderedDict[Tuple[str, str], object]" = OrderedDict()
        #: (kind, digest) -> key, kept alongside the LRU for introspection
        self._keys: Dict[Tuple[str, str], object] = {}
        #: The store's counters live in a per-instance metrics registry
        #: chained to the process-global one: ``stats()`` and the counter
        #: properties read the instance view (resettable, one per store
        #: object — the shape the tests assert), while every increment also
        #: lands in :data:`repro.obs.metrics.REGISTRY` for telemetry.
        self.metrics = obs_metrics.MetricsRegistry(parent=obs_metrics.REGISTRY)
        self._log: Optional[GenerationLog] = None
        if self.root is not None:
            self._attach_tree()

    # -- attach / validation -----------------------------------------------------

    @classmethod
    def attach(cls, root: str,
               max_memory_entries: Optional[int] = None) -> "ArtifactStore":
        """Attach to (creating if needed) the store tree at ``root``.

        Raises :class:`StoreError` when the tree was written by an
        incompatible pipeline — a stale tree must never serve artifacts.
        """
        return cls(root=root, max_memory_entries=max_memory_entries)

    def _attach_tree(self) -> None:
        assert self.root is not None
        os.makedirs(os.path.join(self.root, OBJECTS_DIR), exist_ok=True)
        try:
            log = GenerationLog.load(self.root)
        except ValueError as error:
            raise StoreError(f"cannot attach store at {self.root!r}: {error}")
        if log is None:
            log = GenerationLog(store_schema=STORE_SCHEMA,
                                key_schema=_KEY_SCHEMA)
            log.save(self.root)
        elif (log.store_schema != STORE_SCHEMA
                or log.key_schema != _KEY_SCHEMA):
            raise StoreError(
                f"incompatible store at {self.root!r}: tree has "
                f"store_schema={log.store_schema} key_schema={log.key_schema}, "
                f"this pipeline needs {STORE_SCHEMA}/{_KEY_SCHEMA}")
        self._log = log

    @property
    def generation_log(self) -> Optional[GenerationLog]:
        return self._log

    def warm_entries(self, kind: Optional[str] = None) -> int:
        """Entries the manifest advertises — the cheap warm-start signal."""
        return self._log.count(kind) if self._log is not None else 0

    # -- paths -------------------------------------------------------------------

    def object_path(self, kind: str, digest: str) -> str:
        if self.root is None:
            raise ValueError("in-memory store has no object paths")
        return os.path.join(self.root, OBJECTS_DIR, kind, digest[:2],
                            f"{digest}.pkl")

    def quarantine_path(self, kind: str, digest: str) -> str:
        if self.root is None:
            raise ValueError("in-memory store has no quarantine")
        return os.path.join(self.root, QUARANTINE_DIR, kind,
                            f"{digest}.pkl")

    # -- the lookup protocol -----------------------------------------------------

    def get_or_build(self, kind: str, key: object,
                     builder: Callable[[], T]) -> T:
        """The artifact for ``(kind, key)``: memory, then disk, then build.

        A freshly built artifact is persisted (root permitting) before it is
        returned.  Artifacts are shared between callers and processes, so
        they must be treated as immutable.
        """
        digest = store_digest(kind, key)
        slot = (kind, digest)
        try:
            payload = self._memory[slot]
        except KeyError:
            pass
        else:
            self.metrics.counter("store.memory_hits")
            self._memory.move_to_end(slot)
            return payload  # type: ignore[return-value]
        payload = self._read_object(kind, digest, key)
        if payload is not _MISSING:
            self.metrics.counter("store.disk_hits")
            self._remember(slot, key, payload)
            return payload  # type: ignore[return-value]
        self.metrics.counter("store.misses")
        payload = builder()
        self._remember(slot, key, payload)
        self._write_object(kind, digest, key, payload)
        return payload

    def get(self, kind: str, key: object, default: object = None) -> object:
        """The stored artifact, or ``default`` — never builds."""
        digest = store_digest(kind, key)
        slot = (kind, digest)
        if slot in self._memory:
            self.metrics.counter("store.memory_hits")
            self._memory.move_to_end(slot)
            return self._memory[slot]
        payload = self._read_object(kind, digest, key)
        if payload is _MISSING:
            return default
        self.metrics.counter("store.disk_hits")
        self._remember(slot, key, payload)
        return payload

    def put(self, kind: str, key: object, payload: object,
            overwrite: bool = False) -> str:
        """Store ``payload`` under ``(kind, key)``; returns its digest.

        By default first-writer-kept: an object already on disk is left
        untouched (deterministic artifacts make both copies identical
        anyway).  ``overwrite=True`` replaces it atomically —
        last-writer-wins, used for payloads that grow over time (e.g. merged
        feature snapshots); a reader still only ever sees a complete file.
        """
        digest = store_digest(kind, key)
        self._remember((kind, digest), key, payload)
        self._write_object(kind, digest, key, payload, overwrite=overwrite)
        return digest

    def contains(self, kind: str, key: object) -> bool:
        digest = store_digest(kind, key)
        if (kind, digest) in self._memory:
            return True
        if self.root is None:
            return False
        return os.path.exists(self.object_path(kind, digest))

    def entry_count(self, kind: str) -> int:
        """Distinct artifacts of ``kind`` reachable through this store."""
        digests = {digest for (k, digest) in self._memory if k == kind}
        if self.root is not None:
            kind_dir = os.path.join(self.root, OBJECTS_DIR, kind)
            if os.path.isdir(kind_dir):
                for shard in os.listdir(kind_dir):
                    shard_dir = os.path.join(kind_dir, shard)
                    if not os.path.isdir(shard_dir):
                        continue
                    for name in os.listdir(shard_dir):
                        if name.endswith(".pkl"):
                            digests.add(name[:-len(".pkl")])
        return len(digests)

    def keys(self, kind: str) -> List[object]:
        """The keys of ``kind`` held in the memory layer, LRU order."""
        return [self._keys[slot] for slot in self._memory if slot[0] == kind]

    def memory_items(self, kind: str) -> List[Tuple[object, object]]:
        """``(key, payload)`` pairs of the memory layer, LRU order."""
        return [(self._keys[slot], payload)
                for slot, payload in self._memory.items() if slot[0] == kind]

    def preload(self, kind: str, key: object, payload: object) -> None:
        """Seed the memory layer without touching disk or any counter.

        Used to import artifacts from the legacy single-pickle cache format:
        they become ordinary memory entries (subject to the LRU bound) but
        are not re-persisted — the legacy file stays the owner of its copy.
        """
        self._remember((kind, store_digest(kind, key)), key, payload)

    # -- memory layer ------------------------------------------------------------

    def _remember(self, slot: Tuple[str, str], key: object,
                  payload: object) -> None:
        self._memory[slot] = payload
        self._memory.move_to_end(slot)
        self._keys[slot] = key
        if (self.max_memory_entries is not None
                and len(self._memory) > self.max_memory_entries):
            evicted, _ = self._memory.popitem(last=False)
            self._keys.pop(evicted, None)

    def clear_memory(self) -> None:
        """Drop the in-process layer (disk objects are untouched)."""
        self._memory.clear()
        self._keys.clear()

    def reset_counters(self) -> None:
        """Zero this store's counter view (process-global totals survive)."""
        self.metrics.reset()

    # -- disk layer --------------------------------------------------------------

    def _read_object(self, kind: str, digest: str, key: object) -> object:
        if self.root is None:
            return _MISSING
        path = self.object_path(kind, digest)
        try:
            with obs_tracing.span("store.read", cat="store", kind=kind):
                with open(path, "rb") as fh:
                    size = os.fstat(fh.fileno()).st_size
                    envelope = pickle.load(fh)
                self.metrics.counter("store.bytes_read", size)
        except FileNotFoundError:
            return _MISSING
        except CORRUPT_READ_ERRORS as error:
            # a damaged object is *evidence*, not just a miss: move it to
            # quarantine/ with the cause, count it, and let the caller
            # rebuild into the now-clean slot (builds are deterministic)
            self._quarantine(kind, digest, path,
                             f"{type(error).__name__}: {error}",
                             cause=type(error).__name__)
            return _MISSING
        if (not isinstance(envelope, dict)
                or envelope.get("store_schema") != STORE_SCHEMA
                or envelope.get("key_schema") != _KEY_SCHEMA
                or envelope.get("kind") != kind
                or envelope.get("key") != key
                or "payload" not in envelope):
            self._quarantine(kind, digest, path,
                             "envelope failed schema/kind/key validation",
                             cause="envelope_mismatch")
            return _MISSING
        return envelope["payload"]

    def _quarantine(self, kind: str, digest: str, path: str, reason: str,
                    cause: str) -> None:
        """Move a corrupt object aside with a reason record.

        Best-effort: on a read-only tree (or when a racing reader already
        moved the file) the read still degrades to a miss — but the
        ``corrupt_reads`` counter always advances, so silent degradation is
        impossible either way.
        """
        self.metrics.counter(f"store.corrupt_reads.{cause}")
        obs_tracing.event("store.quarantine", cat="store", kind=kind,
                          digest=digest[:12], cause=cause)
        if self.root is None:
            return
        destination = self.quarantine_path(kind, digest)
        record = {"kind": kind, "digest": digest, "reason": reason,
                  "cause": cause, "pid": os.getpid(),
                  "quarantined_at": time.time()}
        try:
            os.makedirs(os.path.dirname(destination), exist_ok=True)
            os.replace(path, destination)
            tmp = f"{destination}.reason.tmp.{os.getpid()}"
            with open(tmp, "w", encoding="utf-8") as fh:
                json.dump(record, fh, sort_keys=True)
            os.replace(tmp, f"{destination[:-len('.pkl')]}.reason.json")
        except OSError:
            return
        self.metrics.counter("store.quarantined")

    def _write_object(self, kind: str, digest: str, key: object,
                      payload: object, overwrite: bool = False) -> None:
        if self.root is None:
            return
        path = self.object_path(kind, digest)
        if not overwrite and os.path.exists(path):
            return  # first-writer-kept
        envelope = {"store_schema": STORE_SCHEMA, "key_schema": _KEY_SCHEMA,
                    "kind": kind, "key": key, "payload": payload}
        os.makedirs(os.path.dirname(path), exist_ok=True)
        tmp_path = f"{path}.tmp.{os.getpid()}"
        try:
            with obs_tracing.span("store.write", cat="store", kind=kind):
                data = pickle.dumps(envelope,
                                    protocol=pickle.HIGHEST_PROTOCOL)
                injector = active_injector()
                if injector is not None:
                    # seeded chaos (REPRO_FAULTS store_corrupt): damage the
                    # bytes on their way to disk, at most once per object
                    # per process
                    data = injector.corrupt_payload(f"{kind}:{digest}", data)
                with open(tmp_path, "wb") as fh:
                    fh.write(data)
                os.replace(tmp_path, path)
        except (OSError, pickle.PicklingError, TypeError,
                AttributeError):
            # persistence is an optimisation; never fail the build for an
            # unwritable tree or an unpicklable payload
            try:
                os.unlink(tmp_path)
            except OSError:
                pass
            return
        self.metrics.counter("store.puts")
        self.metrics.counter("store.bytes_written", len(data))
        if self._log is not None:
            try:
                self._log.append_entry(self.root, digest, kind,
                                       note=_key_note(key))
            except OSError:
                # the ledger is advisory; losing a line only dims the
                # warm-start signal, never the artifacts
                self._log.record(digest, kind, note=_key_note(key))

    # -- reporting ---------------------------------------------------------------
    # The counter attributes of the pre-telemetry store are now read-only
    # views over the instance metrics registry — same names, same semantics,
    # so ``store.misses``-style callers and the ``stats()`` dict shape are
    # unchanged.

    @property
    def memory_hits(self) -> int:
        return int(self.metrics.get("store.memory_hits"))

    @property
    def disk_hits(self) -> int:
        return int(self.metrics.get("store.disk_hits"))

    @property
    def misses(self) -> int:
        return int(self.metrics.get("store.misses"))

    @property
    def puts(self) -> int:
        return int(self.metrics.get("store.puts"))

    @property
    def quarantined(self) -> int:
        return int(self.metrics.get("store.quarantined"))

    @property
    def corrupt_reads(self) -> Dict[str, int]:
        """Corrupt object reads by cause — concrete exception class name
        (``"UnpicklingError"``, ``"EOFError"``, ...) or
        ``"envelope_mismatch"`` for files that unpickle but fail schema /
        kind / key validation."""
        return {cause: int(count) for cause, count
                in self.metrics.prefixed("store.corrupt_reads").items()}

    @property
    def hits(self) -> int:
        return self.memory_hits + self.disk_hits

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def stats(self) -> Dict[str, object]:
        return {
            "root": self.root,
            "memory_entries": len(self._memory),
            "memory_hits": self.memory_hits,
            "disk_hits": self.disk_hits,
            "misses": self.misses,
            "puts": self.puts,
            "hit_rate": round(self.hit_rate, 4),
            "corrupt_reads": dict(self.corrupt_reads),
            "quarantined": self.quarantined,
        }


class _Missing:
    __slots__ = ()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "<missing>"


_MISSING = _Missing()


def _key_note(key: object, limit: int = 120) -> str:
    """A short human-readable summary of a key for the generation log."""
    try:
        text = canonical_key(key)
    except TypeError:
        text = repr(key)
    return text if len(text) <= limit else text[:limit - 3] + "..."
