"""Stable artifact keys: workload profile × obfuscator config × opt options.

The paper's pipeline compiles every workload "under O2 with LTO" once per
obfuscation configuration, and workload synthesis plus every obfuscator are
seeded, so a built variant is a pure function of ``(workload, obfuscation
config, optimization options)``.  These helpers freeze that triple into a
hashable, *value-based* tuple — the key space shared by the in-memory
:class:`~repro.core.variant_cache.VariantCache` façade and the on-disk
:class:`~repro.store.artifact_store.ArtifactStore` (which content-addresses
the frozen tuples, see :func:`~repro.store.artifact_store.store_digest`).

Obfuscators advertise their configuration through a ``cache_key()`` method
(see :meth:`repro.core.config.KhaosConfig.cache_key`), so two obfuscators
with the same label but different knobs never collide.
"""

from __future__ import annotations

import dataclasses
from typing import Tuple

#: Bump when the build pipeline changes incompatibly (key schema version).
#: 2: container kinds are tagged in the frozen form — an empty dict and an
#: empty list used to both freeze to ``()`` (and ``{"a": 1}`` collided with
#: ``[("a", 1)]``), so structurally different configurations could share a
#: digest; ``tests/test_store_keys_properties.py`` pins collision-freedom.
KEY_SCHEMA = 2


def _freeze(value) -> object:
    """Recursively convert ``value`` into a hashable key component.

    Mappings and sequences freeze to *tagged* tuples so different container
    kinds can never canonicalize to the same component; mapping items are
    sorted, making the frozen form insertion-order-insensitive.
    """
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return (type(value).__name__,) + tuple(
            (f.name, _freeze(getattr(value, f.name)))
            for f in dataclasses.fields(value))
    if isinstance(value, dict):
        return ("dict",) + tuple(sorted((k, _freeze(v))
                                        for k, v in value.items()))
    if isinstance(value, (list, tuple)):
        return ("seq",) + tuple(_freeze(v) for v in value)
    return value


def _value_based(frozen) -> bool:
    """True when ``frozen`` compares by value (safe inside a cache key).

    Arbitrary objects hash by identity, so embedding them in a key would
    defeat cache sharing between logically identical configurations — and
    never match again after a disk round trip.
    """
    if frozen is None or isinstance(frozen, (str, bytes, int, float, bool)):
        return True
    if isinstance(frozen, tuple):
        return all(_value_based(item) for item in frozen)
    return False


def config_cache_key(obfuscator_or_label) -> object:
    """The configuration component of a variant key.

    Accepts a plain label string (e.g. ``"baseline"``) or any obfuscator
    object; objects exposing ``cache_key()`` use it, others fall back to
    their ``label`` plus frozen public configuration.
    """
    if isinstance(obfuscator_or_label, str):
        return obfuscator_or_label
    cache_key = getattr(obfuscator_or_label, "cache_key", None)
    if callable(cache_key):
        return cache_key()
    # fallback: freeze the public configuration too, so two instances with
    # the same label but different knobs never collide
    config = []
    for name in sorted(getattr(obfuscator_or_label, "__dict__", {})):
        if name.startswith("_") or name == "label":
            continue
        value = getattr(obfuscator_or_label, name)
        if callable(value):
            continue
        frozen = _freeze(value)
        if not _value_based(frozen):
            # identity-hashed objects would never match across instances or
            # a disk round trip; fall back to their (stable-enough) repr
            frozen = repr(value)
        config.append((name, frozen))
    return (type(obfuscator_or_label).__name__,
            getattr(obfuscator_or_label, "label", "?"),
            tuple(config))


def variant_key(workload, obfuscator_or_label, options=None) -> Tuple:
    """Cache key for one built variant.

    ``workload`` is a :class:`~repro.workloads.suites.WorkloadProgram` (its
    *whole* profile pins the synthesised IR — every knob, not just the seed);
    ``obfuscator_or_label`` identifies the obfuscation configuration incl.
    its seed; ``options`` the :class:`~repro.opt.pass_manager.OptOptions` of
    the O2+LTO pipeline.
    """
    profile = getattr(workload, "profile", None)
    return (KEY_SCHEMA,
            workload.suite, workload.name,
            _freeze(profile) if profile is not None else None,
            config_cache_key(obfuscator_or_label),
            _freeze(options) if options is not None else None)
