"""The store's generation manifest: cheap warm-start validation.

An :class:`~repro.store.artifact_store.ArtifactStore` tree is only usable by
a process whose build pipeline speaks the same *store schema* (object file
layout) and *key schema* (how :func:`~repro.store.keys.variant_key` freezes
configurations).  The :class:`GenerationLog` records both at the root of the
tree (``generation.json``) together with a digest → description ledger of
every artifact written (``generation.entries``), so attaching a warm tree
costs two small reads instead of a full object scan, and an incompatible
tree is rejected before a single stale artifact can be served.

The manifest is *advisory*: the object files are the truth.  The schema
stamps are written once, atomically, when the tree is created; entries are
*appended* — one JSON line per artifact, a single short ``O_APPEND`` write,
which POSIX keeps atomic, so any number of concurrent writers interleave
whole lines, per-put cost stays O(1) no matter how large the tree grows,
and a torn or duplicated line at worst under-reports an entry (it is
re-discovered by a directory scan) — it can never corrupt the ledger or
resurrect artifacts that were never written.
"""

from __future__ import annotations

import json
import os
from typing import Dict, Optional

from .backend import fsync_directory

#: File name of the schema-stamp manifest at the store root.
GENERATION_LOG_NAME = "generation.json"

#: File name of the append-only entry ledger at the store root.
GENERATION_ENTRIES_NAME = "generation.entries"


class GenerationLog:
    """Schema stamp + entry ledger of one on-disk artifact store tree."""

    def __init__(self, store_schema: int, key_schema: int,
                 entries: Optional[Dict[str, Dict[str, object]]] = None,
                 generation: int = 0):
        self.store_schema = store_schema
        self.key_schema = key_schema
        #: digest -> {"kind": ..., "note": ...}
        self.entries: Dict[str, Dict[str, object]] = dict(entries or {})
        #: bumped on every save; lets tools spot tree (re)creation cheaply
        self.generation = generation

    # -- (de)serialisation -------------------------------------------------------

    @staticmethod
    def path_for(root: str) -> str:
        return os.path.join(root, GENERATION_LOG_NAME)

    @staticmethod
    def entries_path_for(root: str) -> str:
        return os.path.join(root, GENERATION_ENTRIES_NAME)

    @classmethod
    def load(cls, root: str) -> Optional["GenerationLog"]:
        """The manifest of ``root``, or ``None`` when the tree has none.

        Raises :class:`ValueError` on malformed stamp JSON or a payload that
        is not a manifest — a damaged manifest means the tree cannot be
        validated cheaply, and the caller must decide whether to rebuild or
        reject.  Damaged *ledger* lines are skipped, not fatal: the ledger
        is advisory and append-raced by design.
        """
        path = cls.path_for(root)
        if not os.path.exists(path):
            return None
        try:
            with open(path, "r", encoding="utf-8") as fh:
                payload = json.load(fh)
        except (OSError, json.JSONDecodeError) as error:
            raise ValueError(f"unreadable generation log {path!r}: {error}")
        if (not isinstance(payload, dict)
                or not isinstance(payload.get("store_schema"), int)
                or not isinstance(payload.get("key_schema"), int)):
            raise ValueError(f"malformed generation log {path!r}")
        log = cls(store_schema=payload["store_schema"],
                  key_schema=payload["key_schema"],
                  generation=int(payload.get("generation", 0)))
        log._load_entries(root)
        return log

    def _load_entries(self, root: str) -> None:
        path = self.entries_path_for(root)
        try:
            with open(path, "r", encoding="utf-8") as fh:
                lines = fh.readlines()
        except OSError:
            return
        for line in lines:
            line = line.strip()
            if not line:
                continue
            try:
                entry = json.loads(line)
            except json.JSONDecodeError:
                continue  # torn trailing line: advisory, skip
            digest = entry.get("digest") if isinstance(entry, dict) else None
            if isinstance(digest, str):
                self.entries[digest] = {"kind": entry.get("kind"),
                                        "note": entry.get("note", ""),
                                        "gen": entry.get("gen")}

    def save(self, root: str) -> None:
        """Write the schema stamps atomically (entries live in the ledger)."""
        on_disk = None
        try:
            on_disk = GenerationLog.load(root)
        except ValueError:
            pass  # a damaged manifest is replaced wholesale
        if on_disk is not None:
            self.generation = max(self.generation, on_disk.generation)
        self.generation += 1
        payload = {"store_schema": self.store_schema,
                   "key_schema": self.key_schema,
                   "generation": self.generation}
        path = self.path_for(root)
        tmp_path = f"{path}.tmp.{os.getpid()}"
        with open(tmp_path, "w", encoding="utf-8") as fh:
            json.dump(payload, fh, indent=1, sort_keys=True)
            fh.write("\n")
            # the stamp gates warm attach for every future process: make the
            # bytes durable *before* the rename publishes them, so a power
            # loss cannot leave the rename without the data
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp_path, path)
        # ...and make the rename itself durable: an fsynced file behind a
        # lost directory entry is still a lost manifest
        fsync_directory(os.path.dirname(path) or ".")

    # -- validation --------------------------------------------------------------

    def compatible_with(self, other: "GenerationLog") -> bool:
        return (self.store_schema == other.store_schema
                and self.key_schema == other.key_schema)

    def record(self, digest: str, kind: str, note: str = "",
               gen: Optional[int] = None) -> None:
        """Record an entry in memory only (see :meth:`append_entry`)."""
        self.entries[digest] = {"kind": kind, "note": note,
                                "gen": self.generation if gen is None
                                else gen}

    def append_entry(self, root: str, digest: str, kind: str,
                     note: str = "") -> None:
        """Record an entry and append one ledger line — O(1) per artifact.

        Each line is stamped with the tree generation that wrote it, the
        signal ``scripts/gc_store.py --keep-generations`` sweeps by.
        """
        self.record(digest, kind, note)
        line = json.dumps({"digest": digest, "kind": kind, "note": note,
                           "gen": self.generation},
                          sort_keys=True) + "\n"
        fd = os.open(self.entries_path_for(root),
                     os.O_WRONLY | os.O_CREAT | os.O_APPEND, 0o644)
        try:
            os.write(fd, line.encode("utf-8"))
        finally:
            os.close(fd)

    def rewrite_entries(self, root: str) -> None:
        """Atomically replace the ledger with the in-memory entry map.

        Used by ``scripts/fsck_store.py --repair`` after reconciling the
        ledger against the object tree (dropping entries whose objects are
        gone or quarantined, adding objects the ledger never heard of).
        Single-writer only — concurrent appenders racing a rewrite can lose
        their line, which the advisory ledger tolerates but a repair run
        should not invite.
        """
        path = self.entries_path_for(root)
        tmp_path = f"{path}.tmp.{os.getpid()}"
        with open(tmp_path, "w", encoding="utf-8") as fh:
            for digest in sorted(self.entries):
                entry = self.entries[digest]
                fh.write(json.dumps(
                    {"digest": digest, "kind": entry.get("kind"),
                     "note": entry.get("note", ""),
                     "gen": entry.get("gen")}, sort_keys=True) + "\n")
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp_path, path)
        fsync_directory(os.path.dirname(path) or ".")

    def count(self, kind: Optional[str] = None) -> int:
        if kind is None:
            return len(self.entries)
        return sum(1 for entry in self.entries.values()
                   if entry.get("kind") == kind)
