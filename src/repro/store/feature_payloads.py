"""Persisting :class:`~repro.diffing.index.FeatureIndex` payloads in the store.

The diffing index memoises per-binary features in memory, keyed by binary
*object* — which is exactly right inside one process, and exactly wrong
across processes: every executor worker re-extracts the same deterministic
features from the same deterministic binaries.  These helpers bridge the two
worlds: a worker that built (or fetched) a variant under a stable store key
can persist the features it extracted under the same key (kind
``"features"``) and warm-start the next process's index from them.

Both directions are no-ops on an in-memory store with nothing persisted, and
adoption never overrides locally computed entries, so wiring these in can
only skip work — never change a diffing result.
"""

from __future__ import annotations

from typing import Optional, Tuple

from ..diffing.index import feature_index
from .artifact_store import KIND_FEATURES, ArtifactStore


def features_key(variant_key: Tuple) -> Tuple:
    """The store key for the feature payload of one built variant.

    Derived from the variant's own key (workload profile × obfuscator config
    × opt options): the binary is a pure function of that triple and the
    features are a pure function of the binary.
    """
    return ("features",) + tuple(variant_key)


def persist_features(store: ArtifactStore, variant_key: Tuple,
                     binary) -> Optional[str]:
    """Save ``binary``'s memoised features under the variant's key.

    Merges with any payload already stored (earlier cells may have memoised
    a different tool's features), so the stored payload only ever grows.
    Returns the digest written, or ``None`` when there was nothing new.
    """
    index = feature_index(binary)
    payload = index.export_payload()
    if not payload:
        return None
    key = features_key(variant_key)
    existing = store.get(KIND_FEATURES, key)
    if isinstance(existing, dict):
        merged = dict(existing)
        merged.update(payload)
        if merged.keys() == existing.keys():
            return None  # nothing the store does not already hold
        payload = merged
    return store.put(KIND_FEATURES, key, payload, overwrite=True)


def warm_features(store: ArtifactStore, variant_key: Tuple, binary) -> int:
    """Warm ``binary``'s index from the store; returns entries adopted."""
    payload = store.get(KIND_FEATURES, features_key(variant_key))
    if not isinstance(payload, dict) or not payload:
        return 0
    return feature_index(binary).adopt_payload(payload)
