"""Persisting partial diff results in the store (kind ``"diff"``).

The function-granularity diff sharding (:mod:`repro.evaluation.diff_sharding`)
scores one binary pair as many independent per-function units.  Every unit's
outcome — its ranked candidate list per channel plus the provenance rank of
its correct match — is a pure function of (tool configuration, baseline
variant, obfuscated variant, source function), so it persists under a stable
key and any later shard, process or machine attached to the same store tree
adopts it instead of re-scoring.

Three payload shapes live under the ``diff`` kind, all addressed below one
*pair key* (:func:`diff_pair_key` — the tool's ``cache_key()`` plus the two
variant keys):

* the **roster** (:func:`persist_roster`): the pair's unit list in rank
  order plus the function counts the whole-binary score needs — a fully-warm
  shard plans and merges without ever unpickling a binary;
* one **unit** payload per source function (:func:`persist_unit`): ranked
  candidates per channel plus ``rank`` (the 1-based provenance rank of the
  first correct candidate, or ``None``);
* a **whole** payload (:func:`persist_whole`) for binary-granularity tools:
  the complete match dict, the final similarity score and every unit's rank.

Every loader validates shape and degrades to ``None`` (a miss) on anything
unexpected — scoring is deterministic, so re-scoring only costs time.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence, Tuple

from .artifact_store import KIND_DIFF, ArtifactStore


def diff_pair_key(differ, baseline_key: Sequence, variant_key: Sequence) -> Tuple:
    """The store-key prefix of one (tool, baseline, variant) diff pair."""
    return ("diff", tuple(differ.cache_key()),
            tuple(baseline_key), tuple(variant_key))


def roster_key(pair_key: Tuple) -> Tuple:
    return pair_key + ("roster",)


def unit_key(pair_key: Tuple, unit: str) -> Tuple:
    """The stable per-function shard key of one scored source function."""
    return pair_key + ("unit", unit)


def whole_key(pair_key: Tuple) -> Tuple:
    return pair_key + ("whole",)


def _ranked_list(value) -> bool:
    return isinstance(value, list) and all(
        isinstance(item, tuple) and len(item) == 2 and isinstance(item[0], str)
        for item in value)


def persist_roster(store: ArtifactStore, pair_key: Tuple, units: Sequence[str],
                   original: str, obfuscated: str,
                   original_functions: int, obfuscated_functions: int) -> str:
    return store.put(KIND_DIFF, roster_key(pair_key), {
        "units": tuple(units), "original": original, "obfuscated": obfuscated,
        "original_functions": original_functions,
        "obfuscated_functions": obfuscated_functions,
    })


def load_roster(store: ArtifactStore, pair_key: Tuple) -> Optional[Dict]:
    payload = store.get(KIND_DIFF, roster_key(pair_key))
    if (not isinstance(payload, dict)
            or not isinstance(payload.get("units"), tuple)
            or not all(isinstance(u, str) for u in payload["units"])
            or not isinstance(payload.get("original"), str)
            or not isinstance(payload.get("obfuscated"), str)
            or not isinstance(payload.get("original_functions"), int)
            or not isinstance(payload.get("obfuscated_functions"), int)):
        return None
    return payload


def persist_unit(store: ArtifactStore, pair_key: Tuple, unit: str,
                 ranked, channels: Dict[str, list],
                 rank: Optional[int]) -> str:
    return store.put(KIND_DIFF, unit_key(pair_key, unit), {
        "ranked": ranked, "channels": dict(channels), "rank": rank,
    })


def load_unit(store: ArtifactStore, pair_key: Tuple,
              unit: str) -> Optional[Dict]:
    payload = store.get(KIND_DIFF, unit_key(pair_key, unit))
    if (not isinstance(payload, dict)
            or not _ranked_list(payload.get("ranked"))
            or not isinstance(payload.get("channels"), dict)
            or not all(_ranked_list(v) for v in payload["channels"].values())
            or not isinstance(payload.get("rank"), (int, type(None)))):
        return None
    return payload


def persist_whole(store: ArtifactStore, pair_key: Tuple, matches: Dict,
                  similarity_score: float,
                  ranks: Dict[str, Optional[int]]) -> str:
    return store.put(KIND_DIFF, whole_key(pair_key), {
        "matches": dict(matches), "similarity_score": similarity_score,
        "ranks": dict(ranks),
    })


def load_whole(store: ArtifactStore, pair_key: Tuple) -> Optional[Dict]:
    payload = store.get(KIND_DIFF, whole_key(pair_key))
    if (not isinstance(payload, dict)
            or not isinstance(payload.get("matches"), dict)
            or not all(_ranked_list(v) for v in payload["matches"].values())
            or not isinstance(payload.get("similarity_score"), float)
            or not isinstance(payload.get("ranks"), dict)):
        return None
    return payload
