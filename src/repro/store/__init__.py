"""Shared artifact store: compute each build artifact once per machine.

The subsystem has three pieces:

* :mod:`repro.store.keys` — freezes (workload profile, obfuscator config,
  opt options) triples into stable, value-based key tuples (re-exported by
  :mod:`repro.core.variant_cache` for backwards compatibility);
* :mod:`repro.store.artifact_store` — the content-addressed
  :class:`ArtifactStore`: in-process LRU over an atomic on-disk object tree
  that any number of executor workers attach to concurrently, validated
  cheaply through the :class:`GenerationLog` manifest;
* :mod:`repro.store.feature_payloads` — persistence for the diffing
  :class:`~repro.diffing.index.FeatureIndex` payloads keyed by the variant
  that produced the binary;
* :mod:`repro.store.diff_payloads` — persistence for per-function partial
  diff results (kind ``"diff"``), keyed by (tool config, baseline variant,
  obfuscated variant, source function) for the function-granularity diff
  sharding.

``REPRO_STORE_DIR`` names the shared tree; the pre-store
``REPRO_VARIANT_CACHE_DIR`` single-pickle layout is still honoured (and the
variable doubles as a store-dir alias when it points at a store tree).
"""

from .artifact_store import (CORRUPT_READ_ERRORS, KIND_BINARY, KIND_DIFF,
                             KIND_FEATURES, KIND_SHARD, KIND_VARIANT,
                             OBJECTS_DIR, QUARANTINE_DIR, STORE_SCHEMA,
                             ArtifactStore, StoreError, canonical_key,
                             is_store_tree, store_digest, store_dir_from_env,
                             store_from_env, store_url_from_env)
from .backend import (LocalBackend, ObjectRef, RemoteBackend,
                      RemoteStoreError, StoreBackend)
from .diff_payloads import diff_pair_key
from .feature_payloads import features_key, persist_features, warm_features
from .generation_log import GENERATION_LOG_NAME, GenerationLog
from .keys import KEY_SCHEMA, config_cache_key, variant_key

__all__ = [
    "ArtifactStore", "StoreError", "GenerationLog", "GENERATION_LOG_NAME",
    "StoreBackend", "LocalBackend", "RemoteBackend", "RemoteStoreError",
    "ObjectRef",
    "KIND_VARIANT", "KIND_BINARY", "KIND_FEATURES", "KIND_DIFF", "KIND_SHARD",
    "OBJECTS_DIR", "QUARANTINE_DIR", "CORRUPT_READ_ERRORS",
    "STORE_SCHEMA", "KEY_SCHEMA", "canonical_key",
    "store_digest", "is_store_tree", "store_dir_from_env", "store_from_env",
    "store_url_from_env", "config_cache_key",
    "variant_key", "diff_pair_key", "features_key", "persist_features",
    "warm_features",
]
