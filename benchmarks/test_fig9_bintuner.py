"""Figure 9: BinDiff similarity score, BinTuner vs Khaos (FuFi.all), O0-O3."""

from repro.evaluation import figure9, format_table

from .conftest import emit, full_mode


def test_figure9_bintuner_vs_khaos(benchmark):
    limit = None if full_mode() else 2
    report = benchmark.pedantic(
        lambda: figure9(limit=limit, tuner_iterations=4), rounds=1, iterations=1)

    rows = []
    for protection in ("bintuner", "khaos"):
        for level in (0, 1, 2, 3):
            rows.append([protection, f"O{level}",
                         report.similarity(protection, level)])
    rows.append(["bintuner overhead vs O2+LTO", "",
                 f"{report.bintuner_overhead_percent:.1f}%"])
    emit("Figure 9: BinDiff similarity score (lower = better hiding)",
         format_table(["protection", "reference build", "similarity"], rows))

    # the paper's claim: Khaos produces binaries much less similar to any
    # optimization level than iterative compilation does
    for level in (0, 1, 2, 3):
        assert (report.similarity("khaos", level)
                <= report.similarity("bintuner", level) + 0.05)
