"""Benchmark harness package.

The package marker lets ``benchmarks/test_*.py`` use ``from .conftest import
...`` when collected from the repository root (``python -m pytest``), which
previously failed with "attempted relative import with no known parent
package".
"""
