"""Table 3: vulnerable functions of the Test Suite III programs."""

from repro.evaluation import format_table
from repro.workloads import EMBEDDED_VULNERABILITIES, embedded_programs

from .conftest import emit


def test_table3_vulnerable_functions(benchmark):
    workloads = benchmark.pedantic(embedded_programs, rounds=1, iterations=1)

    rows = []
    total_functions = 0
    total_cves = set()
    for program, vulns in sorted(EMBEDDED_VULNERABILITIES.items()):
        for function_name, cves in vulns:
            rows.append([program, function_name, ", ".join(cves)])
            total_functions += 1
            total_cves.update(cves)
    rows.append(["Total", f"{total_functions}", f"{len(total_cves)}"])
    emit("Table 3: vulnerable functions of Test Suite III",
         format_table(["program", "function", "CVE"], rows))

    # Table 3 totals: 14 vulnerable functions, 19 CVEs, in 5 programs
    assert total_functions == 14
    assert len(total_cves) == 19
    assert len(workloads) == 5
    # every vulnerable function is actually present in the synthesised program
    for workload in workloads:
        program = workload.build()
        for name in workload.vulnerable_functions:
            assert program.find_function(name) is not None
