"""Figure 6: runtime overhead of the Khaos variants on SPEC CPU 2006/2017."""

from repro.evaluation import figure6, overhead_table

from .conftest import emit, full_mode


def test_figure6_khaos_overhead(benchmark):
    limit = None if full_mode() else 3
    report = benchmark.pedantic(lambda: figure6(limit=limit),
                                rounds=1, iterations=1)
    emit("Figure 6: Khaos runtime overhead (percent, per program + GEOMEAN)",
         overhead_table(report))
    # the paper reports single-digit geometric means for Fission/Fusion/FuFi.ori
    for label in ("fission", "fusion", "fufi.ori"):
        assert report.geomean(label) < 60.0
    # FuFi.all trades performance for obfuscation strength
    assert report.geomean("fufi.all") >= report.geomean("fission") - 5.0
