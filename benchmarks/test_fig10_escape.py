"""Figure 10: escape@1/10/50 ratio of the T-III vulnerable functions."""

from repro.evaluation import ESCAPE_RANKS, figure10, matrix_table

from .conftest import emit, full_mode


def test_figure10_escape_ratio(benchmark):
    limit = None if full_mode() else 2
    report = benchmark.pedantic(lambda: figure10(limit=limit),
                                rounds=1, iterations=1)
    for rank in ESCAPE_RANKS:
        emit(f"Figure 10: escape@{rank} (higher = better hiding)",
             matrix_table(report.matrix(rank), row_title="tool"))

    # escape ratio can only shrink as the rank budget grows
    for tool in sorted({row.tool for row in report.rows}):
        for label in ("sub", "fufi.all"):
            e1 = report.escape_ratio(tool, label, 1)
            e10 = report.escape_ratio(tool, label, 10)
            e50 = report.escape_ratio(tool, label, 50)
            assert e1 >= e10 >= e50
