"""Shared helpers for the benchmark harness.

Every benchmark regenerates one table or figure of the paper and prints the
corresponding rows.  By default the quick configurations (suite subsets) are
used so the whole harness finishes in minutes on a laptop; set
``REPRO_FULL=1`` to run the full-size experiments.
"""

from __future__ import annotations

import os

import pytest


def full_mode() -> bool:
    return os.environ.get("REPRO_FULL", "0") not in ("0", "", "false")


@pytest.fixture
def experiment_scale() -> bool:
    """True when the full-size experiment was requested via REPRO_FULL=1."""
    return full_mode()


def emit(title: str, body: str) -> None:
    print(f"\n=== {title} ===")
    print(body)
