"""Figure 11: normalised opcode histogram distance per obfuscation."""

from repro.evaluation import figure11, matrix_table

from .conftest import emit, full_mode


def test_figure11_opcode_histogram_distance(benchmark):
    limit = None if full_mode() else 3
    report = benchmark.pedantic(lambda: figure11(limit=limit),
                                rounds=1, iterations=1)
    emit("Figure 11: normalised opcode histogram distance (per program)",
         matrix_table(report.distances, row_title="program"))
    averages = {label: report.average(label) for label in report.labels()}
    emit("Figure 11: average distance per obfuscation",
         "\n".join(f"{label:10s} {value:.3f}" for label, value in averages.items()))

    # the paper's observation: within Khaos, FuFi.all has the largest opcode
    # distance, followed by FuFi.sep and FuFi.ori (see EXPERIMENTS.md for the
    # Sub comparison, where this reproduction's naive code generator differs)
    assert report.average("fufi.all") >= report.average("fufi.ori")
    assert report.average("fufi.all") >= report.average("fission")
    assert report.average("fufi.sep") >= report.average("fufi.ori")
    assert max(max(d.values()) for d in report.distances.values()) <= 1.0 + 1e-9
