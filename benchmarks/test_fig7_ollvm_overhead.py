"""Figure 7: runtime overhead of O-LLVM (Sub/Bog/Fla/Fla-10) vs Khaos."""

from repro.evaluation import figure7, overhead_table

from .conftest import emit, full_mode


def test_figure7_ollvm_vs_khaos_overhead(benchmark):
    limit = None if full_mode() else 2
    report = benchmark.pedantic(lambda: figure7(limit=limit),
                                rounds=1, iterations=1)
    emit("Figure 7: O-LLVM vs Khaos runtime overhead (percent)",
         overhead_table(report))
    # the defining shape of Figure 7: full flattening is far more expensive
    # than every Khaos variant, and Fla-10 sits in between
    assert report.geomean("fla") > report.geomean("fla-10")
    for label in ("fission", "fusion", "fufi.ori"):
        assert report.geomean("fla") > report.geomean(label)
