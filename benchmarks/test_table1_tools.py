"""Table 1: characteristics of the chosen binary diffing tools."""

from repro.diffing import tool_table
from repro.evaluation import format_table

from .conftest import emit


def test_table1_tool_characteristics(benchmark):
    rows = benchmark.pedantic(tool_table, rounds=1, iterations=1)
    headers = list(rows[0])
    emit("Table 1: summarize of chosen diffing works",
         format_table(headers, [[row[h] for h in headers] for row in rows]))

    by_name = {row["diffing"]: row for row in rows}
    assert by_name["BinDiff"]["symbol relying"] == "Y"
    assert by_name["DeepBinDiff"]["granularity"] == "basic block"
    assert by_name["Asm2Vec"]["call-graph lacking"] == "Y"
    assert by_name["Safe"]["call-graph lacking"] == "Y"
    assert by_name["VulSeeker"]["time consuming"] == "Y"
