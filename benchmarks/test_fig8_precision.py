"""Figure 8: Precision@1 of the five diffing tools under eight obfuscations."""

from repro.evaluation import figure8, matrix_table

from .conftest import emit, full_mode


def test_figure8_precision(benchmark):
    if full_mode():
        kwargs = {"limit_spec": None, "limit_coreutils": None}
    else:
        kwargs = {"limit_spec": 2, "limit_coreutils": 2}
    report = benchmark.pedantic(lambda: figure8(**kwargs), rounds=1, iterations=1)
    emit("Figure 8: Precision@1 per tool per obfuscation",
         matrix_table(report.matrix(), row_title="tool"))

    # shape checks: BinDiff (symbol-assisted) resists the intra-procedural
    # baselines completely, and the strongest Khaos mode (FuFi.all) degrades
    # every tool more than instruction substitution degrades BinDiff
    assert report.average("BinDiff", "sub") > 0.95
    assert report.average("BinDiff", "fufi.all") < report.average("BinDiff", "sub")
    for tool in report.tools():
        assert 0.0 <= report.average(tool, "fufi.all") <= 1.0
