"""Table 2: statistics of the fission and the fusion primitives."""

from repro.evaluation import matrix_table, table2

from .conftest import emit, full_mode


def test_table2_fission_fusion_statistics(benchmark):
    limit = None if full_mode() else 3
    report = benchmark.pedantic(lambda: table2(limit=limit),
                                rounds=1, iterations=1)
    emit("Table 2: statistics of the fission and the fusion",
         matrix_table(report.as_table(), row_title="suite"))

    for suite, row in report.rows.items():
        # the paper reports fission ratios above 100% and fusion ratios of
        # 97-99%; the synthetic programs are smaller, so only the qualitative
        # properties are asserted: fission splits a substantial fraction and
        # fusion aggregates the large majority of candidates
        assert row.fission_ratio > 0.2, suite
        assert row.fusion_ratio > 0.7, suite
        assert row.avg_sepfunc_blocks >= 2.0, suite
        assert 0.0 < row.reduction_ratio <= 1.0, suite
