"""Performance micro-benchmarks for the obfuscate→execute→measure loop.

Run from the repository root::

    PYTHONPATH=src python benchmarks/perf/run_bench.py [--quick|--smoke] [--out PATH]

or via ``scripts/bench.sh``.  Writes ``BENCH_results.json`` so subsequent PRs
can diff the perf trajectory.  Tracked metrics:

* **vm** — steps/second of the interpreter on the Figure-6 workloads,
  compiled dispatch vs. the legacy ``isinstance``-ladder path (kept in-tree
  as the reference semantics);
* **fig6_measure_loop** — the overhead-*measurement* loop of Figures 6/7:
  executing every built variant in the VM to collect dynamic cycle counts,
  compiled vs. legacy dispatch;
* **fig6_end_to_end** — the same loop including the build phases
  (obfuscate, optimize, lower), run through a shared
  :class:`~repro.core.variant_cache.VariantCache` exactly as the figure
  drivers do; reports the cache stats alongside the timings;
* **pipeline** — wall time of the *uncached* build phases alone (the raw
  cost of obfuscate → optimize → lower, i.e. incremental simplify-cfg and
  one-pass clone/link);
* **variant_cache** — cold-vs-warm build comparison plus the figure-8 reuse
  check: after the overhead loop has populated the cache, a
  figure-8-style precision run must hit it (nonzero ``fig8.hit_rate``).

All workloads are deterministic (profile-seeded), so the only
run-to-run variance is machine noise; every timing is a best-of-``reps``.
``--smoke`` is for CI: one rep, fewest programs, and a schema check on the
written JSON — no timing-sensitive assertions.
"""

from __future__ import annotations

import argparse
import gc
import json
import os
import sys
import time
from typing import Callable, Dict, List

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "..", "src"))

from repro.core.variant_cache import VariantCache      # noqa: E402
from repro.evaluation.overhead import measure_overhead  # noqa: E402
from repro.evaluation.precision import measure_precision  # noqa: E402
from repro.opt.pipelines import optimize_program        # noqa: E402
from repro.backend.lowering import lower_program        # noqa: E402
from repro.core.obfuscator import obfuscate             # noqa: E402
from repro.vm.machine import run_program                # noqa: E402
from repro.workloads.suites import (spec2006_programs,  # noqa: E402
                                    spec2017_programs)

MEASURE_LABELS = ("fission", "fufi.ori")

#: Keys every result file must contain (checked by --smoke).
REQUIRED_KEYS = ("schema", "config", "vm", "fig6_measure_loop",
                 "fig6_end_to_end", "pipeline", "variant_cache")


def best_of(fn: Callable[[], object], reps: int) -> float:
    best = float("inf")
    for _ in range(reps):
        gc.collect()
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def bench_vm(programs, reps: int) -> Dict[str, object]:
    built = [wp.build() for wp in programs]
    # verify both dispatchers agree before timing anything
    steps = 0
    for program in built:
        legacy = run_program(program, compiled=False)
        fast = run_program(program, compiled=True)
        assert legacy.observable() == fast.observable()
        assert legacy.cycles == fast.cycles and legacy.steps == fast.steps
        steps += legacy.steps

    legacy_s = best_of(
        lambda: [run_program(p, compiled=False) for p in built], reps)
    compiled_s = best_of(
        lambda: [run_program(p, compiled=True) for p in built], reps)
    return {
        "programs": [wp.name for wp in programs],
        "steps": steps,
        "legacy_s": round(legacy_s, 4),
        "compiled_s": round(compiled_s, 4),
        "steps_per_sec_legacy": int(steps / legacy_s),
        "steps_per_sec_compiled": int(steps / compiled_s),
        "speedup": round(legacy_s / compiled_s, 2),
    }


def _build_variants(programs) -> List:
    """The build phase of the fig6/fig7 loop: every variant of every program."""
    variants = []
    for wp in programs:
        baseline = optimize_program(wp.build())
        lower_program(baseline)
        variants.append(baseline)
        for label in MEASURE_LABELS:
            result = obfuscate(wp.build(), mode=label)
            optimized = optimize_program(result.program)
            lower_program(optimized)
            variants.append(optimized)
    return variants


def bench_fig6_measure_loop(programs, reps: int) -> Dict[str, object]:
    variants = _build_variants(programs)
    legacy_s = best_of(
        lambda: [run_program(v, compiled=False) for v in variants], reps)
    compiled_s = best_of(
        lambda: [run_program(v, compiled=True) for v in variants], reps)
    return {
        "programs": [wp.name for wp in programs],
        "labels": list(MEASURE_LABELS),
        "variants": len(variants),
        "legacy_s": round(legacy_s, 4),
        "compiled_s": round(compiled_s, 4),
        "speedup": round(legacy_s / compiled_s, 2),
    }


def bench_fig6_end_to_end(programs, reps: int) -> Dict[str, object]:
    cache = VariantCache()

    def loop(dispatch: str):
        os.environ["REPRO_VM_DISPATCH"] = dispatch
        try:
            measure_overhead(programs, labels=MEASURE_LABELS, cache=cache)
        finally:
            os.environ.pop("REPRO_VM_DISPATCH", None)

    legacy_s = best_of(lambda: loop("legacy"), reps)
    compiled_s = best_of(lambda: loop("compiled"), reps)
    return {
        "programs": [wp.name for wp in programs],
        "labels": list(MEASURE_LABELS),
        "legacy_s": round(legacy_s, 4),
        "compiled_s": round(compiled_s, 4),
        "speedup": round(legacy_s / compiled_s, 2),
        "cache": cache.stats(),
    }


def bench_pipeline(programs, reps: int) -> Dict[str, object]:
    wall = best_of(lambda: _build_variants(programs), reps)
    return {
        "programs": [wp.name for wp in programs],
        "labels": list(MEASURE_LABELS),
        "obfuscate_optimize_lower_s": round(wall, 4),
    }


def bench_variant_cache(programs, reps: int) -> Dict[str, object]:
    """Cold vs warm build loop, plus the figure-8 cross-experiment reuse."""
    cache = VariantCache()
    gc.collect()
    start = time.perf_counter()
    measure_overhead(programs, labels=MEASURE_LABELS, cache=cache)
    cold_s = time.perf_counter() - start
    warm_s = best_of(
        lambda: measure_overhead(programs, labels=MEASURE_LABELS, cache=cache),
        reps)

    # figure-8 style: precision over the same workload/label matrix must
    # reuse the variants the overhead loop already built
    hits_before, misses_before = cache.hits, cache.misses
    gc.collect()
    start = time.perf_counter()
    measure_precision(programs, labels=MEASURE_LABELS, cache=cache)
    fig8_s = time.perf_counter() - start
    fig8_hits = cache.hits - hits_before
    fig8_misses = cache.misses - misses_before
    fig8_total = fig8_hits + fig8_misses
    return {
        "programs": [wp.name for wp in programs],
        "labels": list(MEASURE_LABELS),
        "cold_s": round(cold_s, 4),
        "warm_s": round(warm_s, 4),
        "build_speedup": round(cold_s / warm_s, 2) if warm_s else None,
        "fig8": {
            "precision_s": round(fig8_s, 4),
            "hits": fig8_hits,
            "misses": fig8_misses,
            "hit_rate": round(fig8_hits / fig8_total, 4) if fig8_total else 0.0,
        },
        "overall": cache.stats(),
    }


def check_results(results: Dict[str, object]) -> List[str]:
    """Structural (timing-independent) sanity checks for --smoke."""
    problems = []
    for key in REQUIRED_KEYS:
        if key not in results:
            problems.append(f"missing key {key!r}")
    cache = results.get("variant_cache", {})
    if cache and cache.get("fig8", {}).get("hits", 0) <= 0:
        problems.append("variant cache saw no figure-8 hits")
    e2e = results.get("fig6_end_to_end", {})
    if e2e and e2e.get("cache", {}).get("hits", 0) <= 0:
        problems.append("fig6 end-to-end loop never hit the variant cache")
    return problems


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument("--quick", action="store_true",
                        help="fewer programs and reps (smoke run)")
    parser.add_argument("--smoke", action="store_true",
                        help="CI mode: minimal work, then verify the output "
                             "file structurally (no timing assertions)")
    parser.add_argument("--out", default="BENCH_results.json",
                        help="output path (default: BENCH_results.json)")
    args = parser.parse_args(argv)

    if args.smoke:
        vm_programs = spec2006_programs()[:1]
        loop_programs = spec2006_programs()[:1]
        reps = 1
    elif args.quick:
        vm_programs = spec2006_programs()[:2]
        loop_programs = spec2006_programs()[:1]
        reps = 2
    else:
        vm_programs = spec2006_programs()[:4] + spec2017_programs()[:2]
        loop_programs = spec2006_programs()[:3]
        reps = 5

    results = {
        "schema": 2,
        "config": {"quick": bool(args.quick or args.smoke), "reps": reps,
                   "python": sys.version.split()[0]},
        "vm": bench_vm(vm_programs, reps),
        "fig6_measure_loop": bench_fig6_measure_loop(loop_programs, reps),
        "fig6_end_to_end": bench_fig6_end_to_end(loop_programs,
                                                 max(2, reps // 2)),
        "pipeline": bench_pipeline(loop_programs, max(2, reps // 2)),
        "variant_cache": bench_variant_cache(loop_programs,
                                             max(1, reps // 2)),
    }

    with open(args.out, "w") as fh:
        json.dump(results, fh, indent=2, sort_keys=True)
        fh.write("\n")

    print(f"vm:                {results['vm']['speedup']}x "
          f"({results['vm']['steps_per_sec_compiled']:,} steps/s compiled, "
          f"{results['vm']['steps_per_sec_legacy']:,} legacy)")
    print(f"fig6 measure loop: {results['fig6_measure_loop']['speedup']}x")
    print(f"fig6 end to end:   {results['fig6_end_to_end']['speedup']}x "
          f"(compiled {results['fig6_end_to_end']['compiled_s']}s, "
          f"cache hit rate {results['fig6_end_to_end']['cache']['hit_rate']})")
    print(f"pipeline build:    "
          f"{results['pipeline']['obfuscate_optimize_lower_s']}s (uncached)")
    vc = results["variant_cache"]
    print(f"variant cache:     cold {vc['cold_s']}s -> warm {vc['warm_s']}s "
          f"({vc['build_speedup']}x); fig8 hit rate {vc['fig8']['hit_rate']}")
    print(f"wrote {args.out}")

    if args.smoke:
        with open(args.out) as fh:
            reread = json.load(fh)
        problems = check_results(reread)
        if problems:
            for problem in problems:
                print(f"SMOKE FAIL: {problem}", file=sys.stderr)
            return 1
        print(f"smoke ok: {args.out} contains "
              f"{', '.join(REQUIRED_KEYS)}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
